"""Acceptance envelopes: what a scenario run is allowed to look like.

An envelope is the declarative half of a regression test.  Each
scenario in the library states, next to its generator knobs, the
behaviour it was designed to provoke — how many congestion CEs, how
many alerts of which kind, how slow recognition may get, which feeds
must show up in the degradation timeline — as tolerance *bands*
rather than exact values, so the pin survives harmless drift (a new
rule, a changed alert ordering) while still catching a scenario that
silently stopped exercising what it exists to exercise.

:func:`check_envelope` evaluates every clause against a
:class:`~repro.system.pipeline.SystemReport` and returns an
:class:`EnvelopeResult` of per-clause verdicts; the runner feeds those
into the CLI table, the HTML report and the pytest matrix.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field, fields
from typing import Any, Optional

__all__ = [
    "EnvelopeSpec",
    "Clause",
    "EnvelopeResult",
    "check_envelope",
    "PARITY_VARIANTS",
]

#: Execution-path variants an envelope may demand parity against the
#: baseline (incremental + compiled) run.  ``legacy`` recomputes every
#: window from scratch, ``interpreted`` disables the compiled-columnar
#: rule path, ``sharded2`` runs the multi-process runtime with the four
#: regions packed onto two engines (checked against an in-process run
#: with the same grouping).
PARITY_VARIANTS = ("legacy", "interpreted", "sharded2")


def _band(name: str, value) -> tuple[int, int]:
    value = tuple(value)
    if len(value) != 2:
        raise ValueError(f"{name} must be a (lo, hi) band, got {value!r}")
    lo, hi = int(value[0]), int(value[1])
    if lo < 0 or lo > hi:
        raise ValueError(
            f"{name} must satisfy 0 <= lo <= hi, got {value!r}"
        )
    return (lo, hi)


@dataclass(frozen=True)
class EnvelopeSpec:
    """Tolerance bands for one scenario.

    Every field is optional; an absent field emits no clause.  Bands
    are inclusive ``(lo, hi)`` pairs on counts.
    """

    #: CE occurrence bands, keyed by CE name as reported by
    #: :meth:`SystemReport.total_occurrences` (e.g. ``"congestion"``,
    #: ``"congestionInTheMake"``, ``"suddenStop"``).
    occurrences: tuple[tuple[str, tuple[int, int]], ...] = ()
    #: Alert-count bands keyed by alert kind
    #: (:meth:`OperatorConsole.counts`), e.g. ``"congestion"``,
    #: ``"intersection_disagreement"``.
    alerts: tuple[tuple[str, tuple[int, int]], ...] = ()
    #: Upper bound on mean per-query recognition CPU time, in
    #: milliseconds (Figure 4's metric).
    max_mean_recognition_ms: Optional[float] = None
    #: Band on crowdsourcing resolutions (resolved disagreements).
    crowd_resolutions: Optional[tuple[int, int]] = None
    #: Feeds that must appear degraded, with bounds on total degraded
    #: seconds: ``(feed, min_s, max_s)``.  ``max_s`` may be ``None``
    #: (no upper bound).  Only meaningful under a fault profile.
    degraded: tuple[tuple[str, int, Optional[int]], ...] = ()
    #: Execution-path variants whose CE output must match the baseline
    #: run exactly (see :data:`PARITY_VARIANTS`).
    parity: tuple[str, ...] = ("legacy", "interpreted")

    def __post_init__(self) -> None:
        def _bands(name, pairs):
            if isinstance(pairs, Mapping):
                pairs = pairs.items()
            return tuple(
                (str(key), _band(f"{name}[{key}]", band))
                for key, band in pairs
            )

        object.__setattr__(
            self, "occurrences", _bands("occurrences", self.occurrences)
        )
        object.__setattr__(self, "alerts", _bands("alerts", self.alerts))
        if self.max_mean_recognition_ms is not None:
            if self.max_mean_recognition_ms <= 0:
                raise ValueError("max_mean_recognition_ms must be positive")
        if self.crowd_resolutions is not None:
            object.__setattr__(
                self,
                "crowd_resolutions",
                _band("crowd_resolutions", self.crowd_resolutions),
            )
        norm = []
        for entry in self.degraded:
            entry = tuple(entry)
            if len(entry) == 2:
                entry = (*entry, None)
            if len(entry) != 3:
                raise ValueError(
                    "degraded entries must be (feed, min_s[, max_s]), "
                    f"got {entry!r}"
                )
            feed, min_s, max_s = entry
            min_s = int(min_s)
            if min_s < 0 or (max_s is not None and int(max_s) < min_s):
                raise ValueError(
                    f"degraded bounds for {feed!r} must satisfy "
                    f"0 <= min_s <= max_s"
                )
            norm.append(
                (str(feed), min_s, None if max_s is None else int(max_s))
            )
        object.__setattr__(self, "degraded", tuple(norm))
        unknown = set(self.parity) - set(PARITY_VARIANTS)
        if unknown:
            raise ValueError(
                f"unknown parity variant(s) {sorted(unknown)}; expected "
                f"a subset of {PARITY_VARIANTS}"
            )
        object.__setattr__(self, "parity", tuple(self.parity))

    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "EnvelopeSpec":
        from .spec import reject_unknown_keys

        if not isinstance(mapping, Mapping):
            raise ValueError("envelope section must be a mapping")
        known = {f.name for f in fields(cls)}
        reject_unknown_keys(mapping, known, "envelope")
        kwargs: dict[str, Any] = {}
        for key, value in mapping.items():
            if key in ("occurrences", "alerts") and isinstance(
                value, Mapping
            ):
                value = tuple(sorted(value.items()))
            elif isinstance(value, list):
                value = tuple(
                    tuple(v) if isinstance(v, list) else v for v in value
                )
            kwargs[key] = value
        return cls(**kwargs)

    def to_mapping(self) -> dict[str, Any]:
        """Serialise back to the document shape ``from_mapping``
        accepts (omitting unset optional clauses)."""
        out: dict[str, Any] = {}
        if self.occurrences:
            out["occurrences"] = {
                name: list(band) for name, band in self.occurrences
            }
        if self.alerts:
            out["alerts"] = {
                kind: list(band) for kind, band in self.alerts
            }
        if self.max_mean_recognition_ms is not None:
            out["max_mean_recognition_ms"] = self.max_mean_recognition_ms
        if self.crowd_resolutions is not None:
            out["crowd_resolutions"] = list(self.crowd_resolutions)
        if self.degraded:
            out["degraded"] = [list(entry) for entry in self.degraded]
        out["parity"] = list(self.parity)
        return out


@dataclass(frozen=True)
class Clause:
    """One checked envelope clause: what was demanded, what happened."""

    kind: str
    subject: str
    expected: str
    observed: str
    passed: bool

    def format(self) -> str:
        """One-line ``[PASS|FAIL] kind subject: expected …`` rendering."""
        mark = "PASS" if self.passed else "FAIL"
        return (
            f"[{mark}] {self.kind} {self.subject}: expected "
            f"{self.expected}, observed {self.observed}"
        )


@dataclass
class EnvelopeResult:
    """All clause verdicts for one scenario run."""

    scenario: str
    clauses: list[Clause] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(clause.passed for clause in self.clauses)

    @property
    def failures(self) -> list[Clause]:
        return [clause for clause in self.clauses if not clause.passed]

    def format(self) -> str:
        """Multi-line verdict: headline plus one line per clause."""
        lines = [f"envelope {self.scenario}: " + (
            "PASS" if self.passed else "FAIL"
        )]
        lines.extend("  " + clause.format() for clause in self.clauses)
        return "\n".join(lines)


def _degraded_seconds(report, feed: str, run_end: int) -> int:
    total = 0
    for start, end in report.degraded.get(feed, []):
        total += (run_end if end is None else end) - start
    return total


def check_envelope(
    envelope: EnvelopeSpec,
    report,
    *,
    scenario: str,
    run_end: int,
    parity: Optional[Mapping[str, bool]] = None,
) -> EnvelopeResult:
    """Evaluate every clause of ``envelope`` against a run.

    ``parity`` maps variant name → whether that variant's CE output
    matched the baseline (the runner computes it; ``None`` marks the
    whole parity set unchecked, which fails if the envelope demands
    any variant).
    """
    result = EnvelopeResult(scenario=scenario)
    add = result.clauses.append

    for name, (lo, hi) in envelope.occurrences:
        observed = report.total_occurrences(name)
        add(
            Clause(
                kind="occurrences",
                subject=name,
                expected=f"[{lo}, {hi}]",
                observed=str(observed),
                passed=lo <= observed <= hi,
            )
        )

    counts = report.console.counts()
    for kind, (lo, hi) in envelope.alerts:
        observed = counts.get(kind, 0)
        add(
            Clause(
                kind="alerts",
                subject=kind,
                expected=f"[{lo}, {hi}]",
                observed=str(observed),
                passed=lo <= observed <= hi,
            )
        )

    if envelope.max_mean_recognition_ms is not None:
        observed_ms = report.mean_recognition_time * 1000.0
        add(
            Clause(
                kind="latency",
                subject="mean_recognition_ms",
                expected=f"<= {envelope.max_mean_recognition_ms:g}",
                observed=f"{observed_ms:.2f}",
                passed=observed_ms <= envelope.max_mean_recognition_ms,
            )
        )

    if envelope.crowd_resolutions is not None:
        lo, hi = envelope.crowd_resolutions
        observed = report.crowd_resolutions
        add(
            Clause(
                kind="crowd",
                subject="resolutions",
                expected=f"[{lo}, {hi}]",
                observed=str(observed),
                passed=lo <= observed <= hi,
            )
        )

    for feed, min_s, max_s in envelope.degraded:
        observed = _degraded_seconds(report, feed, run_end)
        upper = "inf" if max_s is None else str(max_s)
        ok = observed >= min_s and (max_s is None or observed <= max_s)
        add(
            Clause(
                kind="degraded",
                subject=feed,
                expected=f"[{min_s}, {upper}] s",
                observed=f"{observed} s",
                passed=ok,
            )
        )

    for variant in envelope.parity:
        matched = None if parity is None else parity.get(variant)
        add(
            Clause(
                kind="parity",
                subject=variant,
                expected="identical CE output",
                observed=(
                    "unchecked"
                    if matched is None
                    else ("identical" if matched else "DIVERGED")
                ),
                passed=bool(matched),
            )
        )

    return result
