"""Compile a :class:`~repro.scenarios.spec.ScenarioSpec` into the same
:class:`~repro.dublin.scenario.DublinScenario` object the Dublin module
produces.

The compiler is the bridge between the declarative DSL and the running
system: it builds the street network for the requested topology family,
translates the storm / stadium / weather sections into explicit
:class:`~repro.dublin.ground_truth.Incident`, :class:`Surge` and
:class:`WeatherSlowdown` objects (each from its own seed stream, so
adding a weather window never re-rolls the storm), wires a
:class:`TrafficGroundTruth` around them, and hands both through the
``DublinScenario`` injection seam.  Everything downstream — SCATS
placement, bus lines, region split, every recognition pipeline —
treats the result exactly like procedural Dublin.

Two conventions keep scenarios meaningful:

* All section times (storm window, stadium ``at``, weather window) are
  seconds *from scenario start*; the compiler shifts them onto the
  absolute simulation clock, so a spec reads the same whether the run
  starts at 03:00 or 08:30.
* Storm epicentres and the stadium venue are drawn from the junctions
  that will carry a SCATS intersection.  The compiler reproduces the
  exact placement ``DublinScenario`` will compute (same function, same
  derived seed), so "monitored junction" means precisely the sensors
  the recognition pipeline reads.

Pure function of the spec: same spec → byte-identical SDE stream.
"""

from __future__ import annotations

import random

from ..dublin.ground_truth import (
    Incident,
    Surge,
    TrafficGroundTruth,
    WeatherSlowdown,
)
from ..dublin.network import StreetNetwork, place_scats_topology
from ..dublin.scenario import DublinScenario, ScenarioConfig
from .spec import ScenarioSpec
from .topologies import build_network

__all__ = ["compile_scenario", "compile_ground_truth"]

#: Seed offsets, disjoint from the ``seed + 1 .. seed + 5`` offsets
#: DublinScenario derives internally for placement and the simulators.
_SEED_STORM = 6
_SEED_STADIUM = 7


def _scenario_config(spec: ScenarioSpec, network: StreetNetwork):
    n_junctions = network.graph.number_of_nodes()
    n_intersections = max(4, round(spec.sensors.coverage * n_junctions))
    return ScenarioConfig(
        seed=spec.seed,
        n_intersections=n_intersections,
        sensors_range=spec.sensors.sensors_range,
        n_buses=spec.fleet.n_buses,
        n_lines=spec.fleet.n_lines,
        unreliable_fraction=spec.fleet.unreliable_fraction,
        unreliable_mode=spec.fleet.unreliable_mode,
        scats_fault_rate=spec.sensors.fault_rate,
    )


def _monitored_nodes(
    spec: ScenarioSpec, network: StreetNetwork
) -> list:
    """The junctions that will carry a SCATS intersection — computed
    with the same placement call (and the same ``seed + 1``)
    ``DublinScenario`` performs, so the two never disagree."""
    config = _scenario_config(spec, network)
    _, node_of = place_scats_topology(
        network,
        n_intersections=config.n_intersections,
        sensors_range=config.sensors_range,
        seed=config.seed + 1,
    )
    return sorted(set(node_of.values()))


def _storm_incidents(
    spec: ScenarioSpec, nodes: list
) -> list[Incident]:
    """Materialise the storm section as explicit incidents."""
    storm = spec.storm
    assert storm is not None
    rng = random.Random(spec.seed + _SEED_STORM)
    window = storm.window or (0, spec.duration)
    lo_t = spec.start + window[0]
    hi_t = spec.start + window[1]
    sev_lo, sev_hi = storm.severity
    len_lo, len_hi = storm.length
    incidents = []
    for _ in range(storm.n_incidents):
        incidents.append(
            Incident(
                node=rng.choice(nodes),
                start=rng.randrange(lo_t, max(hi_t, lo_t + 1)),
                duration=rng.randrange(len_lo, len_hi + 1),
                severity=rng.uniform(sev_lo, sev_hi),
            )
        )
    return incidents


def _stadium_surge(spec: ScenarioSpec, nodes: list) -> Surge:
    """Pick the venue and build the surge for the stadium section."""
    stadium = spec.stadium
    assert stadium is not None
    rng = random.Random(spec.seed + _SEED_STADIUM)
    venue = rng.choice(nodes)
    return Surge(
        node=venue,
        start=spec.start + stadium.at,
        duration=stadium.duration,
        magnitude=stadium.magnitude,
        radius_hops=stadium.radius_hops,
    )


def compile_ground_truth(
    spec: ScenarioSpec, network: StreetNetwork
) -> TrafficGroundTruth:
    """Build the ground-truth dynamics for a spec over ``network``."""
    monitored = None
    incidents: list[Incident] = []
    if spec.storm is not None:
        monitored = _monitored_nodes(spec, network)
        incidents.extend(_storm_incidents(spec, monitored))
    surges: tuple[Surge, ...] = ()
    if spec.stadium is not None:
        if monitored is None:
            monitored = _monitored_nodes(spec, network)
        surges = (_stadium_surge(spec, monitored),)
    weather: tuple[WeatherSlowdown, ...] = ()
    if spec.weather is not None:
        weather = (
            WeatherSlowdown(
                start=spec.start + spec.weather.start,
                end=spec.start + spec.weather.end,
                density_factor=spec.weather.density_factor,
            ),
        )
    return TrafficGroundTruth(
        network,
        seed=spec.seed + 2,
        incidents=incidents,
        surges=surges,
        weather=weather,
    )


def compile_scenario(spec: ScenarioSpec) -> DublinScenario:
    """Compile a spec into a fully-wired :class:`DublinScenario`."""
    network = build_network(spec.topology, seed=spec.seed)
    ground_truth = compile_ground_truth(spec, network)
    config = _scenario_config(spec, network)
    return DublinScenario(
        config, network=network, ground_truth=ground_truth
    )
