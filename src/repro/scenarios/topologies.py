"""City topology families for the scenario DSL.

The Dublin substrate ships one procedural topology — the jittered grid
with radial arteries of :func:`repro.dublin.network
.generate_street_network`.  Real cities come in more shapes, and the
CE rules, the region split and the GP traffic model should not care:
this module adds a *radial* family (concentric rings and spokes — the
European-core shape) and a *multi-centre* family (several dense blocks
stitched by arterials — the polycentric-conurbation shape), all
producing the same :class:`~repro.dublin.network.StreetNetwork` object
inside the same bounding box, so SCATS placement, bus routing, the
four-region partition and every recognition pipeline run unchanged.

Every generator is a pure function of its parameters and seed.
"""

from __future__ import annotations

import math
import random

import networkx as nx

from ..dublin.network import (
    DUBLIN_BBOX,
    StreetNetwork,
    generate_street_network,
)

__all__ = [
    "FAMILIES",
    "build_network",
    "generate_radial_network",
    "generate_multi_centre_network",
]

#: The topology families the DSL accepts.
FAMILIES = ("grid", "radial", "multi_centre")


def _edge_length_m(positions, a, b) -> float:
    from ..core.geo import distance_m

    (lon_a, lat_a), (lon_b, lat_b) = positions[a], positions[b]
    return distance_m(lon_a, lat_a, lon_b, lat_b)


def generate_radial_network(
    *,
    rings: int = 6,
    spokes: int = 12,
    seed: int = 0,
    bbox: tuple[float, float, float, float] = DUBLIN_BBOX,
    jitter: float = 0.18,
    spoke_removal_rate: float = 0.12,
) -> StreetNetwork:
    """A ring-and-spoke city: junctions on ``rings`` concentric rings
    crossed by ``spokes`` radial arteries, plus a centre junction.

    Ring edges connect angular neighbours on the same ring; spoke
    edges connect radial neighbours on the same spoke (a fraction is
    removed for irregularity, rings keep the graph connected).
    Positions are jittered; the outermost ring touches ~90% of the
    bounding-box half-extent, so all four city regions are populated.
    """
    if rings < 2 or spokes < 4:
        raise ValueError("radial networks need rings >= 2 and spokes >= 4")
    if not 0.0 <= spoke_removal_rate < 0.5:
        raise ValueError("spoke_removal_rate must be in [0, 0.5)")
    rng = random.Random(seed)
    lon_min, lat_min, lon_max, lat_max = bbox
    c_lon = (lon_min + lon_max) / 2.0
    c_lat = (lat_min + lat_max) / 2.0
    half_lon = (lon_max - lon_min) / 2.0 * 0.9
    half_lat = (lat_max - lat_min) / 2.0 * 0.9

    graph = nx.Graph()
    positions: dict = {}

    def _add(node, lon, lat):
        positions[node] = (lon, lat)
        graph.add_node(node, lon=lon, lat=lat)

    _add("C", c_lon, c_lat)
    d_ring_lon = half_lon / rings
    d_ring_lat = half_lat / rings
    for ring in range(1, rings + 1):
        for spoke in range(spokes):
            angle = 2.0 * math.pi * spoke / spokes
            lon = c_lon + ring * d_ring_lon * math.cos(angle)
            lat = c_lat + ring * d_ring_lat * math.sin(angle)
            lon += rng.uniform(-jitter, jitter) * d_ring_lon
            lat += rng.uniform(-jitter, jitter) * d_ring_lat
            _add(f"R{ring:02d}_{spoke:02d}", lon, lat)

    def _edge(a, b):
        graph.add_edge(a, b, length_m=_edge_length_m(positions, a, b))

    for ring in range(1, rings + 1):
        for spoke in range(spokes):
            node = f"R{ring:02d}_{spoke:02d}"
            # Ring edge to the angular neighbour (always kept: the
            # rings are what guarantees connectivity).
            _edge(node, f"R{ring:02d}_{(spoke + 1) % spokes:02d}")
            # Spoke edge inward, thinned for irregularity.
            inward = (
                "C" if ring == 1 else f"R{ring - 1:02d}_{spoke:02d}"
            )
            if ring == 1 or rng.random() >= spoke_removal_rate:
                _edge(node, inward)
    return StreetNetwork(graph=graph, bbox=bbox)


def generate_multi_centre_network(
    *,
    centres: int = 3,
    block: int = 6,
    seed: int = 0,
    bbox: tuple[float, float, float, float] = DUBLIN_BBOX,
    jitter: float = 0.22,
    removal_rate: float = 0.08,
) -> StreetNetwork:
    """A polycentric conurbation: ``centres`` dense ``block``x``block``
    grid neighbourhoods spread over the bounding box, stitched together
    by arterial edges between their nearest junctions.

    Centre positions are placed on a jittered ellipse around the city
    centre (plus one *at* the centre when ``centres`` >= 3), so the
    blocks land in different city regions and the four-way recognition
    split stays meaningful.
    """
    if centres < 2 or block < 3:
        raise ValueError(
            "multi-centre networks need centres >= 2 and block >= 3"
        )
    if not 0.0 <= removal_rate < 0.5:
        raise ValueError("removal_rate must be in [0, 0.5)")
    rng = random.Random(seed)
    lon_min, lat_min, lon_max, lat_max = bbox
    c_lon = (lon_min + lon_max) / 2.0
    c_lat = (lat_min + lat_max) / 2.0
    span_lon = lon_max - lon_min
    span_lat = lat_max - lat_min
    # Each block occupies roughly a third of the bbox extent.
    block_lon = span_lon * 0.30
    block_lat = span_lat * 0.30

    anchors: list[tuple[float, float]] = []
    ring = centres if centres < 3 else centres - 1
    for i in range(ring):
        angle = 2.0 * math.pi * i / ring + rng.uniform(-0.2, 0.2)
        anchors.append(
            (
                c_lon + 0.30 * span_lon * math.cos(angle),
                c_lat + 0.30 * span_lat * math.sin(angle),
            )
        )
    if centres >= 3:
        anchors.append((c_lon, c_lat))

    graph = nx.Graph()
    positions: dict = {}

    def _edge(a, b):
        graph.add_edge(a, b, length_m=_edge_length_m(positions, a, b))

    per_block_nodes: list[list] = []
    d_lon = block_lon / (block - 1)
    d_lat = block_lat / (block - 1)
    for b_idx, (a_lon, a_lat) in enumerate(anchors):
        nodes: list = []
        for r in range(block):
            for c in range(block):
                node = f"M{b_idx}_{r:02d}_{c:02d}"
                lon = (
                    a_lon - block_lon / 2 + c * d_lon
                    + rng.uniform(-jitter, jitter) * d_lon
                )
                lat = (
                    a_lat - block_lat / 2 + r * d_lat
                    + rng.uniform(-jitter, jitter) * d_lat
                )
                positions[node] = (lon, lat)
                graph.add_node(node, lon=lon, lat=lat)
                nodes.append(node)
        per_block_nodes.append(nodes)
        for r in range(block):
            for c in range(block):
                node = f"M{b_idx}_{r:02d}_{c:02d}"
                if c + 1 < block and rng.random() >= removal_rate:
                    _edge(node, f"M{b_idx}_{r:02d}_{c + 1:02d}")
                if r + 1 < block and rng.random() >= removal_rate:
                    _edge(node, f"M{b_idx}_{r + 1:02d}_{c:02d}")

    # Arterials: connect every pair of adjacent blocks (consecutive on
    # the anchor ring, and everything to the central block) through
    # their two closest junction pairs.
    def _stitch(nodes_a, nodes_b):
        pairs = sorted(
            (
                (_edge_length_m(positions, a, b), a, b)
                for a in nodes_a
                for b in nodes_b
            ),
        )[:2]
        for _, a, b in pairs:
            _edge(a, b)

    for i in range(len(anchors) - 1):
        _stitch(per_block_nodes[i], per_block_nodes[(i + 1) % len(anchors)])
    if len(anchors) > 2:
        _stitch(per_block_nodes[0], per_block_nodes[-1])

    largest = max(nx.connected_components(graph), key=len)
    graph = graph.subgraph(largest).copy()
    return StreetNetwork(graph=graph, bbox=bbox)


def build_network(topology, *, seed: int = 0) -> StreetNetwork:
    """Compile a :class:`~repro.scenarios.spec.TopologySpec` into a
    street network (the dispatch point of the DSL's topology axis)."""
    if topology.family == "grid":
        return generate_street_network(
            rows=topology.rows, cols=topology.cols, seed=seed
        )
    if topology.family == "radial":
        return generate_radial_network(
            rings=topology.rings, spokes=topology.spokes, seed=seed
        )
    if topology.family == "multi_centre":
        return generate_multi_centre_network(
            centres=topology.centres, block=topology.block, seed=seed
        )
    raise ValueError(
        f"unknown topology family {topology.family!r}; "
        f"expected one of {', '.join(FAMILIES)}"
    )
