"""Run compiled scenarios through the system and check their envelopes.

One :func:`run_scenario` call performs the whole acceptance ritual for
a spec: compile, run the baseline pipeline (incremental + compiled
rules), run whichever parity variants the envelope demands — the
legacy recompute path, the interpreted rule path, and the sharded
runtime with the four regions packed onto two engines — compare their
CE output against the baseline, and evaluate every envelope clause.
:func:`run_matrix` does it for a whole library and aggregates.

Parity is compared on a *region-agnostic* fingerprint (CE occurrences
merged across engine keys, plus alerts, crowd outcomes and rewards):
the two-engine grouping changes the log keys but must not change what
the system recognised or told the operator.  The ``sharded2`` variant
is checked against an in-process run with the *same* grouping — a
grouping can legitimately change cross-entity CEs (e.g. the
``congestionInTheMake`` clusters), so the claim pinned here is "the
process topology does not matter", never "the grouping does not
matter".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..system.pipeline import SystemConfig, SystemReport, UrbanTrafficSystem
from .compiler import compile_scenario
from .envelope import EnvelopeResult, check_envelope
from .spec import ScenarioSpec

__all__ = [
    "ScenarioRun",
    "MatrixResult",
    "ce_fingerprint",
    "run_scenario",
    "run_matrix",
    "GROUPS2",
]

#: The two-engine packing used by the ``sharded2`` parity variant.
GROUPS2: tuple[tuple[str, ...], ...] = (
    ("central", "north"),
    ("west", "south"),
)


def ce_fingerprint(report: SystemReport) -> dict:
    """Everything a run *produced*, merged across engine keys.

    Engine keys differ between a four-engine and a two-engine run of
    the same scenario, so CE occurrences are flattened into one global
    set; alerts, crowd outcomes and rewards are engine-agnostic
    already.  Timings, shard bookkeeping and metrics namespaces are
    deliberately excluded — they describe *how* the run executed.
    """
    occurrences = set()
    for log in report.logs.values():
        for snapshot in log.snapshots:
            for name, occs in snapshot.occurrences.items():
                for occ in occs:
                    occurrences.add((name, repr(occ.key), occ.time))
    return {
        "ce": sorted(occurrences),
        "alerts": [repr(alert) for alert in report.console.alerts],
        "degraded": repr(sorted(report.degraded.items())),
        "crowd": (
            report.crowd_resolutions,
            report.crowd_unresolved,
            report.crowd_suppressed,
        ),
        "rewards": repr(sorted(report.rewards.items())),
    }


@dataclass
class ScenarioRun:
    """Everything one scenario acceptance run produced."""

    spec: ScenarioSpec
    report: SystemReport
    system: UrbanTrafficSystem
    envelope: EnvelopeResult
    #: Variant name -> matched-baseline verdict, for every variant the
    #: envelope demanded.
    parity: dict = field(default_factory=dict)
    #: Simulated seconds the run covered.
    duration: int = 0

    @property
    def passed(self) -> bool:
        return self.envelope.passed


@dataclass
class MatrixResult:
    """Aggregate of a scenario-matrix run."""

    runs: list = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(run.passed for run in self.runs)

    @property
    def n_failed(self) -> int:
        return sum(0 if run.passed else 1 for run in self.runs)

    def format(self) -> str:
        """Every envelope verdict plus the ``N/M scenarios passed``
        summary line."""
        lines = []
        for run in self.runs:
            lines.append(run.envelope.format())
        lines.append(
            f"matrix: {len(self.runs) - self.n_failed}/{len(self.runs)} "
            "scenarios passed"
        )
        return "\n".join(lines)


def _base_config(spec: ScenarioSpec) -> SystemConfig:
    return SystemConfig(seed=spec.seed, **spec.system_overrides)


def _run_variant(
    spec: ScenarioSpec, config: SystemConfig, start: int, end: int
) -> tuple[UrbanTrafficSystem, SystemReport]:
    """One complete pipeline run of the compiled scenario.

    Each variant gets a freshly compiled scenario object so no
    simulator or cache state can leak between legs — determinism of
    the compile itself is pinned by the round-trip property test.
    """
    system = UrbanTrafficSystem(compile_scenario(spec), config)
    report = system.run(start, end)
    return system, report


def run_scenario(
    spec: ScenarioSpec,
    *,
    duration: Optional[int] = None,
    check_parity: bool = True,
) -> ScenarioRun:
    """Run one scenario's full acceptance check.

    ``duration`` overrides the spec's simulated span (the tier-1 smoke
    test shrinks it); ``check_parity=False`` skips the extra variant
    runs and marks their clauses unchecked (failing them), for quick
    envelope-only iterations.
    """
    start = spec.start
    end = start + (spec.duration if duration is None else duration)
    config = _base_config(spec)
    system, report = _run_variant(spec, config, start, end)
    baseline = ce_fingerprint(report)

    parity: dict = {}
    if check_parity:
        for variant in spec.envelope.parity:
            if variant == "legacy":
                _, other = _run_variant(
                    spec, replace(config, incremental=False), start, end
                )
                parity[variant] = ce_fingerprint(other) == baseline
            elif variant == "interpreted":
                _, other = _run_variant(
                    spec, replace(config, compiled_rules=False), start, end
                )
                parity[variant] = ce_fingerprint(other) == baseline
            elif variant == "sharded2":
                # Both legs share the same two-engine grouping: the
                # comparison isolates the process topology.
                _, grouped = _run_variant(
                    spec, replace(config, region_groups=GROUPS2), start, end
                )
                _, sharded = _run_variant(
                    spec,
                    replace(
                        config, region_groups=GROUPS2, sharded=True
                    ),
                    start,
                    end,
                )
                parity[variant] = (
                    ce_fingerprint(sharded) == ce_fingerprint(grouped)
                )

    envelope = check_envelope(
        spec.envelope,
        report,
        scenario=spec.name,
        run_end=end,
        parity=parity if check_parity else None,
    )
    return ScenarioRun(
        spec=spec,
        report=report,
        system=system,
        envelope=envelope,
        parity=parity,
        duration=end - start,
    )


def run_matrix(
    specs,
    *,
    duration: Optional[int] = None,
    check_parity: bool = True,
    progress=None,
) -> MatrixResult:
    """Run every spec's acceptance check and aggregate the verdicts.

    ``progress`` is an optional callable invoked with each completed
    :class:`ScenarioRun` (the CLI prints envelope tables as they
    land).
    """
    result = MatrixResult()
    for spec in specs:
        run = run_scenario(
            spec, duration=duration, check_parity=check_parity
        )
        result.runs.append(run)
        if progress is not None:
            progress(run)
    return result
