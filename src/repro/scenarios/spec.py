"""The declarative scenario DSL.

A scenario is a plain nested mapping — TOML/JSON-shaped, checked into
the library or written by hand — describing one synthetic city day:

.. code-block:: python

    {
        "name": "radial_storm",
        "seed": 11,
        "duration": 2700,
        "topology": {"family": "radial", "rings": 6, "spokes": 12},
        "fleet": {"n_buses": 18, "n_lines": 5},
        "sensors": {"coverage": 0.4, "sensors_range": [2, 4]},
        "storm": {"n_incidents": 6, "severity": [60, 90]},
        "system": {"window": 600, "step": 300},
        "envelope": {...},   # see repro.scenarios.envelope
    }

:meth:`ScenarioSpec.from_mapping` validates the whole document with
the same discipline as :meth:`repro.system.SystemConfig.from_mapping`
— unknown keys are rejected with a closest-match hint, value ranges
are checked at construction — and :meth:`ScenarioSpec.to_mapping`
round-trips the spec back to a JSON-native mapping (the Hypothesis
round-trip property in ``tests/scenarios`` pins serialise → parse →
generate determinism).
"""

from __future__ import annotations

import difflib
from collections.abc import Mapping
from dataclasses import dataclass, field, fields
from typing import Any, Optional

from .topologies import FAMILIES

__all__ = [
    "TopologySpec",
    "FleetSpec",
    "SensorSpec",
    "StormSpec",
    "StadiumSpec",
    "WeatherSpec",
    "ScenarioSpec",
    "reject_unknown_keys",
]


def reject_unknown_keys(
    mapping: Mapping[str, Any], known, context: str
) -> None:
    """Fail on unknown keys with a closest-match hint (shared idiom of
    every ``from_mapping`` in the repo)."""
    known = list(known)
    unknown = sorted(set(mapping) - set(known))
    if unknown:
        hints = []
        for key in unknown:
            close = difflib.get_close_matches(key, known, n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            hints.append(f"{key!r}{hint}")
        raise ValueError(
            f"unknown {context} key(s): {', '.join(hints)}; "
            f"valid keys: {', '.join(sorted(known))}"
        )


def _section(cls, mapping: Mapping[str, Any], context: str):
    """Build a section dataclass from a mapping, coercing lists to
    tuples (JSON has no tuples) and rejecting unknown keys."""
    if not isinstance(mapping, Mapping):
        raise ValueError(f"{context} section must be a mapping")
    known = {f.name for f in fields(cls)}
    reject_unknown_keys(mapping, known, context)
    kwargs = {}
    for key, value in mapping.items():
        if isinstance(value, list):
            value = tuple(value)
        kwargs[key] = value
    return cls(**kwargs)


def _pair(name: str, value, *, lo_ok=None) -> tuple:
    value = tuple(value)
    if len(value) != 2:
        raise ValueError(f"{name} must be a (lo, hi) pair, got {value!r}")
    lo, hi = value
    if lo > hi:
        raise ValueError(f"{name} must satisfy lo <= hi, got {value!r}")
    if lo_ok is not None and lo < lo_ok:
        raise ValueError(f"{name} must start at >= {lo_ok}, got {value!r}")
    return value


@dataclass(frozen=True)
class TopologySpec:
    """The city-shape axis: which family, at what size."""

    family: str = "grid"
    #: Grid family.
    rows: int = 10
    cols: int = 10
    #: Radial family.
    rings: int = 6
    spokes: int = 12
    #: Multi-centre family.
    centres: int = 3
    block: int = 6

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown topology family {self.family!r}; expected one "
                f"of {', '.join(FAMILIES)}"
            )
        if self.family == "grid" and (self.rows < 3 or self.cols < 3):
            raise ValueError("grid topologies need rows, cols >= 3")
        if self.family == "radial" and (self.rings < 2 or self.spokes < 4):
            raise ValueError("radial topologies need rings >= 2, spokes >= 4")
        if self.family == "multi_centre" and (
            self.centres < 2 or self.block < 3
        ):
            raise ValueError(
                "multi-centre topologies need centres >= 2, block >= 3"
            )


@dataclass(frozen=True)
class FleetSpec:
    """The bus-fleet axis: size and veracity."""

    n_buses: int = 20
    n_lines: int = 5
    unreliable_fraction: float = 0.0
    unreliable_mode: str = "stuck_congested"

    def __post_init__(self) -> None:
        if self.n_buses < 1 or self.n_lines < 1:
            raise ValueError("fleet needs n_buses >= 1 and n_lines >= 1")
        if not 0.0 <= self.unreliable_fraction <= 1.0:
            raise ValueError("unreliable_fraction must be within [0, 1]")
        if self.unreliable_mode not in ("stuck_congested", "inverted"):
            raise ValueError(
                f"unreliable_mode must be 'stuck_congested' or "
                f"'inverted', got {self.unreliable_mode!r}"
            )


@dataclass(frozen=True)
class SensorSpec:
    """The sensor-coverage axis: how much of the city SCATS sees."""

    #: Fraction of junctions hosting a SCATS intersection (the
    #: coverage-sweep knob; Dublin's real deployment is ~0.85).
    coverage: float = 0.35
    sensors_range: tuple[int, int] = (2, 4)
    #: Fraction of detectors stuck at a free-flow reading.
    fault_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.coverage <= 1.0:
            raise ValueError("coverage must be within (0, 1]")
        lo, hi = _pair("sensors_range", self.sensors_range, lo_ok=1)
        object.__setattr__(self, "sensors_range", (int(lo), int(hi)))
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be within [0, 1]")


@dataclass(frozen=True)
class StormSpec:
    """An incident storm: seeded incidents over a window.

    Epicentres are drawn (by the scenario seed) from SCATS-monitored
    junctions — an incident nobody senses cannot be recognised, and
    the envelope exists to check what the system *observes*.
    """

    n_incidents: int = 4
    #: Incident start window in seconds *from scenario start*;
    #: ``None`` means the whole run.
    window: Optional[tuple[int, int]] = None
    #: Severity range (added density at the epicentre, veh/km).
    severity: tuple[float, float] = (55.0, 90.0)
    #: Incident duration range in seconds.
    length: tuple[int, int] = (1200, 5400)

    def __post_init__(self) -> None:
        if self.n_incidents < 1:
            raise ValueError("a storm needs n_incidents >= 1")
        if self.window is not None:
            object.__setattr__(
                self, "window", _pair("storm window", self.window, lo_ok=0)
            )
        object.__setattr__(
            self, "severity", _pair("storm severity", self.severity, lo_ok=0)
        )
        lo, hi = _pair("storm length", self.length, lo_ok=1)
        object.__setattr__(self, "length", (int(lo), int(hi)))


@dataclass(frozen=True)
class StadiumSpec:
    """A stadium-event surge: a venue floods its neighbourhood.

    ``at`` is seconds from scenario start; the venue is picked (by the
    scenario seed) among SCATS-monitored junctions, so the surge is
    observable through the sensor feed the envelope checks.
    """

    at: int = 900
    duration: int = 1800
    magnitude: float = 60.0
    radius_hops: int = 2

    def __post_init__(self) -> None:
        if self.at < 0 or self.duration < 60:
            raise ValueError(
                "a stadium event needs at >= 0 and duration >= 60"
            )
        if self.magnitude <= 0 or self.radius_hops < 0:
            raise ValueError(
                "a stadium event needs magnitude > 0 and radius_hops >= 0"
            )


@dataclass(frozen=True)
class WeatherSpec:
    """A weather slowdown window (city-wide density multiplier);
    ``start``/``end`` are seconds from scenario start."""

    start: int = 0
    end: int = 1800
    density_factor: float = 1.4

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError("weather needs 0 <= start < end")
        if self.density_factor <= 0:
            raise ValueError("density_factor must be positive")


#: SystemConfig keys a scenario's ``system`` section may *not* set:
#: the runner owns them (seed comes from the spec; execution paths are
#: chosen per parity variant).
RESERVED_SYSTEM_KEYS = frozenset(
    {
        "seed",
        "incremental",
        "compiled_rules",
        "sharded",
        "shard_dir",
        "region_groups",
        "distribute_by_region",
    }
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete scenario: city, workload, disruptions, envelope."""

    name: str
    description: str = ""
    seed: int = 0
    #: Simulated time-of-day the run starts at (seconds from
    #: midnight).  The ground truth's daily demand profile makes this
    #: a real axis: the same city at 03:30 and at 08:30 behaves very
    #: differently.
    start: int = 0
    #: Simulated seconds of stream the scenario runs over.
    duration: int = 2700
    topology: TopologySpec = field(default_factory=TopologySpec)
    fleet: FleetSpec = field(default_factory=FleetSpec)
    sensors: SensorSpec = field(default_factory=SensorSpec)
    storm: Optional[StormSpec] = None
    stadium: Optional[StadiumSpec] = None
    weather: Optional[WeatherSpec] = None
    #: :class:`repro.system.SystemConfig` overrides (window, step,
    #: fault_profile, n_participants, ...).  Seed and execution-path
    #: keys are reserved — the runner sets those.
    system: tuple[tuple[str, Any], ...] = ()
    #: The acceptance envelope (imported lazily to avoid a cycle).
    envelope: Any = None

    def __post_init__(self) -> None:
        from .envelope import EnvelopeSpec

        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(
                "scenario name must be a non-empty [a-z0-9_] identifier"
            )
        if self.seed < 0:
            raise ValueError("seed must not be negative")
        if not 0 <= self.start < 24 * 3600:
            raise ValueError(
                "start must be a time of day in [0, 86400) seconds"
            )
        if self.duration < 600:
            raise ValueError("duration must be at least 600 s (one window)")
        if isinstance(self.system, Mapping):
            object.__setattr__(
                self, "system", tuple(sorted(self.system.items()))
            )
        reserved = RESERVED_SYSTEM_KEYS & {k for k, _ in self.system}
        if reserved:
            raise ValueError(
                f"system section must not set {sorted(reserved)}: the "
                f"scenario runner owns seed and execution-path keys"
            )
        if self.envelope is None:
            object.__setattr__(self, "envelope", EnvelopeSpec())

    @property
    def system_overrides(self) -> dict[str, Any]:
        """The ``system`` section as a plain dict."""
        return dict(self.system)

    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ScenarioSpec":
        """Parse and validate one scenario document."""
        from .envelope import EnvelopeSpec

        if not isinstance(mapping, Mapping):
            raise ValueError("a scenario spec must be a mapping")
        known = {f.name for f in fields(cls)}
        reject_unknown_keys(mapping, known, "scenario")
        kwargs: dict[str, Any] = {}
        for key, value in mapping.items():
            if key == "topology":
                value = _section(TopologySpec, value, "topology")
            elif key == "fleet":
                value = _section(FleetSpec, value, "fleet")
            elif key == "sensors":
                value = _section(SensorSpec, value, "sensors")
            elif key == "storm" and value is not None:
                value = _section(StormSpec, value, "storm")
            elif key == "stadium" and value is not None:
                value = _section(StadiumSpec, value, "stadium")
            elif key == "weather" and value is not None:
                value = _section(WeatherSpec, value, "weather")
            elif key == "envelope" and value is not None:
                value = EnvelopeSpec.from_mapping(value)
            elif key == "system":
                if not isinstance(value, Mapping):
                    raise ValueError("system section must be a mapping")
                value = tuple(sorted(value.items()))
            kwargs[key] = value
        return cls(**kwargs)

    def to_mapping(self) -> dict[str, Any]:
        """Serialise back to a JSON-native nested mapping.

        ``ScenarioSpec.from_mapping(spec.to_mapping())`` reconstructs
        an equal spec — the round-trip half of the determinism pin.
        """

        def _plain(value):
            if isinstance(value, tuple):
                return [_plain(v) for v in value]
            return value

        def _section_mapping(section) -> dict[str, Any]:
            return {
                f.name: _plain(getattr(section, f.name))
                for f in fields(section)
            }

        out: dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "start": self.start,
            "duration": self.duration,
            "topology": _section_mapping(self.topology),
            "fleet": _section_mapping(self.fleet),
            "sensors": _section_mapping(self.sensors),
        }
        for key in ("storm", "stadium", "weather"):
            section = getattr(self, key)
            if section is not None:
                out[key] = _section_mapping(section)
        if self.system:
            out["system"] = {k: _plain(v) for k, v in self.system}
        out["envelope"] = self.envelope.to_mapping()
        return out
