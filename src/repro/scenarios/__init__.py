"""Scenario DSL, generator matrix and acceptance envelopes.

The Dublin substrate (:mod:`repro.dublin`) reproduces one city; this
package turns it into a *family* of cities.  A scenario is a small
declarative document — topology family and size, fleet, sensor
coverage, incident storms, stadium surges, weather windows, system
overrides — compiled by a seeded generator into the same
``DublinScenario`` object the Dublin module produces, so every
scenario runs unchanged through the incremental, compiled-columnar
and sharded pipelines.  Each scenario carries an acceptance envelope
(CE-count tolerance bands, latency bounds, degradation bounds, parity
demands) that ``repro scenarios run`` and the pytest matrix check.

See ``docs/scenarios.md`` for the schema and the envelope semantics.
"""

from .compiler import compile_ground_truth, compile_scenario
from .envelope import (
    PARITY_VARIANTS,
    Clause,
    EnvelopeResult,
    EnvelopeSpec,
    check_envelope,
)
from .library import (
    SCENARIO_LIBRARY,
    get_scenario,
    library_families,
    scenario_names,
)
from .report import render_matrix_html, write_matrix_report
from .runner import (
    GROUPS2,
    MatrixResult,
    ScenarioRun,
    ce_fingerprint,
    run_matrix,
    run_scenario,
)
from .spec import (
    FleetSpec,
    ScenarioSpec,
    SensorSpec,
    StadiumSpec,
    StormSpec,
    TopologySpec,
    WeatherSpec,
)
from .topologies import (
    FAMILIES,
    build_network,
    generate_multi_centre_network,
    generate_radial_network,
)

__all__ = [
    "ScenarioSpec",
    "TopologySpec",
    "FleetSpec",
    "SensorSpec",
    "StormSpec",
    "StadiumSpec",
    "WeatherSpec",
    "EnvelopeSpec",
    "Clause",
    "EnvelopeResult",
    "check_envelope",
    "PARITY_VARIANTS",
    "FAMILIES",
    "build_network",
    "generate_radial_network",
    "generate_multi_centre_network",
    "compile_scenario",
    "compile_ground_truth",
    "SCENARIO_LIBRARY",
    "scenario_names",
    "library_families",
    "get_scenario",
    "run_scenario",
    "run_matrix",
    "ScenarioRun",
    "MatrixResult",
    "ce_fingerprint",
    "GROUPS2",
    "render_matrix_html",
    "write_matrix_report",
]
