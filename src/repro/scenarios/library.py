"""The built-in scenario library.

Six scenarios over the three topology families, each written as the
plain-mapping document the DSL parses — the library dogfoods
:meth:`ScenarioSpec.from_mapping`, so a schema regression breaks at
import time.  Envelope bands were calibrated by running each scenario
and widening the observed counts by a drift margin (roughly one third
below, three-to-four-fold above); a band failure therefore means the
scenario stopped provoking the behaviour it was designed around, not
that an exact number wobbled.

All scenarios run through the morning rush (the daily demand profile
peaks at ~08:30) — congestion recognition at 3 a.m. has nothing to
recognise.  Scale note: these run at test scale (tens of buses, ~45
simulated minutes) so the full matrix with parity legs finishes in CI
minutes; the knobs all go up — the DSL is the same one the benchmarks
use.
"""

from __future__ import annotations

import difflib

from .spec import ScenarioSpec

__all__ = [
    "SCENARIO_LIBRARY",
    "scenario_names",
    "get_scenario",
    "library_families",
]

#: 07:45 — the rising edge of the morning peak.
_RUSH = 27900


_DOCUMENTS: tuple[dict, ...] = (
    {
        "name": "grid_rush",
        "description": (
            "baseline morning rush on the grid city: centre-boosted "
            "demand, no disruptions; the full parity quad must agree"
        ),
        "seed": 101,
        "start": _RUSH,
        "duration": 2700,
        "topology": {"family": "grid", "rows": 9, "cols": 12},
        "fleet": {"n_buses": 14, "n_lines": 4},
        "sensors": {"coverage": 0.12},
        "system": {"n_participants": 16},
        "envelope": {
            "occurrences": {"agree": [6, 70], "disagree": [1, 30]},
            "alerts": {"bus congestion": [1, 12]},
            "max_mean_recognition_ms": 400.0,
            "parity": ["legacy", "interpreted", "sharded2"],
        },
    },
    {
        "name": "radial_storm",
        "description": (
            "incident storm on the ring-and-spoke city: six severe "
            "incidents on monitored junctions inside the first "
            "25 minutes"
        ),
        "seed": 211,
        "start": _RUSH,
        "duration": 2700,
        "topology": {"family": "radial", "rings": 5, "spokes": 10},
        "fleet": {"n_buses": 14, "n_lines": 4},
        "sensors": {"coverage": 0.2},
        "storm": {
            "n_incidents": 6,
            "window": [0, 1500],
            "severity": [110, 140],
            "length": [1500, 3000],
        },
        "system": {"n_participants": 16},
        "envelope": {
            "occurrences": {"agree": [30, 320], "disagree": [6, 100]},
            "alerts": {
                "bus congestion": [2, 30],
                "scats congestion": [1, 24],
                "crowd resolution": [1, 20],
            },
            "max_mean_recognition_ms": 400.0,
            "crowd_resolutions": [1, 20],
            "parity": ["legacy", "interpreted"],
        },
    },
    {
        "name": "multi_centre_stadium",
        "description": (
            "stadium event in the polycentric conurbation: one "
            "monitored venue floods its two-hop neighbourhood "
            "mid-morning"
        ),
        "seed": 307,
        "start": 27000,
        "duration": 2700,
        "topology": {"family": "multi_centre", "centres": 3, "block": 5},
        "fleet": {"n_buses": 14, "n_lines": 4},
        "sensors": {"coverage": 0.18},
        "stadium": {
            "at": 600,
            "duration": 1800,
            "magnitude": 120.0,
            "radius_hops": 2,
        },
        "system": {"n_participants": 16},
        "envelope": {
            "occurrences": {"disagree": [20, 260]},
            "alerts": {
                "bus congestion": [3, 40],
                "source disagreement": [3, 50],
            },
            "max_mean_recognition_ms": 400.0,
            "crowd_resolutions": [2, 25],
            "parity": ["legacy", "interpreted"],
        },
    },
    {
        "name": "grid_weather_crawl",
        "description": (
            "city-wide weather slowdown on the grid: densities up 60% "
            "through the rush, sensor- and bus-side congestion both "
            "well above the dry baseline"
        ),
        "seed": 401,
        "start": _RUSH,
        "duration": 2700,
        "topology": {"family": "grid", "rows": 9, "cols": 12},
        "fleet": {"n_buses": 14, "n_lines": 4},
        "sensors": {"coverage": 0.12},
        "weather": {"start": 300, "end": 2700, "density_factor": 1.6},
        "system": {"n_participants": 16},
        "envelope": {
            "occurrences": {"disagree": [10, 170]},
            "alerts": {
                "scats congestion": [1, 20],
                "bus congestion": [1, 15],
            },
            "max_mean_recognition_ms": 400.0,
            "parity": ["legacy", "interpreted"],
        },
    },
    {
        "name": "radial_sparse_sensors",
        "description": (
            "coverage sweep low end: very few SCATS intersections and "
            "a sixth of detectors stuck at free-flow, with a small "
            "storm — recognition leans on the bus feed and the crowd "
            "arbitrates"
        ),
        "seed": 503,
        "start": _RUSH,
        "duration": 2700,
        "topology": {"family": "radial", "rings": 5, "spokes": 10},
        "fleet": {"n_buses": 16, "n_lines": 5},
        "sensors": {"coverage": 0.08, "fault_rate": 0.15},
        "storm": {
            "n_incidents": 3,
            "window": [0, 1200],
            "severity": [110, 140],
            "length": [1800, 3000],
        },
        "system": {"n_participants": 16},
        "envelope": {
            "occurrences": {"agree": [3, 50], "disagree": [3, 50]},
            "alerts": {"crowd resolution": [1, 10]},
            "max_mean_recognition_ms": 400.0,
            "crowd_resolutions": [1, 10],
            "parity": ["legacy", "interpreted"],
        },
    },
    {
        "name": "grid_blackout_chaos",
        "description": (
            "storm under a total SCATS outage: the feed breaker must "
            "open, the degradation timeline must name the scats feed, "
            "and sensor-side congestion alerts must be suppressed "
            "while bus-side recognition keeps flowing"
        ),
        "seed": 613,
        "start": _RUSH,
        "duration": 2700,
        "topology": {"family": "grid", "rows": 9, "cols": 12},
        "fleet": {"n_buses": 14, "n_lines": 4},
        "sensors": {"coverage": 0.12},
        "storm": {
            "n_incidents": 4,
            "window": [0, 1200],
            "severity": [110, 140],
            "length": [1800, 3000],
        },
        "system": {
            "n_participants": 16,
            "fault_profile": "blackout_scats",
        },
        "envelope": {
            "occurrences": {"disagree": [8, 110]},
            "alerts": {
                "bus congestion": [1, 15],
                # Graceful degradation: with the scats feed down, the
                # sensor-side congestion alerts must be suppressed.
                "scats congestion": [0, 0],
            },
            "max_mean_recognition_ms": 400.0,
            "degraded": [["scats", 600, 2700]],
            "parity": ["legacy", "interpreted"],
        },
    },
)

#: The parsed library, in declaration order.
SCENARIO_LIBRARY: tuple[ScenarioSpec, ...] = tuple(
    ScenarioSpec.from_mapping(doc) for doc in _DOCUMENTS
)


def scenario_names() -> list[str]:
    """Names of every library scenario, in declaration order."""
    return [spec.name for spec in SCENARIO_LIBRARY]


def library_families() -> set[str]:
    """Topology families the library covers (the matrix acceptance
    criterion demands >= 3)."""
    return {spec.topology.family for spec in SCENARIO_LIBRARY}


def get_scenario(name: str) -> ScenarioSpec:
    """Look a scenario up by name; ``KeyError`` with a closest-match
    hint on a typo."""
    for spec in SCENARIO_LIBRARY:
        if spec.name == name:
            return spec
    close = difflib.get_close_matches(name, scenario_names(), n=1)
    hint = f" (did you mean {close[0]!r}?)" if close else ""
    raise KeyError(
        f"unknown scenario {name!r}{hint}; available: "
        f"{', '.join(scenario_names())}"
    )
