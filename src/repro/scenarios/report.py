"""Self-contained HTML report of a scenario-matrix run.

Mirrors :mod:`repro.system.report`'s constraints: one standalone HTML
file, no external assets or scripts, archivable next to CI artifacts.
The document leads with the matrix verdict table (one row per
scenario: family, duration, envelope verdict, failed clauses) and then
renders every scenario's full clause table — expected band, observed
value, PASS/FAIL — so a red CI job is diagnosable from the artifact
alone.
"""

from __future__ import annotations

import html
from pathlib import Path

from ..ioutils import atomic_write_text
from .runner import MatrixResult, ScenarioRun

__all__ = ["render_matrix_html", "write_matrix_report"]

_STYLE = """
body { font-family: sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; }
td, th { border: 1px solid #ccc; padding: 4px 10px; text-align: left; }
th { background: #f0f0f0; }
.num { text-align: right; }
.pass { color: #0a6b25; font-weight: bold; }
.fail { color: #a11022; font-weight: bold; }
"""


def _verdict(passed: bool) -> str:
    cls = "pass" if passed else "fail"
    return f'<span class="{cls}">{"PASS" if passed else "FAIL"}</span>'


def _scenario_section(run: ScenarioRun) -> str:
    spec = run.spec
    clause_rows = "".join(
        f"<tr><td>{html.escape(clause.kind)}</td>"
        f"<td>{html.escape(clause.subject)}</td>"
        f"<td>{html.escape(clause.expected)}</td>"
        f'<td class="num">{html.escape(clause.observed)}</td>'
        f"<td>{_verdict(clause.passed)}</td></tr>"
        for clause in run.envelope.clauses
    )
    return (
        f"<h2>{html.escape(spec.name)} — {_verdict(run.passed)}</h2>"
        f"<p>{html.escape(spec.description)}</p>"
        f"<p>topology <code>{html.escape(spec.topology.family)}</code>"
        f" · seed {spec.seed} · start {spec.start} s"
        f" · {run.duration} simulated seconds</p>"
        "<table><tr><th>clause</th><th>subject</th><th>expected</th>"
        "<th>observed</th><th>verdict</th></tr>"
        f"{clause_rows}</table>"
    )


def render_matrix_html(result: MatrixResult) -> str:
    """Render a matrix run as a standalone HTML document string."""
    summary_rows = "".join(
        f"<tr><td>{html.escape(run.spec.name)}</td>"
        f"<td>{html.escape(run.spec.topology.family)}</td>"
        f'<td class="num">{run.duration}</td>'
        f'<td class="num">{len(run.envelope.clauses)}</td>'
        f'<td class="num">{len(run.envelope.failures)}</td>'
        f"<td>{_verdict(run.passed)}</td></tr>"
        for run in result.runs
    )
    sections = "".join(_scenario_section(run) for run in result.runs)
    n_pass = len(result.runs) - result.n_failed
    return (
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
        "<title>scenario matrix</title>"
        f"<style>{_STYLE}</style></head><body>"
        f"<h1>scenario matrix — {_verdict(result.passed)} "
        f"({n_pass}/{len(result.runs)} scenarios)</h1>"
        "<table><tr><th>scenario</th><th>family</th>"
        "<th>duration (s)</th><th>clauses</th><th>failed</th>"
        f"<th>verdict</th></tr>{summary_rows}</table>"
        f"{sections}</body></html>"
    )


def write_matrix_report(result: MatrixResult, path: str | Path) -> Path:
    """Render with :func:`render_matrix_html` and write to ``path``."""
    path = Path(path)
    atomic_write_text(path, render_matrix_html(result))
    return path
