"""Lightweight runtime metrics: counters, gauges and timing histograms.

The paper's evaluation (Figures 4 and 6) is built on two operational
questions — "how long does a recognition/query step take?" and "how
much data moves through each component?".  This module gives every
subsystem a uniform way to answer them at run time: a
:class:`Registry` hands out named :class:`Counter`, :class:`Gauge` and
:class:`Timing` instruments, and exports the whole collection as a
plain JSON-able dict (``repro-traffic metrics`` and
``SystemReport.metrics`` are thin views over it).

Everything is dependency-free and cheap enough to leave enabled: a
counter increment is one integer add, a timing observation updates four
scalars.  Instruments are created on first use, so wiring code never
has to pre-declare names.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator, Mapping, Optional


class Counter:
    """A monotonically increasing integer (items seen, queries run)."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = value

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must not be negative) to the counter."""
        if n < 0:
            raise ValueError("counters only go up; use a Gauge instead")
        self.value += n


class Gauge:
    """A point-in-time scalar (coverage fraction, items per second)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = value

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)


class Timing:
    """A streaming summary of duration observations (seconds).

    Keeps count/total/min/max — enough for means and extremes without
    retaining samples, so it is safe on hot paths.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(
        self,
        count: int = 0,
        total: float = 0.0,
        min: Optional[float] = None,
        max: Optional[float] = None,
    ):
        self.count = count
        self.total = total
        self.min = min
        self.max = max

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        seconds = float(seconds)
        self.count += 1
        self.total += seconds
        if self.min is None or seconds < self.min:
            self.min = seconds
        if self.max is None or seconds > self.max:
            self.max = seconds

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager observing the wall time of its block."""
        t0 = perf_counter()
        try:
            yield
        finally:
            self.observe(perf_counter() - t0)

    @property
    def mean(self) -> float:
        """Mean observed duration (0.0 before any observation)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def to_dict(self) -> dict[str, Any]:
        """Summary dict (count/total/min/max/mean), JSON-able."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Timing":
        return cls(
            count=int(data.get("count", 0)),
            total=float(data.get("total", 0.0)),
            min=data.get("min"),
            max=data.get("max"),
        )


class Registry:
    """A named collection of instruments with JSON import/export.

    Names are free-form dotted paths (``streams.process.cep-north.seconds``);
    the dots are convention only — the registry does not build a tree.
    Instruments are created on first access, so the registry doubles as
    the declaration point.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timings: dict[str, Timing] = {}

    # -- instrument access -------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def timing(self, name: str) -> Timing:
        """Get or create the timing histogram ``name``."""
        timing = self._timings.get(name)
        if timing is None:
            timing = self._timings[name] = Timing()
        return timing

    # -- introspection -----------------------------------------------------
    def names(self) -> list[str]:
        """All instrument names, sorted."""
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._timings)
        )

    def counters(self) -> dict[str, int]:
        """Counter values by name (a copy)."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def counters_with_prefix(self, prefix: str) -> dict[str, int]:
        """Counter values whose name starts with ``prefix`` (a copy).

        The conventional view over one subsystem's namespace — e.g.
        ``counters_with_prefix("faults.")`` for everything the fault
        injectors did, or ``counters_with_prefix("streams.breaker.")``
        for breaker activity.
        """
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def gauges(self) -> dict[str, float]:
        """Gauge values by name (a copy)."""
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def timings(self) -> dict[str, Timing]:
        """Timing instruments by name (the live objects)."""
        return dict(sorted(self._timings.items()))

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._timings)
        )

    # -- merge / export ----------------------------------------------------
    def merge(self, other: "Registry", *, prefix: str = "") -> None:
        """Fold another registry in: counters and timings add up,
        gauges take the other registry's (newer) value.

        ``prefix`` namespaces every incoming instrument (e.g.
        ``prefix="shard.north."``), so merging several shard registries
        aggregates them side by side instead of overwriting each other.
        """
        for name, counter in other._counters.items():
            self.counter(prefix + name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(prefix + name).set(gauge.value)
        for name, timing in other._timings.items():
            mine = self.timing(prefix + name)
            mine.count += timing.count
            mine.total += timing.total
            for bound in (timing.min, timing.max):
                if bound is None:
                    continue
                if mine.min is None or bound < mine.min:
                    mine.min = bound
                if mine.max is None or bound > mine.max:
                    mine.max = bound

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict export: ``{"counters": ..., "gauges": ...,
        "timings": ...}`` with timings expanded to summary dicts."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "timings": {
                name: t.to_dict() for name, t in sorted(self._timings.items())
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`to_dict` export as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path, indent: Optional[int] = 2) -> None:
        """Write the :meth:`to_json` document to ``path`` atomically
        (a crash mid-export never leaves a truncated file)."""
        from ..ioutils import atomic_write_text

        atomic_write_text(path, self.to_json(indent=indent) + "\n")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Registry":
        """Rebuild a registry from a :meth:`to_dict` export."""
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry._counters[name] = Counter(int(value))
        for name, value in data.get("gauges", {}).items():
            registry._gauges[name] = Gauge(float(value))
        for name, summary in data.get("timings", {}).items():
            registry._timings[name] = Timing.from_dict(summary)
        return registry

    @classmethod
    def from_json(cls, text: str) -> "Registry":
        """Rebuild a registry from a :meth:`to_json` document."""
        return cls.from_dict(json.loads(text))
