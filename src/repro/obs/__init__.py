"""Observability: runtime counters, gauges and timing histograms.

See :mod:`repro.obs.metrics` for the instruments and
``docs/observability.md`` for the metric names each subsystem emits.
"""

from .metrics import Counter, Gauge, Registry, Timing

__all__ = ["Counter", "Gauge", "Registry", "Timing"]
