"""Write-ahead journal of admitted stream items.

One journal *segment* per checkpoint: ``journal-%08d.wal`` is the
segment opened right after the checkpoint for that step was written
(segment 0 precedes the first checkpoint), so recovery only ever
replays a single segment — the one following the checkpoint it
restored.

Each record is one line::

    <sha256(json)[:12]> <canonical json>\n

The per-line checksum makes the reader torn-tail tolerant: a crash
mid-append leaves a final line that fails its checksum (or has no
newline), and the scan simply stops there — everything before it is
intact.  Records are appended *before* the work they describe is
performed (write-ahead), flushed per record.

The journal is also the coordinator's replay ledger: on restore, the
``"step"`` records after the checkpointed step say exactly which steps
and how many admitted stream items the resumed run will reprocess —
surfaced as the ``recovery.replay.*`` counters.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Optional

__all__ = ["WriteAheadJournal"]


def _frame(record: dict[str, Any]) -> str:
    text = json.dumps(record, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]
    return f"{digest} {text}\n"


def _parse(line: str) -> Optional[dict[str, Any]]:
    """The record on one framed line, or ``None`` if the line is torn."""
    if not line.endswith("\n"):
        return None  # torn tail: the trailing newline never made it
    body = line[:-1]
    digest, sep, text = body.partition(" ")
    if not sep:
        return None
    if hashlib.sha256(text.encode("utf-8")).hexdigest()[:12] != digest:
        return None
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return None


class WriteAheadJournal:
    """Segmented, checksummed append-only journal in a run directory."""

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._handle = None
        self._base_step: Optional[int] = None

    def segment_path(self, base_step: int) -> Path:
        """Path of the segment that follows the checkpoint at
        ``base_step``."""
        return self.directory / f"journal-{base_step:08d}.wal"

    @property
    def base_step(self) -> Optional[int]:
        """The open segment's base step, or ``None`` before open()."""
        return self._base_step

    # ------------------------------------------------------------------
    def open(self, base_step: int, *, fresh: bool = False) -> None:
        """Start appending to the segment for ``base_step``.

        With ``fresh`` any existing segment file is archived first (to
        ``<name>.replayed-N``): on restore the replayed steps re-journal
        themselves as they re-execute, so the live segment must restart
        empty — while the superseded records stay on disk for forensics.
        """
        self.close()
        path = self.segment_path(base_step)
        if fresh and path.exists():
            n = 0
            while True:
                archived = path.with_name(f"{path.name}.replayed-{n}")
                if not archived.exists():
                    break
                n += 1
            path.rename(archived)
        self._handle = path.open("a", encoding="utf-8")
        self._base_step = base_step

    def append(self, record: dict[str, Any]) -> None:
        """Append one record to the open segment (write-ahead: call
        before performing the work the record describes)."""
        if self._handle is None:
            raise RuntimeError("journal segment is not open")
        self._handle.write(_frame(record))
        self._handle.flush()

    def close(self) -> None:
        """Close the open segment, if any."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._base_step = None

    def prune(self, min_base_step: int) -> None:
        """Drop segments (and their replay archives) older than the
        oldest checkpoint still on disk — they can never be replayed."""
        for path in self.directory.glob("journal-*.wal*"):
            digits = path.name[len("journal-"):len("journal-") + 8]
            if digits.isdigit() and int(digits) < min_base_step:
                path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def read_segment(self, base_step: int) -> list[dict[str, Any]]:
        """All intact records of one segment, in order.

        Tolerates a torn tail: the scan stops at the first line that
        fails framing or its checksum.  A missing segment reads as
        empty.
        """
        path = self.segment_path(base_step)
        if not path.exists():
            return []
        records = []
        with path.open("r", encoding="utf-8", newline="") as handle:
            for line in handle:
                record = _parse(line)
                if record is None:
                    break
                records.append(record)
        return records
