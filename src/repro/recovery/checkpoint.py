"""Versioned, checksummed, atomically written checkpoints.

A checkpoint file is a fixed header followed by a pickle of the whole
pipeline object graph::

    offset  size  field
    0       8     magic  b"RPROCKP1"
    8       4     format version (little-endian u32)
    12      8     payload length in bytes (little-endian u64)
    20      32    SHA-256 of the payload
    52      ...   payload (pickle, highest protocol)

Files are named ``checkpoint-%08d.ckpt`` by the recognition step they
snapshot and written through :func:`repro.ioutils.atomic_write_bytes`
(tmp file + ``os.replace``), so a crash mid-write leaves at most a
stray ``.tmp`` — never a torn checkpoint.  The loader nevertheless
validates magic, version, length and digest on every read and falls
back to the next-newest file: a torn or bit-rotted checkpoint (e.g.
written by a non-atomic writer before a power loss — what the
``CrashInjector``'s mid-write phase simulates) costs the work since
the previous checkpoint, not the run.
"""

from __future__ import annotations

import hashlib
import pickle
import re
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from ..ioutils import atomic_write_bytes

MAGIC = b"RPROCKP1"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<8sIQ32s")
_NAME_RE = re.compile(r"^checkpoint-(\d{8})\.ckpt$")


class CheckpointError(RuntimeError):
    """A checkpoint file failed validation."""


class NoValidCheckpoint(CheckpointError):
    """No checkpoint in the directory survived validation."""


@dataclass(frozen=True)
class CheckpointInfo:
    """One on-disk checkpoint's identity."""

    path: Path
    step: int
    size: int


class CheckpointManager:
    """Reads and writes the checkpoint files of one run directory.

    Parameters
    ----------
    directory:
        The run's recovery directory (created if missing); shared with
        the write-ahead journal.
    retain:
        How many checkpoints to keep; older ones are pruned after each
        successful write.  At least 2, so a freshly written file that
        turns out corrupt always leaves a predecessor to fall back to.
    """

    def __init__(self, directory, *, retain: int = 3):
        if retain < 2:
            raise ValueError(f"retain must be at least 2, got {retain}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.retain = retain

    def path_for(self, step: int) -> Path:
        """The checkpoint path for ``step``."""
        return self.directory / f"checkpoint-{step:08d}.ckpt"

    def list(self) -> list[CheckpointInfo]:
        """On-disk checkpoints, oldest first (no validation)."""
        found = []
        for path in self.directory.iterdir():
            match = _NAME_RE.match(path.name)
            if match:
                found.append(
                    CheckpointInfo(
                        path=path,
                        step=int(match.group(1)),
                        size=path.stat().st_size,
                    )
                )
        return sorted(found, key=lambda info: info.step)

    # ------------------------------------------------------------------
    def save(
        self, step: int, payload: Any, *, pre_replace=None
    ) -> CheckpointInfo:
        """Serialise ``payload`` and write the checkpoint for ``step``.

        ``pre_replace(path, data)``, when given, runs after
        serialisation but before the atomic write — the seam the
        mid-write crash injector uses to deposit a torn file and die.
        """
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        header = _HEADER.pack(
            MAGIC, FORMAT_VERSION, len(blob), hashlib.sha256(blob).digest()
        )
        data = header + blob
        path = self.path_for(step)
        if pre_replace is not None:
            pre_replace(path, data)
        atomic_write_bytes(path, data)
        self._prune()
        return CheckpointInfo(path=path, step=step, size=len(data))

    def _prune(self) -> None:
        # The baseline (step 0) is never pruned: it holds the pristine
        # pre-generation system every later *streamless* checkpoint
        # needs to rebuild its pending stream.  ``retain`` applies to
        # the mid-run checkpoints.
        others = [info for info in self.list() if info.step != 0]
        for info in others[: -self.retain]:
            info.path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def load(self, path) -> Any:
        """Validate and unpickle one checkpoint file.

        Raises :class:`CheckpointError` on any validation failure
        (truncated header, wrong magic/version, short payload, digest
        mismatch).
        """
        data = Path(path).read_bytes()
        if len(data) < _HEADER.size:
            raise CheckpointError(f"{path}: truncated header")
        magic, version, length, digest = _HEADER.unpack_from(data)
        if magic != MAGIC:
            raise CheckpointError(f"{path}: bad magic {magic!r}")
        if version != FORMAT_VERSION:
            raise CheckpointError(
                f"{path}: unsupported format version {version}"
            )
        blob = data[_HEADER.size:]
        if len(blob) != length:
            raise CheckpointError(
                f"{path}: payload is {len(blob)} bytes, header says {length}"
            )
        if hashlib.sha256(blob).digest() != digest:
            raise CheckpointError(f"{path}: payload checksum mismatch")
        return pickle.loads(blob)

    def load_latest(
        self,
    ) -> tuple[Any, CheckpointInfo, int]:
        """The newest checkpoint that validates.

        Returns ``(payload, info, fallbacks)`` where ``fallbacks``
        counts newer checkpoints that were skipped as invalid.  Raises
        :class:`NoValidCheckpoint` when nothing validates (including an
        empty directory).
        """
        fallbacks = 0
        last_error: Optional[CheckpointError] = None
        for info in reversed(self.list()):
            try:
                return self.load(info.path), info, fallbacks
            except CheckpointError as error:
                last_error = error
                fallbacks += 1
        raise NoValidCheckpoint(
            f"no valid checkpoint under {self.directory}"
            + (f" (last error: {last_error})" if last_error else "")
        )
