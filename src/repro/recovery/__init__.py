"""Durable checkpoint/restore for the urban-traffic pipeline.

The paper's system is meant to run continuously over the city's
streams; this package makes the reproduction restartable: a
:class:`CheckpointCoordinator` snapshots the full pipeline object
graph — incremental working memories and RTEC caches (pending items
included), recognition-log dedup sets, crowd online-EM ``p_i``
estimates, degradation breaker/timeline state, metrics counters —
every ``SystemConfig.checkpoint_interval`` recognition steps, into
checksummed checkpoints written atomically, alongside a write-ahead
journal of the stream items each step admits.  ``repro run --resume
<dir>`` restores the newest valid checkpoint (falling back over torn
files), replays at most one journal segment, and finishes with output
identical to an uninterrupted run.  See ``docs/recovery.md``.
"""

from .checkpoint import (
    CheckpointError,
    CheckpointInfo,
    CheckpointManager,
    NoValidCheckpoint,
)
from .coordinator import CheckpointCoordinator
from .harness import CrashOutcome, resume_run, run_resilient, run_with_recovery
from .journal import WriteAheadJournal

__all__ = [
    "CheckpointManager",
    "CheckpointInfo",
    "CheckpointError",
    "NoValidCheckpoint",
    "WriteAheadJournal",
    "CheckpointCoordinator",
    "CrashOutcome",
    "run_with_recovery",
    "resume_run",
    "run_resilient",
]
