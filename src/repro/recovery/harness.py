"""Crash/restart harness: run, die, resume — as one-liners.

Used by the crash-parity tests, the chaos CI job and the CLI's
``--resume`` path.  The harness treats :class:`SimulatedCrash` as the
in-process stand-in for a process death: everything the revived run
may use must come from the recovery directory, never from the crashed
objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..faults import SimulatedCrash
from .coordinator import CheckpointCoordinator

__all__ = ["CrashOutcome", "run_with_recovery", "resume_run", "run_resilient"]


@dataclass
class CrashOutcome:
    """What one (possibly killed) run attempt produced."""

    #: Whether the attempt died to a :class:`SimulatedCrash`.
    crashed: bool
    #: The step the crash fired at (``None`` for a clean finish).
    crash_step: Optional[int]
    #: The phase the crash fired in (``"step"``/``"checkpoint"``).
    crash_phase: Optional[str]
    #: The report, for a clean finish only.
    report: Optional[object]


def run_with_recovery(
    system,
    start: int,
    end: int,
    directory,
    *,
    crash=None,
    interval: Optional[int] = None,
    retain: int = 3,
) -> CrashOutcome:
    """Run ``system`` with checkpointing into ``directory``.

    A :class:`SimulatedCrash` from ``crash`` is caught and reported as
    a crashed outcome; any other exception propagates.
    """
    coordinator = CheckpointCoordinator(
        directory, interval=interval, retain=retain, crash=crash
    )
    try:
        report = system.run(start, end, recovery=coordinator)
    except SimulatedCrash as death:
        coordinator.journal.close()
        return CrashOutcome(True, death.step, death.phase, None)
    return CrashOutcome(False, None, None, report)


def resume_run(
    directory,
    *,
    crash=None,
    interval: Optional[int] = None,
    retain: int = 3,
):
    """Restore the latest valid checkpoint in ``directory`` and run the
    pipeline to completion.

    Returns ``(system, outcome)`` — the revived system (for map
    rendering, metrics, further queries) and the attempt's
    :class:`CrashOutcome` (a resumed run can itself be crashed by
    ``crash``).
    """
    coordinator = CheckpointCoordinator(
        directory, interval=interval, retain=retain, crash=crash
    )
    system, state = coordinator.restore_latest()
    try:
        if state is None:
            # The newest checkpoint is the pre-generation baseline:
            # re-run from the top — generation is deterministic from
            # the checkpointed RNG state, so this reproduces the
            # crashed run exactly.
            start, end = coordinator.restored_span
            report = system.run(start, end, recovery=coordinator)
        else:
            report = system.resume_from(state, coordinator)
    except SimulatedCrash as death:
        coordinator.journal.close()
        return system, CrashOutcome(True, death.step, death.phase, None)
    return system, CrashOutcome(False, None, None, report)


def run_resilient(
    system,
    start: int,
    end: int,
    directory,
    *,
    crashes=(),
    interval: Optional[int] = None,
    retain: int = 3,
    max_restarts: int = 8,
):
    """Run to completion through a scripted sequence of crashes.

    ``crashes`` injectors are applied one per attempt (first to the
    initial run, then one per resume); once the script is exhausted the
    remaining attempts run crash-free.  Returns the final
    ``(system, report)``.
    """
    script = list(crashes)
    outcome = run_with_recovery(
        system,
        start,
        end,
        directory,
        crash=script.pop(0) if script else None,
        interval=interval,
        retain=retain,
    )
    restarts = 0
    while outcome.crashed:
        restarts += 1
        if restarts > max_restarts:
            raise RuntimeError(
                f"run did not complete within {max_restarts} restarts"
            )
        system, outcome = resume_run(
            directory,
            crash=script.pop(0) if script else None,
            interval=interval,
            retain=retain,
        )
    return system, outcome.report
