"""The checkpoint coordinator: durability hooks for the pipeline loop.

:class:`CheckpointCoordinator` is handed to
:meth:`repro.system.pipeline.UrbanTrafficSystem.run` and observes the
recognition loop:

* ``on_run_start`` writes a baseline checkpoint (step 0) *before the
  input stream is generated*, so a crash at *any* later point has
  something to restore.  The pre-generation timing keeps the baseline
  small and fast — no pending SDEs to serialise — and is safe because
  generation is deterministic: the snapshot captures the scenario's
  RNG state and a metrics registry that has not yet counted the
  generation, so a baseline restore simply re-runs ``run()`` and
  every generation-time increment happens exactly once;
* ``begin_step`` journals a write-ahead record of the step about to
  run (its query time and per-feed admitted-item counts);
* ``commit_step`` journals the step's completion;
* ``after_step`` snapshots the whole pipeline every
  ``checkpoint_interval`` steps and rotates the journal to a fresh
  segment, so recovery replays at most one segment;
* ``restore_latest`` loads the newest valid checkpoint (falling back
  over torn files), accounts the steps to be replayed in the
  ``recovery.replay.*`` counters, and returns the revived system.

The coordinator only *observes* the run — checkpointing never mutates
pipeline state, so a run with checkpointing enabled produces exactly
the output of one without (asserted by the crash-parity tests).

Exactly-once accounting falls out of the snapshot's scope: metrics
counters, recognition-log dedup sets and crowd estimates are all part
of the checkpointed object graph, so a replayed step re-applies its
increments *from the checkpointed values* — the resumed totals equal
an uninterrupted run's, and already-emitted CE intervals are
deduplicated by the restored logs.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Optional

from ..core.incremental import streamless_checkpoint
from ..obs import Registry
from .checkpoint import CheckpointError, CheckpointInfo, CheckpointManager
from .journal import WriteAheadJournal

__all__ = ["CheckpointCoordinator"]


class CheckpointCoordinator:
    """Durability sidecar for one pipeline run directory.

    Parameters
    ----------
    directory:
        Where checkpoints and journal segments live.  One directory per
        logical run; resuming reads and continues the same directory.
    interval:
        Checkpoint every this many recognition steps.  ``None`` (the
        default) adopts ``SystemConfig.checkpoint_interval`` from the
        system the coordinator is attached to.
    retain:
        Checkpoints kept on disk (see :class:`CheckpointManager`).
    crash:
        Optional :class:`repro.faults.CrashInjector` consulted at the
        start of every step and during checkpoint writes.
    """

    def __init__(
        self,
        directory,
        *,
        interval: Optional[int] = None,
        retain: int = 3,
        crash=None,
    ):
        if interval is not None and interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.manager = CheckpointManager(directory, retain=retain)
        self.journal = WriteAheadJournal(directory)
        self.interval = interval
        self.crash = crash
        self.metrics: Optional[Registry] = None
        self.last_checkpoint: Optional[CheckpointInfo] = None
        #: ``(start, end)`` of the run a restored *baseline* checkpoint
        #: belongs to (set by :meth:`restore_latest`; ``None`` when the
        #: restored checkpoint carries a mid-run state instead).
        self.restored_span: Optional[tuple[int, int]] = None
        self._base_step = 0
        self._resumed = False

    # ------------------------------------------------------------------
    def _count(self, name: str, amount: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _journal(self, record) -> None:
        """Append one journal record, timed under
        ``recovery.journal.seconds`` — together with
        ``recovery.checkpoint.seconds`` this accounts the full direct
        cost of durability (what the overhead benchmark gates on)."""
        started = time.perf_counter()
        self.journal.append(record)
        if self.metrics is not None:
            self.metrics.timing("recovery.journal.seconds").observe(
                time.perf_counter() - started
            )
        self._count("recovery.journal.records")

    def _attach(self, system) -> None:
        self.metrics = system.metrics
        if self.interval is None:
            self.interval = system.config.checkpoint_interval

    # -- run lifecycle -------------------------------------------------
    def on_run_start(self, system, span: tuple[int, int]) -> None:
        """Baseline checkpoint + first journal segment (fresh runs);
        resumed runs already restored their baseline.

        Called by the pipeline *before* it generates and feeds the
        input stream — the baseline therefore holds no pending SDEs
        (cheap to write) and a restore re-runs generation from the
        checkpointed RNG state, reproducing the exact same stream.
        ``span`` is the run's ``(start, end)``, stored alongside so a
        baseline restore knows what to re-run.
        """
        self._attach(system)
        if self._resumed:
            return
        self._write_checkpoint(system, None, span=span)

    def begin_step(self, step: int, q: int, arrivals: Mapping[str, int]) -> None:
        """Write-ahead record for the step about to execute."""
        if self.crash is not None:
            self.crash.before_step(step)
        self._journal(
            {
                "kind": "step",
                "step": step,
                "q": q,
                "arrivals": dict(arrivals),
            }
        )

    def commit_step(self, step: int, crowd_events: int) -> None:
        """Completion record for a finished step."""
        self._journal(
            {"kind": "commit", "step": step, "crowd_events": crowd_events}
        )

    def after_step(self, system, state) -> None:
        """Checkpoint when the interval has elapsed since the last."""
        assert self.interval is not None
        if state.step_index - self._base_step >= self.interval:
            self._write_checkpoint(system, state)

    def on_run_complete(self, system, state) -> None:
        """Mark the run finished and release the journal."""
        self._journal({"kind": "complete", "step": state.step_index})
        self.journal.close()

    # ------------------------------------------------------------------
    def _write_checkpoint(
        self, system, state, *, span: Optional[tuple[int, int]] = None
    ) -> None:
        step = 0 if state is None else state.step_index
        pre_replace = None
        if self.crash is not None:
            crash = self.crash

            def pre_replace(path, data, _step=step, _crash=crash):
                _crash.on_checkpoint_write(_step, path, data)

        started = time.perf_counter()
        payload = {
            "system": system,
            "state": state,
            "span": span,
            # Interval checkpoints drop the regenerable pending stream
            # (see repro.core.incremental.streamless_checkpoint); the
            # restore path rebuilds it against the baseline checkpoint.
            "streamless": state is not None,
        }
        if state is not None:
            with streamless_checkpoint():
                info = self.manager.save(
                    step, payload, pre_replace=pre_replace
                )
        else:
            info = self.manager.save(step, payload, pre_replace=pre_replace)
        elapsed = time.perf_counter() - started
        self.last_checkpoint = info
        self._base_step = step
        self.journal.open(step)
        # Segments below the oldest *mid-run* checkpoint can never be
        # replayed again (the always-retained baseline only ever needs
        # the segment a restore re-opens for it).
        remaining = [i for i in self.manager.list() if i.step != 0]
        if remaining:
            self.journal.prune(remaining[0].step)
        self._count("recovery.checkpoint.writes")
        self._count("recovery.checkpoint.bytes", info.size)
        if self.metrics is not None:
            self.metrics.timing("recovery.checkpoint.seconds").observe(
                elapsed
            )

    # -- restore -------------------------------------------------------
    def restore_latest(self) -> tuple[Any, Any]:
        """Load the newest valid checkpoint and prepare to continue.

        Returns ``(system, state)``.  ``state`` is ``None`` when the
        newest checkpoint is a pre-generation *baseline* — continue by
        calling ``system.run(*coordinator.restored_span,
        recovery=coordinator)``, which regenerates the input stream
        deterministically; otherwise call
        ``system.resume_from(state, coordinator)``.

        The journal segment following the restored checkpoint is read
        for replay accounting, archived, and reopened fresh — the
        replayed steps re-journal themselves as they re-execute, so the
        segment on disk always describes the run that actually
        happened.
        """
        payload, info, fallbacks = self.manager.load_latest()
        system, state = payload["system"], payload["state"]
        self.restored_span = payload.get("span")
        if state is not None and payload.get("streamless"):
            # The snapshot dropped the regenerable pending stream; the
            # pristine pre-generation system in the (always-retained)
            # baseline checkpoint anchors its reconstruction.
            try:
                baseline = self.manager.load(self.manager.path_for(0))
            except FileNotFoundError:
                raise CheckpointError(
                    f"checkpoint at step {info.step} needs the baseline "
                    f"{self.manager.path_for(0)} to rebuild its pending "
                    f"stream, but the file is missing"
                ) from None
            system.rebuild_pending(baseline["system"], state)
        self._attach(system)
        self._resumed = True
        self._base_step = info.step
        self.last_checkpoint = info

        replay_steps = set()
        replay_items = 0
        for record in self.journal.read_segment(info.step):
            if record.get("kind") == "step" and record["step"] > info.step:
                replay_steps.add(record["step"])
                replay_items += sum(record["arrivals"].values())
        self._count("recovery.restore.count")
        self._count("recovery.restore.fallbacks", fallbacks)
        self._count("recovery.replay.steps", len(replay_steps))
        self._count("recovery.replay.items", replay_items)
        self.journal.open(info.step, fresh=True)
        return system, state
