"""Streams-framework analog (the paper's Sections 2–3 middleware).

Data items are key/value dicts; *sources* feed *processes* (chains of
*processors*) connected by *queues*, with shared *services*; the graph
can be described in XML and is executed deterministically in event
time by :class:`StreamRuntime`.
"""

from .items import (
    ARRIVAL_KEY,
    SOURCE_KEY,
    TIME_KEY,
    DataItem,
    item_arrival,
    item_source,
    item_time,
    iter_attributes,
    make_item,
    payload_of,
)
from .processes import Process, Queue, Source
from .processors import (
    Collect,
    Counter,
    Deduplicate,
    EmitTo,
    Filter,
    Processor,
    ProcessorContext,
    SelectKeys,
    SetAttributes,
    Tap,
    Throttle,
    Transform,
    TumblingAggregate,
    normalise_result,
)
from .runtime import RunStats, StreamRuntime, Topology
from .services import ServiceRegistry
from .supervision import (
    CircuitBreaker,
    DeadLetter,
    DeadLetterQueue,
    ErrorPolicy,
    ProcessorTimeout,
    Supervisor,
)
from .xmlconfig import XmlConfigError, coerce_attribute, parse_topology

__all__ = [
    "DataItem",
    "TIME_KEY",
    "ARRIVAL_KEY",
    "SOURCE_KEY",
    "make_item",
    "item_time",
    "item_arrival",
    "item_source",
    "payload_of",
    "iter_attributes",
    "Source",
    "Queue",
    "Process",
    "Processor",
    "ProcessorContext",
    "Filter",
    "Transform",
    "SetAttributes",
    "SelectKeys",
    "Tap",
    "Collect",
    "EmitTo",
    "Counter",
    "TumblingAggregate",
    "Throttle",
    "Deduplicate",
    "normalise_result",
    "ServiceRegistry",
    "Topology",
    "StreamRuntime",
    "RunStats",
    "ErrorPolicy",
    "ProcessorTimeout",
    "DeadLetter",
    "DeadLetterQueue",
    "CircuitBreaker",
    "Supervisor",
    "parse_topology",
    "coerce_attribute",
    "XmlConfigError",
]
