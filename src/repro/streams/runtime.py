"""Deterministic event-time runtime for the Streams analog.

The original Streams framework compiles the data-flow description "into
a computation graph for a stream processing engine" (paper, Section 3)
and executes it with threads.  For a reproducible evaluation we run the
graph single-threaded in simulated *event time*: all source items are
merged by arrival time and pushed through their consuming processes;
items a process emits to a queue are delivered to the queue's consumers
at the same timestamp, before any later source item.  The result is a
deterministic execution whose outputs depend only on the inputs.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Optional

from .items import DataItem, item_arrival
from .processes import Process, Queue, Source
from .processors import ProcessorContext, normalise_result
from .services import ServiceRegistry


@dataclass
class RunStats:
    """Bookkeeping of one topology execution."""

    items_ingested: int = 0
    items_delivered: int = 0
    per_process: dict[str, tuple[int, int]] = field(default_factory=dict)

    def record_process(self, process: Process) -> None:
        """Store a process's consumed/produced counters."""
        self.per_process[process.name] = (process.consumed, process.produced)


class Topology:
    """A data-flow graph: sources, queues, processes and services."""

    def __init__(self) -> None:
        self.sources: dict[str, Source] = {}
        self.queues: dict[str, Queue] = {}
        self.processes: dict[str, Process] = {}
        self.services = ServiceRegistry()

    # -- construction ----------------------------------------------------
    def add_source(self, source: Source) -> Source:
        """Register a source stream."""
        if source.name in self.sources:
            raise ValueError(f"duplicate source: {source.name!r}")
        self.sources[source.name] = source
        return source

    def add_queue(self, name: str) -> Queue:
        """Register (or fetch) a named queue."""
        if name not in self.queues:
            self.queues[name] = Queue(name)
        return self.queues[name]

    def add_process(self, process: Process) -> Process:
        """Register a process node."""
        if process.name in self.processes:
            raise ValueError(f"duplicate process: {process.name!r}")
        self.processes[process.name] = process
        if process.output is not None:
            self.add_queue(process.output)
        return self.processes[process.name]

    def validate(self) -> None:
        """Check that every process input resolves to a source/queue."""
        for process in self.processes.values():
            known = process.input in self.sources or process.input in self.queues
            if not known:
                raise ValueError(
                    f"process {process.name!r} consumes unknown input "
                    f"{process.input!r}"
                )


class StreamRuntime:
    """Executes a :class:`Topology` deterministically."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self._contexts: dict[str, ProcessorContext] = {}
        #: Arrival time of the item currently being processed.
        self.now: Optional[int] = None

    # ------------------------------------------------------------------
    def _consumers_of(self, input_name: str) -> list[Process]:
        return [
            p
            for p in self.topology.processes.values()
            if p.input == input_name
        ]

    def run(self) -> RunStats:
        """Drain all sources through the graph; returns run statistics."""
        topo = self.topology
        topo.validate()
        stats = RunStats()

        # Initialise processor chains.
        for process in topo.processes.values():
            context = ProcessorContext(services=topo.services)
            self._contexts[process.name] = context
            for processor in process.processors:
                processor.init(context)
        topo.services.start_all()

        # Seed the schedule with all source items, merged by arrival.
        heap: list[tuple[int, int, str, DataItem]] = []
        seq = 0
        for source in topo.sources.values():
            for item in source:
                heapq.heappush(heap, (item_arrival(item), seq, source.name, item))
                seq += 1
                stats.items_ingested += 1

        while heap:
            arrival, _, input_name, item = heapq.heappop(heap)
            self.now = arrival
            # Queue items were already retained at emission time; here
            # they are only forwarded to consuming processes (if any).
            for process in self._consumers_of(input_name):
                for out_item in self._run_chain(process, dict(item)):
                    stats.items_delivered += 1
                    if process.output is not None:
                        topo.queues[process.output].put(dict(out_item))
                        heapq.heappush(
                            heap,
                            (arrival, seq, process.output, out_item),
                        )
                        seq += 1
                # Explicit context emissions go to their queues too.
                context = self._contexts[process.name]
                for queue_name, emitted in context.drain_emissions():
                    queue = topo.add_queue(queue_name)
                    queue.put(dict(emitted))
                    heapq.heappush(heap, (arrival, seq, queue_name, emitted))
                    seq += 1

        for process in topo.processes.values():
            for processor in process.processors:
                processor.finish()
            stats.record_process(process)
        topo.services.stop_all()
        return stats

    def _run_chain(
        self, process: Process, item: DataItem
    ) -> Iterable[DataItem]:
        """Push one item through a process's processor chain."""
        process.consumed += 1
        batch = [item]
        for processor in process.processors:
            next_batch: list[DataItem] = []
            for current in batch:
                next_batch.extend(normalise_result(processor.process(current)))
            batch = next_batch
            if not batch:
                break
        process.produced += len(batch)
        return batch
