"""Deterministic event-time runtime for the Streams analog.

The original Streams framework compiles the data-flow description "into
a computation graph for a stream processing engine" (paper, Section 3)
and executes it with threads.  For a reproducible evaluation we run the
graph single-threaded in simulated *event time*: all source items are
merged by arrival time and pushed through their consuming processes;
items a process emits to a queue are delivered to the queue's consumers
at the same timestamp, before any later source item.  The result is a
deterministic execution whose outputs depend only on the inputs.

Dispatch is driven by a *consumer index* precomputed by
:meth:`Topology.validate`: delivering an item costs one dict lookup
instead of a scan over every process, and runs of items sharing the
same arrival time and input are drained from the schedule in one batch
so the lookup (and the heap traffic) is paid once per run, not once
per item.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

from ..obs import Registry
from .items import DataItem, item_arrival
from .processes import Process, Queue, Source
from .processors import Processor, ProcessorContext, normalise_result
from .services import ServiceRegistry
from .supervision import ProcessorTimeout, Supervisor


@dataclass
class RunStats:
    """Bookkeeping of one topology execution."""

    items_ingested: int = 0
    items_delivered: int = 0
    #: Source items skipped at seeding time because they were below the
    #: runtime's ``start_offsets`` (already processed before a resume).
    items_skipped: int = 0
    #: Absolute per-source consumption offsets: how many of each
    #: source's items have been dispatched, *including* any skipped
    #: prefix — so the final offsets of a resumed run equal an
    #: uninterrupted run's.
    source_offsets: dict[str, int] = field(default_factory=dict)
    per_process: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: Wall-clock seconds of the dispatch loop.
    wall_seconds: float = 0.0

    def record_process(self, process: Process) -> None:
        """Store a process's consumed/produced counters."""
        self.per_process[process.name] = (process.consumed, process.produced)


class Topology:
    """A data-flow graph: sources, queues, processes and services.

    Nodes can be registered with the classic ``add_*`` methods or with
    the fluent builder methods (:meth:`source`, :meth:`process`,
    :meth:`queue`, :meth:`service`), which return the topology so a
    whole graph reads as one chained expression::

        topo = (
            Topology()
            .source("readings", items)
            .process("clean", input="readings",
                     processors=[Filter(keep)], output="clean")
            .process("sink", input="clean", processors=[Collect()])
        )
    """

    def __init__(self) -> None:
        self.sources: dict[str, Source] = {}
        self.queues: dict[str, Queue] = {}
        self.processes: dict[str, Process] = {}
        self.services = ServiceRegistry()
        #: ``input name -> consuming processes``, rebuilt by
        #: :meth:`validate`; ``None`` marks the index as stale.
        self._consumer_index: Optional[dict[str, list[Process]]] = None

    # -- construction ----------------------------------------------------
    def add_source(self, source: Source) -> Source:
        """Register a source stream."""
        if source.name in self.sources:
            raise ValueError(f"duplicate source: {source.name!r}")
        self.sources[source.name] = source
        return source

    def add_queue(self, name: str) -> Queue:
        """Register (or fetch) a named queue."""
        if name not in self.queues:
            if name in self.sources:
                raise ValueError(
                    f"queue {name!r} would shadow the source of the same "
                    "name in consumer resolution; rename one of them"
                )
            self.queues[name] = Queue(name)
        return self.queues[name]

    def add_process(self, process: Process) -> Process:
        """Register a process node."""
        if process.name in self.processes:
            raise ValueError(f"duplicate process: {process.name!r}")
        self.processes[process.name] = process
        self._consumer_index = None
        if process.output is not None and process.output not in self.queues:
            # Created directly (not via add_queue) so that registration
            # order stays free: a collision with a source declared in
            # either order is reported by validate(), not here.
            self.queues[process.output] = Queue(process.output)
        return self.processes[process.name]

    # -- fluent builder --------------------------------------------------
    def source(self, name, items: Iterable[DataItem] = ()) -> "Topology":
        """Builder: register a source and return the topology.

        Accepts either a ready :class:`Source` instance (``items`` is
        then ignored) or a name plus the items to wrap.
        """
        if isinstance(name, Source):
            self.add_source(name)
        else:
            self.add_source(Source(name, items))
        return self

    def process(
        self,
        name,
        *,
        input: Optional[str] = None,
        processors: Optional[Sequence[Processor]] = None,
        output: Optional[str] = None,
    ) -> "Topology":
        """Builder: register a process node and return the topology.

        Accepts either a ready :class:`Process` instance (the keyword
        arguments are then ignored) or a name plus ``input`` and
        ``processors``.
        """
        if isinstance(name, Process):
            self.add_process(name)
            return self
        if input is None or processors is None:
            raise TypeError(
                "process() needs input= and processors= (or a Process "
                "instance)"
            )
        self.add_process(
            Process(name, input=input, processors=processors, output=output)
        )
        return self

    def queue(self, name: str) -> "Topology":
        """Builder: pre-register a named queue and return the topology."""
        self.add_queue(name)
        return self

    def service(self, name: str, obj) -> "Topology":
        """Builder: register a shared service and return the topology."""
        self.services.register(name, obj)
        return self

    # -- validation / dispatch index --------------------------------------
    def validate(self) -> None:
        """Check the graph and (re)build the consumer index.

        Raises when a process consumes an unknown input, or when a
        process output (or pre-registered queue) carries the same name
        as a source: both would resolve to the *same* consumer list, so
        queue items would silently masquerade as source items.
        """
        shadowed = sorted(set(self.queues) & set(self.sources))
        if shadowed:
            raise ValueError(
                f"queue name(s) {shadowed!r} collide with source name(s): "
                "items enqueued there would shadow the source in consumer "
                "resolution; rename the queue or the source"
            )
        index: dict[str, list[Process]] = {}
        for process in self.processes.values():
            known = process.input in self.sources or process.input in self.queues
            if not known:
                raise ValueError(
                    f"process {process.name!r} consumes unknown input "
                    f"{process.input!r}"
                )
            index.setdefault(process.input, []).append(process)
        self._consumer_index = index

    def consumers_of(self, input_name: str) -> list[Process]:
        """The processes consuming ``input_name`` (indexed lookup).

        Builds the index on first use when :meth:`validate` has not run
        (or the graph changed since).
        """
        if self._consumer_index is None:
            self.validate()
        assert self._consumer_index is not None
        return self._consumer_index.get(input_name, [])


class StreamRuntime:
    """Executes a :class:`Topology` deterministically.

    Parameters
    ----------
    topology:
        The graph to run.
    metrics:
        Optional :class:`repro.obs.Registry`; when given, the runtime
        records per-process item counters, chain timings and an
        ``items_per_s`` throughput gauge under ``streams.process.<name>.*``
        (see ``docs/observability.md``).
    supervisor:
        Optional :class:`~repro.streams.supervision.Supervisor`; when
        given, processor-chain failures are handled by per-process
        error policies (retry / skip / fail), poisoned items land in
        the supervisor's dead-letter queue, and a circuit breaker per
        input short-circuits traffic after repeated failures (see
        ``docs/robustness.md``).  Without one, any chain exception
        propagates — the historical behaviour.
    journal:
        Optional write-ahead journal (anything with an
        ``append(record)`` method, e.g. an open
        :class:`repro.recovery.WriteAheadJournal` segment).  The
        runtime appends ``{"kind": "offsets", ...}`` records of the
        per-source consumption offsets every ``journal_every``
        dispatched source items and once at the end of the run, so an
        embedding can resume a dead run from the last journalled
        offsets instead of time zero.
    journal_every:
        Source items between journalled offset records.
    start_offsets:
        Absolute per-source offsets to resume from: the first
        ``start_offsets[name]`` items of each source are skipped at
        seeding time (counted in ``RunStats.items_skipped``), and the
        reported offsets continue from those positions.  Sources are
        replayed deterministically, so skipping a processed prefix is
        exactly-once delivery for the remainder.
    """

    def __init__(
        self,
        topology: Topology,
        metrics: Optional[Registry] = None,
        supervisor: Optional[Supervisor] = None,
        *,
        journal=None,
        journal_every: int = 100,
        start_offsets: Optional[dict[str, int]] = None,
    ):
        if journal_every < 1:
            raise ValueError(
                f"journal_every must be >= 1, got {journal_every}"
            )
        self.topology = topology
        self.metrics = metrics
        self.supervisor = supervisor
        if supervisor is not None and supervisor.metrics is None:
            supervisor.metrics = metrics
        self.journal = journal
        self.journal_every = journal_every
        self.start_offsets = dict(start_offsets or {})
        self._contexts: dict[str, ProcessorContext] = {}
        #: Arrival time of the item currently being processed.
        self.now: Optional[int] = None

    # ------------------------------------------------------------------
    def _consumers_of(self, input_name: str) -> list[Process]:
        """Indexed consumer lookup (kept for API compatibility)."""
        return self.topology.consumers_of(input_name)

    def run(self) -> RunStats:
        """Drain all sources through the graph; returns run statistics."""
        topo = self.topology
        topo.validate()
        stats = RunStats()

        # Initialise processor chains.
        for process in topo.processes.values():
            context = ProcessorContext(services=topo.services)
            self._contexts[process.name] = context
            for processor in process.processors:
                processor.init(context)
        topo.services.start_all()

        # Seed the schedule with all source items, merged by arrival;
        # a resumed run skips each source's already-processed prefix.
        heap: list[tuple[int, int, str, DataItem]] = []
        seq = 0
        for source in topo.sources.values():
            skip = self.start_offsets.get(source.name, 0)
            stats.source_offsets[source.name] = skip
            for index, item in enumerate(source):
                if index < skip:
                    stats.items_skipped += 1
                    continue
                heapq.heappush(heap, (item_arrival(item), seq, source.name, item))
                seq += 1
                stats.items_ingested += 1

        # Processes containing time-driven processors (an overridden
        # ``advance``): the clock hook fires for these whenever the
        # merged arrival clock moves, even while their own input is
        # silent — so an embedded incremental engine keeps running its
        # scheduled query times instead of stalling until flush.
        time_driven = [
            (process, hooks)
            for process in topo.processes.values()
            if (
                hooks := [
                    p
                    for p in process.processors
                    if type(p).advance is not Processor.advance
                ]
            )
        ]

        timed = self.metrics is not None
        chain_seconds: dict[str, float] = {}
        source_names = set(topo.sources)
        since_journal = 0
        t_run = perf_counter()
        while heap:
            arrival, _, input_name, item = heapq.heappop(heap)
            if self.now is None or arrival > self.now:
                for process, hooks in time_driven:
                    for hook in hooks:
                        for out_item in normalise_result(hook.advance(arrival)):
                            stats.items_delivered += 1
                            if process.output is not None:
                                topo.queues[process.output].put(dict(out_item))
                                heapq.heappush(
                                    heap,
                                    (arrival, seq, process.output, out_item),
                                )
                                seq += 1
            self.now = arrival
            # Drain the whole same-timestamp run for this input in one
            # batch: items pushed during processing carry later
            # sequence numbers, so batching preserves the exact
            # delivery order of item-at-a-time dispatch.
            batch = [item]
            while (
                heap
                and heap[0][0] == arrival
                and heap[0][2] == input_name
            ):
                batch.append(heapq.heappop(heap)[3])
            if input_name in source_names:
                # The batch is consumed from its source whatever its
                # consumers (or breakers) do with it: advance the
                # source offset and journal it periodically.
                stats.source_offsets[input_name] += len(batch)
                if self.journal is not None:
                    since_journal += len(batch)
                    if since_journal >= self.journal_every:
                        self._journal_offsets(stats, arrival)
                        since_journal = 0
            consumers = topo.consumers_of(input_name)
            if not consumers:
                continue
            supervisor = self.supervisor
            for item in batch:
                if supervisor is not None and not supervisor.breaker_for(
                    input_name
                ).allow(arrival):
                    supervisor.short_circuit(input_name, item, arrival)
                    continue
                # Queue items were already retained at emission time;
                # here they are only forwarded to consuming processes.
                for process in consumers:
                    if timed:
                        t0 = perf_counter()
                    for out_item in self._dispatch(
                        process, item, input_name, arrival
                    ):
                        stats.items_delivered += 1
                        if process.output is not None:
                            topo.queues[process.output].put(dict(out_item))
                            heapq.heappush(
                                heap,
                                (arrival, seq, process.output, out_item),
                            )
                            seq += 1
                    # Explicit context emissions go to their queues too.
                    context = self._contexts[process.name]
                    for queue_name, emitted in context.drain_emissions():
                        queue = topo.add_queue(queue_name)
                        queue.put(dict(emitted))
                        heapq.heappush(
                            heap, (arrival, seq, queue_name, emitted)
                        )
                        seq += 1
                    if timed:
                        chain_seconds[process.name] = (
                            chain_seconds.get(process.name, 0.0)
                            + (perf_counter() - t0)
                        )
        stats.wall_seconds = perf_counter() - t_run
        if self.journal is not None:
            self._journal_offsets(stats, self.now, final=True)

        for process in topo.processes.values():
            for processor in process.processors:
                processor.finish()
            stats.record_process(process)
        topo.services.stop_all()
        if self.supervisor is not None:
            self.supervisor.record_breaker_states()
        if self.metrics is not None:
            self._record_metrics(stats, chain_seconds)
        return stats

    def _journal_offsets(
        self, stats: RunStats, t, *, final: bool = False
    ) -> None:
        """Write-ahead record of the current source offsets."""
        record = {
            "kind": "offsets",
            "offsets": dict(stats.source_offsets),
            "t": t,
        }
        if final:
            record["final"] = True
        self.journal.append(record)

    def _record_metrics(
        self, stats: RunStats, chain_seconds: dict[str, float]
    ) -> None:
        """Publish the run's counters/timings into the registry."""
        registry = self.metrics
        assert registry is not None
        registry.counter("streams.items.ingested").inc(stats.items_ingested)
        registry.counter("streams.items.delivered").inc(stats.items_delivered)
        if stats.items_skipped:
            registry.counter("streams.items.skipped").inc(
                stats.items_skipped
            )
        registry.timing("streams.run.seconds").observe(stats.wall_seconds)
        for name, (consumed, produced) in stats.per_process.items():
            prefix = f"streams.process.{name}"
            registry.counter(f"{prefix}.consumed").inc(consumed)
            registry.counter(f"{prefix}.produced").inc(produced)
            seconds = chain_seconds.get(name, 0.0)
            registry.timing(f"{prefix}.seconds").observe(seconds)
            if seconds > 0.0:
                registry.gauge(f"{prefix}.items_per_s").set(
                    consumed / seconds
                )

    def _run_chain(
        self, process: Process, item: DataItem
    ) -> Iterable[DataItem]:
        """Push one item through a process's processor chain."""
        process.consumed += 1
        batch = self._apply_chain(process, item)
        process.produced += len(batch)
        return batch

    def _apply_chain(
        self, process: Process, item: DataItem
    ) -> list[DataItem]:
        """The raw chain application, without counter bookkeeping."""
        batch = [item]
        for processor in process.processors:
            next_batch: list[DataItem] = []
            for current in batch:
                next_batch.extend(normalise_result(processor.process(current)))
            batch = next_batch
            if not batch:
                break
        return batch

    def _dispatch(
        self,
        process: Process,
        item: DataItem,
        input_name: str,
        arrival: int,
    ) -> Iterable[DataItem]:
        """Run one item through one process under supervision.

        Without a supervisor this is exactly :meth:`_run_chain`.  With
        one, chain failures (including soft-timeout overruns) go
        through the process's error policy: ``fail`` propagates,
        ``retry`` re-runs the chain with accounted backoff, and
        exhausted/skipped items are dead-lettered and reported to the
        input's circuit breaker.  A failed attempt's explicit queue
        emissions are discarded so half-processed items never leak
        downstream.
        """
        supervisor = self.supervisor
        if supervisor is None:
            return self._run_chain(process, dict(item))
        policy = supervisor.policy_for(process)
        context = self._contexts[process.name]
        process.consumed += 1
        attempts = 0
        while True:
            attempts += 1
            try:
                t0 = perf_counter()
                batch = self._apply_chain(process, dict(item))
                elapsed = perf_counter() - t0
                if (
                    policy.timeout_s is not None
                    and elapsed > policy.timeout_s
                ):
                    raise ProcessorTimeout(
                        f"process {process.name!r} spent {elapsed:.4f}s on "
                        f"one item (budget {policy.timeout_s}s)"
                    )
            except Exception as exc:
                context.drain_emissions()  # discard partial emissions
                supervisor.chain_failed(
                    exc, timeout=isinstance(exc, ProcessorTimeout)
                )
                if policy.mode == "fail":
                    raise
                if policy.mode == "retry" and attempts <= policy.max_retries:
                    supervisor.account_backoff(policy.backoff_s(attempts))
                    continue
                supervisor.dead_letter(
                    process=process.name,
                    input_name=input_name,
                    item=item,
                    error=exc,
                    attempts=attempts,
                    arrival=arrival,
                )
                supervisor.breaker_failure(input_name, arrival)
                return []
            else:
                supervisor.breaker_success(input_name, arrival)
                process.produced += len(batch)
                return batch
