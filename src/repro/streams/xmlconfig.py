"""XML data-flow descriptions for the Streams analog.

The Streams framework "provides a XML-based language for the
description of data flow graphs, which are then compiled into a
computation graph for a stream processing engine" (paper, Sections 2
and 3).  This module parses the equivalent XML dialect::

    <container>
      <stream id="bus" class="myapp.BusSource" limit="1000"/>
      <queue id="complex-events"/>
      <service id="traffic-model" class="myapp.TrafficModelService"/>
      <process id="cep" input="bus" output="complex-events">
        <processor class="myapp.RtecProcessor" window="600" step="300"/>
      </process>
    </container>

``class`` attributes are resolved against an explicit registry of
factories first and dotted import paths second.  All remaining XML
attributes are passed to the factory as keyword arguments, with literal
coercion (int / float / bool) applied to the string values.
"""

from __future__ import annotations

import importlib
import xml.etree.ElementTree as ET
from collections.abc import Callable, Mapping
from typing import Any, Optional

from .processes import Process, Source
from .runtime import Topology

Factory = Callable[..., Any]


class XmlConfigError(ValueError):
    """A malformed data-flow description."""


def coerce_attribute(value: str) -> Any:
    """Coerce an XML attribute string to int, float or bool if it
    looks like one; otherwise return the string unchanged."""
    lowered = value.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def _resolve_class(
    path: str, registry: Optional[Mapping[str, Factory]]
) -> Factory:
    if registry and path in registry:
        return registry[path]
    module_name, _, attr = path.rpartition(".")
    if not module_name:
        raise XmlConfigError(
            f"cannot resolve class {path!r}: not in the registry and not "
            "a dotted import path"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise XmlConfigError(f"cannot import module {module_name!r}") from exc
    try:
        return getattr(module, attr)
    except AttributeError as exc:
        raise XmlConfigError(
            f"module {module_name!r} has no attribute {attr!r}"
        ) from exc


def _instantiate(
    element: ET.Element,
    registry: Optional[Mapping[str, Factory]],
    *,
    skip: tuple[str, ...] = ("id", "class"),
) -> Any:
    path = element.get("class")
    if path is None:
        raise XmlConfigError(
            f"<{element.tag}> element requires a 'class' attribute"
        )
    factory = _resolve_class(path, registry)
    kwargs = {
        key: coerce_attribute(value)
        for key, value in element.attrib.items()
        if key not in skip
    }
    return factory(**kwargs)


def parse_topology(
    xml_text: str,
    registry: Optional[Mapping[str, Factory]] = None,
) -> Topology:
    """Parse an XML data-flow description into a :class:`Topology`.

    Stream factories must return something iterable over data items (it
    is wrapped in a :class:`~repro.streams.processes.Source`); service
    factories may return any object; processor factories must return
    :class:`~repro.streams.processors.Processor` instances.
    """
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise XmlConfigError(f"invalid XML: {exc}") from exc
    if root.tag != "container":
        raise XmlConfigError(
            f"expected <container> root element, got <{root.tag}>"
        )

    topology = Topology()
    for element in root:
        if element.tag == "stream":
            stream_id = element.get("id")
            if not stream_id:
                raise XmlConfigError("<stream> requires an 'id' attribute")
            items = _instantiate(element, registry)
            topology.add_source(Source(stream_id, items))
        elif element.tag == "queue":
            queue_id = element.get("id")
            if not queue_id:
                raise XmlConfigError("<queue> requires an 'id' attribute")
            topology.add_queue(queue_id)
        elif element.tag == "service":
            service_id = element.get("id")
            if not service_id:
                raise XmlConfigError("<service> requires an 'id' attribute")
            topology.services.register(
                service_id, _instantiate(element, registry)
            )
        elif element.tag == "process":
            _parse_process(element, topology, registry)
        else:
            raise XmlConfigError(f"unknown element <{element.tag}>")
    topology.validate()
    return topology


def _parse_process(
    element: ET.Element,
    topology: Topology,
    registry: Optional[Mapping[str, Factory]],
) -> None:
    process_id = element.get("id")
    input_name = element.get("input")
    if not process_id or not input_name:
        raise XmlConfigError("<process> requires 'id' and 'input' attributes")
    processors = []
    for child in element:
        if child.tag != "processor":
            raise XmlConfigError(
                f"<process> may only contain <processor> elements, got "
                f"<{child.tag}>"
            )
        processors.append(_instantiate(child, registry))
    topology.add_process(
        Process(
            process_id,
            input=input_name,
            processors=processors,
            output=element.get("output"),
        )
    )
