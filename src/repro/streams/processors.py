"""Processors: the per-item functions of the Streams framework.

"Processes take a stream or a queue as input and processors, in turn,
apply a function to the data items in a stream" (paper, Section 3).
A :class:`Processor` receives one data item and returns zero, one or
several items.  Custom processing logic — the RTEC embedding, the
crowdsourcing steps, the traffic-model service calls — is added by
subclassing, exactly like implementing the Streams API interfaces in
Java.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterable
from typing import Any, Optional, Union

from .items import DataItem

#: What ``process`` may return: drop (None), pass one item, or fan out.
ProcessorResult = Union[None, DataItem, list[DataItem]]


class ProcessorContext:
    """Runtime facilities available to a processor.

    Exposes the service registry (the Streams notion of *services*: sets
    of functions accessible throughout the application) and the output
    queues a processor may emit to explicitly.
    """

    def __init__(self, services: Any = None):
        self._services = services
        self._emissions: list[tuple[str, DataItem]] = []

    def service(self, name: str) -> Any:
        """Look up a registered service by name."""
        if self._services is None:
            raise LookupError("no service registry attached")
        return self._services.lookup(name)

    def emit(self, queue: str, item: DataItem) -> None:
        """Send an item to a named queue (outside the main chain)."""
        self._emissions.append((queue, item))

    def drain_emissions(self) -> list[tuple[str, DataItem]]:
        """Collect and clear explicit queue emissions (runtime use)."""
        out = self._emissions
        self._emissions = []
        return out


class Processor(abc.ABC):
    """Base class of all processors."""

    def init(self, context: ProcessorContext) -> None:
        """Called once before the first item (resource setup)."""
        self.context = context

    @abc.abstractmethod
    def process(self, item: DataItem) -> ProcessorResult:
        """Handle one data item."""

    def advance(self, now: int) -> ProcessorResult:
        """Clock hook: the runtime's arrival clock reached ``now``.

        Called once per process when the merged stream's arrival time
        first moves to ``now``, *before* any item arriving at ``now``
        is delivered — so a time-driven processor (e.g. an embedded
        recognition engine with a persistent working memory) may only
        complete work scheduled strictly before ``now``.  Returned
        items are routed to the process's output queue exactly like
        :meth:`process` results.  The default does nothing; the runtime
        only calls processors that override this.
        """
        return None

    def finish(self) -> None:
        """Called once after the last item (resource teardown)."""


def normalise_result(result: ProcessorResult) -> list[DataItem]:
    """Normalise a processor's return value into a list of items."""
    if result is None:
        return []
    if isinstance(result, dict):
        return [result]
    return list(result)


# ----------------------------------------------------------------------
# A small standard library of processors
# ----------------------------------------------------------------------
class Filter(Processor):
    """Keep only items satisfying a predicate."""

    def __init__(self, predicate: Callable[[DataItem], bool]):
        self.predicate = predicate

    def process(self, item: DataItem) -> ProcessorResult:
        return item if self.predicate(item) else None


class Transform(Processor):
    """Apply a function to every item (may drop or fan out)."""

    def __init__(self, fn: Callable[[DataItem], ProcessorResult]):
        self.fn = fn

    def process(self, item: DataItem) -> ProcessorResult:
        return self.fn(item)


class SetAttributes(Processor):
    """Add/overwrite fixed attributes on every item."""

    def __init__(self, **attributes: Any):
        self.attributes = attributes

    def process(self, item: DataItem) -> ProcessorResult:
        item.update(self.attributes)
        return item


class SelectKeys(Processor):
    """Project each item onto a fixed set of keys (plus reserved keys)."""

    def __init__(self, keys: Iterable[str]):
        self.keys = set(keys)

    def process(self, item: DataItem) -> ProcessorResult:
        return {
            k: v
            for k, v in item.items()
            if k in self.keys or k.startswith("@")
        }


class Tap(Processor):
    """Invoke a side-effect callback and pass the item through."""

    def __init__(self, callback: Callable[[DataItem], None]):
        self.callback = callback

    def process(self, item: DataItem) -> ProcessorResult:
        self.callback(item)
        return item


class Collect(Processor):
    """Accumulate every item into a list (test/inspection sink)."""

    def __init__(self) -> None:
        self.items: list[DataItem] = []

    def process(self, item: DataItem) -> ProcessorResult:
        self.items.append(item)
        return item


class EmitTo(Processor):
    """Copy every item to an additional named queue."""

    def __init__(self, queue: str):
        self.queue = queue

    def process(self, item: DataItem) -> ProcessorResult:
        self.context.emit(self.queue, dict(item))
        return item


class Counter(Processor):
    """Count items, optionally per value of a grouping attribute."""

    def __init__(self, group_by: Optional[str] = None):
        self.group_by = group_by
        self.total = 0
        self.per_group: dict[Any, int] = {}

    def process(self, item: DataItem) -> ProcessorResult:
        self.total += 1
        if self.group_by is not None:
            group = item.get(self.group_by)
            self.per_group[group] = self.per_group.get(group, 0) + 1
        return item


class TumblingAggregate(Processor):
    """Aggregate items over tumbling event-time windows.

    Mediators in the paper's architecture "apply filtering and
    aggregation mechanisms" before the platform sees the data; this
    processor provides that building block: items are grouped by
    ``key_fn`` within consecutive ``window`` wide event-time buckets,
    and when an item's timestamp enters a new bucket the finished
    bucket is emitted as one aggregate item per group::

        {"@time": window_end, "key": <group>, "value": <aggregate>,
         "count": <n>}

    ``finish()`` does not flush (processors cannot emit there); call
    :meth:`flush` explicitly for the trailing partial window.
    """

    def __init__(
        self,
        window: int,
        key_fn: Callable[[DataItem], Any],
        value_fn: Callable[[DataItem], float],
        agg: str = "mean",
    ):
        if window <= 0:
            raise ValueError("window must be positive")
        if agg not in ("mean", "sum", "min", "max"):
            raise ValueError(f"unknown aggregate: {agg!r}")
        self.window = window
        self.key_fn = key_fn
        self.value_fn = value_fn
        self.agg = agg
        self._bucket_start: Optional[int] = None
        self._groups: dict[Any, list[float]] = {}

    def _aggregate(self, values: list[float]) -> float:
        if self.agg == "mean":
            return sum(values) / len(values)
        if self.agg == "sum":
            return sum(values)
        if self.agg == "min":
            return min(values)
        return max(values)

    def _emit_bucket(self) -> list[DataItem]:
        assert self._bucket_start is not None
        window_end = self._bucket_start + self.window
        out = [
            {
                "@time": window_end,
                "key": key,
                "value": self._aggregate(values),
                "count": len(values),
            }
            for key, values in sorted(
                self._groups.items(), key=lambda kv: repr(kv[0])
            )
        ]
        self._groups = {}
        return out

    def process(self, item: DataItem) -> ProcessorResult:
        t = item["@time"]
        bucket = (t // self.window) * self.window
        emitted: list[DataItem] = []
        if self._bucket_start is None:
            self._bucket_start = bucket
        elif bucket > self._bucket_start:
            if self._groups:
                emitted = self._emit_bucket()
            self._bucket_start = bucket
        elif bucket < self._bucket_start:
            raise ValueError(
                "items must arrive in non-decreasing event time for "
                f"tumbling aggregation (got {t} in bucket {bucket} after "
                f"{self._bucket_start})"
            )
        self._groups.setdefault(self.key_fn(item), []).append(
            float(self.value_fn(item))
        )
        return emitted or None

    def flush(self) -> list[DataItem]:
        """Emit the trailing partial window (call at end of stream)."""
        if self._bucket_start is None or not self._groups:
            return []
        return self._emit_bucket()


class Throttle(Processor):
    """Rate-limit items per group: at most one per ``interval`` seconds.

    Models a mediator's *filtering* side (the paper's mediators thin
    the raw sensor feed before the platform sees it): for each value of
    ``key_fn`` only the first item of every ``interval``-long span of
    event time passes; later items inside the span are dropped.
    """

    def __init__(self, interval: int, key_fn: Callable[[DataItem], Any]):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.key_fn = key_fn
        self._last_pass: dict[Any, int] = {}

    def process(self, item: DataItem) -> ProcessorResult:
        t = item["@time"]
        key = self.key_fn(item)
        last = self._last_pass.get(key)
        if last is not None and t - last < self.interval:
            return None
        self._last_pass[key] = t
        return item


class Deduplicate(Processor):
    """Drop items whose identity was already seen.

    ``key_fn`` extracts the identity (e.g. ``(bus, time)``); duplicates
    arising from at-least-once transports or queue fan-in are dropped.
    ``max_keys`` bounds the memory: the oldest half of the identity set
    is discarded when the bound is hit (streams are ordered enough in
    practice that late duplicates beyond that horizon are rare).
    """

    def __init__(
        self,
        key_fn: Callable[[DataItem], Any],
        max_keys: int = 100_000,
    ):
        if max_keys <= 1:
            raise ValueError("max_keys must exceed 1")
        self.key_fn = key_fn
        self.max_keys = max_keys
        self._seen: dict[Any, None] = {}

    def process(self, item: DataItem) -> ProcessorResult:
        key = self.key_fn(item)
        if key in self._seen:
            return None
        self._seen[key] = None
        if len(self._seen) > self.max_keys:
            # Evict the oldest half (dict preserves insertion order).
            for old in list(self._seen)[: self.max_keys // 2]:
                del self._seen[old]
        return item
