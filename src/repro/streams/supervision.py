"""Runtime supervision: error policies, dead letters, circuit breakers.

The Streams analog originally assumed well-behaved processors — one
poisoned item or one crashing chain took the whole topology down.
This module gives :class:`~repro.streams.runtime.StreamRuntime` the
supervision vocabulary of production stream processors:

* an :class:`ErrorPolicy` per process — ``fail`` (propagate, the old
  behaviour), ``skip`` (dead-letter the item and move on) or ``retry``
  (re-run the chain with capped exponential backoff before
  dead-lettering);
* a per-process *soft timeout*: a chain invocation that overruns its
  budget is treated as a failure and fed through the same policy
  (cooperative — the runtime is single-threaded, so the overrun is
  detected after the call returns rather than preempted);
* a bounded :class:`DeadLetterQueue` collecting poisoned items with
  their error, attempt count and arrival time — inspectable from tests
  and from ``repro-traffic faults --dlq``; at capacity the oldest
  letters are evicted and counted;
* a :class:`CircuitBreaker` per input stream: after ``N`` consecutive
  chain failures on items of one input the breaker opens and further
  items short-circuit straight to the dead-letter queue until
  ``reset_after_s`` of *event time* has passed, at which point one
  trial item is let through (half-open) and its outcome closes or
  re-opens the breaker.

Backoff is *accounted, not slept*: the runtime executes in simulated
event time, so retry backoff is recorded in the
``streams.supervision.backoff_s`` timing instead of stalling the
dispatch loop.  All supervision activity is counted through the
``repro.obs`` registry handed to the runtime (``streams.supervision.*``
and ``streams.breaker.<input>.*`` — see ``docs/observability.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Optional

from ..obs import Registry
from .items import DataItem, payload_of


class ProcessorTimeout(Exception):
    """A processor chain overran its per-item time budget."""


@dataclass(frozen=True)
class ErrorPolicy:
    """How a process reacts to a failing processor chain.

    Parameters
    ----------
    mode:
        ``"fail"`` propagates the exception (default — identical to an
        unsupervised runtime), ``"skip"`` dead-letters the item,
        ``"retry"`` re-runs the chain up to ``max_retries`` times and
        dead-letters on exhaustion.
    max_retries:
        Retry budget per item (``retry`` mode only).
    backoff_base_s / backoff_cap_s:
        Capped exponential backoff schedule: attempt ``k`` accounts
        ``min(cap, base * 2**(k-1))`` seconds.
    timeout_s:
        Optional soft per-item budget for the whole chain; an overrun
        raises :class:`ProcessorTimeout` into the policy machinery.
    """

    mode: Literal["fail", "skip", "retry"] = "fail"
    max_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in ("fail", "skip", "retry"):
            raise ValueError(
                f"mode must be 'fail', 'skip' or 'retry', got {self.mode!r}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must not be negative")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff values must not be negative")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive when set")

    def backoff_s(self, attempt: int) -> float:
        """Backoff accounted before retry ``attempt`` (1-based)."""
        return min(
            self.backoff_cap_s, self.backoff_base_s * (2 ** (attempt - 1))
        )


@dataclass(frozen=True)
class DeadLetter:
    """One poisoned item with its failure context."""

    process: str
    input: str
    item: DataItem
    error: str
    attempts: int
    arrival: int

    def to_dict(self) -> dict:
        """JSON-able view (CLI ``faults --dlq`` output)."""
        return {
            "process": self.process,
            "input": self.input,
            "arrival": self.arrival,
            "attempts": self.attempts,
            "error": self.error,
            "item": payload_of(self.item),
        }


class DeadLetterQueue:
    """Accumulates :class:`DeadLetter` entries for inspection.

    The queue is bounded: once ``max_size`` entries are held, filing a
    new letter evicts the oldest one (the most recent failures are the
    ones worth inspecting).  Evictions are tallied in :attr:`dropped`
    and surfaced by the supervisor as the
    ``streams.supervision.dlq.dropped`` counter.
    """

    def __init__(self, max_size: int = 10_000) -> None:
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        self.max_size = max_size
        self.letters: list[DeadLetter] = []
        #: Letters evicted to stay within ``max_size``.
        self.dropped = 0

    def append(self, letter: DeadLetter) -> None:
        """Record one dead letter, evicting the oldest when full."""
        if len(self.letters) >= self.max_size:
            overflow = len(self.letters) - self.max_size + 1
            del self.letters[:overflow]
            self.dropped += overflow
        self.letters.append(letter)

    def __len__(self) -> int:
        return len(self.letters)

    def __iter__(self):
        return iter(self.letters)

    def snapshot(self) -> list[DeadLetter]:
        """A list copy of the current entries."""
        return list(self.letters)

    def to_dicts(self) -> list[dict]:
        """All entries as JSON-able dicts."""
        return [letter.to_dict() for letter in self.letters]


class CircuitBreaker:
    """Consecutive-failure breaker over one input stream.

    State machine: *closed* (all traffic flows) → *open* after
    ``threshold`` consecutive failures (traffic short-circuits) →
    *half-open* once ``reset_after_s`` of event time has passed (one
    trial item flows; success closes, failure re-opens).  Tracks the
    open intervals in event time for post-run inspection.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, threshold: int = 5, reset_after_s: int = 600):
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        if reset_after_s < 0:
            raise ValueError("reset_after_s must not be negative")
        self.threshold = threshold
        self.reset_after_s = reset_after_s
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[int] = None
        #: Completed and ongoing open spans, in event time.
        self.open_intervals: list[tuple[int, Optional[int]]] = []

    def allow(self, now: int) -> bool:
        """Whether an item arriving at ``now`` may be processed."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            assert self.opened_at is not None
            if now - self.opened_at >= self.reset_after_s:
                self.state = self.HALF_OPEN
                return True
            return False
        return True  # half-open: the trial item flows

    def record_success(self, now: int) -> None:
        """A chain run over this input succeeded."""
        if self.state != self.CLOSED:
            self._close(now)
        self.consecutive_failures = 0

    def record_failure(self, now: int) -> None:
        """A chain run over this input failed."""
        if self.state == self.HALF_OPEN:
            # Failed trial: re-open and restart the cooldown clock.
            self.state = self.OPEN
            self.opened_at = now
            return
        self.consecutive_failures += 1
        if (
            self.state == self.CLOSED
            and self.consecutive_failures >= self.threshold
        ):
            self.state = self.OPEN
            self.opened_at = now
            self.open_intervals.append((now, None))

    def _close(self, now: int) -> None:
        self.state = self.CLOSED
        self.opened_at = None
        if self.open_intervals and self.open_intervals[-1][1] is None:
            start, _ = self.open_intervals[-1]
            self.open_intervals[-1] = (start, now)

    @property
    def is_open(self) -> bool:
        return self.state == self.OPEN


@dataclass
class Supervisor:
    """Supervision configuration + state for one runtime execution.

    Parameters
    ----------
    default_policy:
        Applied to processes with no dedicated policy.  The default
        (``fail``) reproduces unsupervised behaviour, so attaching a
        supervisor is opt-in per process.
    policies:
        Per-process overrides by process name.  A policy attached
        directly to a :class:`~repro.streams.processes.Process` wins
        over both.
    breaker_threshold / breaker_reset_s:
        Circuit-breaker tuning shared by all inputs.
    """

    default_policy: ErrorPolicy = field(default_factory=ErrorPolicy)
    policies: dict[str, ErrorPolicy] = field(default_factory=dict)
    breaker_threshold: int = 5
    breaker_reset_s: int = 600
    dead_letters: DeadLetterQueue = field(default_factory=DeadLetterQueue)
    metrics: Optional[Registry] = None
    breakers: dict[str, CircuitBreaker] = field(default_factory=dict)

    def policy_for(self, process) -> ErrorPolicy:
        """The effective policy of a process (process > name > default)."""
        if getattr(process, "policy", None) is not None:
            return process.policy
        return self.policies.get(process.name, self.default_policy)

    def breaker_for(self, input_name: str) -> CircuitBreaker:
        """Get or create the breaker guarding ``input_name``."""
        breaker = self.breakers.get(input_name)
        if breaker is None:
            breaker = self.breakers[input_name] = CircuitBreaker(
                self.breaker_threshold, self.breaker_reset_s
            )
        return breaker

    # -- metrics helpers -------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(n)

    # -- runtime callbacks -----------------------------------------------
    def chain_failed(self, error: BaseException, *, timeout: bool) -> None:
        """Count one failed chain attempt."""
        self._count("streams.supervision.errors")
        if timeout:
            self._count("streams.supervision.timeouts")

    def account_backoff(self, seconds: float) -> None:
        """Record one retry's backoff (accounted, not slept)."""
        self._count("streams.supervision.retries")
        if self.metrics is not None:
            self.metrics.timing("streams.supervision.backoff_s").observe(
                seconds
            )

    def breaker_success(self, input_name: str, now: int) -> None:
        """Report a successful chain run to the input's breaker."""
        self.breaker_for(input_name).record_success(now)

    def breaker_failure(self, input_name: str, now: int) -> None:
        """Report a dead-lettered item to the input's breaker."""
        breaker = self.breaker_for(input_name)
        was_open = breaker.is_open
        breaker.record_failure(now)
        if breaker.is_open and not was_open:
            self._count(f"streams.breaker.{input_name}.opened")

    def short_circuit(self, input_name: str, item: DataItem,
                      arrival: int) -> None:
        """Dead-letter an item rejected by an open breaker."""
        self._count(f"streams.breaker.{input_name}.short_circuited")
        self.dead_letter(
            process=f"breaker:{input_name}",
            input_name=input_name,
            item=item,
            error="circuit open",
            attempts=0,
            arrival=arrival,
        )

    def record_breaker_states(self) -> None:
        """Publish each breaker's final state as a gauge (0 closed,
        0.5 half-open, 1 open)."""
        if self.metrics is None:
            return
        levels = {
            CircuitBreaker.CLOSED: 0.0,
            CircuitBreaker.HALF_OPEN: 0.5,
            CircuitBreaker.OPEN: 1.0,
        }
        for name, breaker in self.breakers.items():
            self.metrics.gauge(f"streams.breaker.{name}.state").set(
                levels[breaker.state]
            )

    def dead_letter(
        self,
        *,
        process: str,
        input_name: str,
        item: DataItem,
        error: BaseException | str,
        attempts: int,
        arrival: int,
    ) -> None:
        """File one dead letter and count it."""
        message = (
            error
            if isinstance(error, str)
            else f"{type(error).__name__}: {error}"
        )
        dropped_before = self.dead_letters.dropped
        self.dead_letters.append(
            DeadLetter(
                process=process,
                input=input_name,
                item=dict(item),
                error=message,
                attempts=attempts,
                arrival=arrival,
            )
        )
        self._count("streams.supervision.dead_letters")
        evicted = self.dead_letters.dropped - dropped_before
        if evicted:
            self._count("streams.supervision.dlq.dropped", evicted)
