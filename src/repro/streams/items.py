"""Data items for the Streams-framework analog.

The Streams framework "works on sequences of data items which are
represented by sets of key-value pairs, i.e. event attributes and their
values" (paper, Section 3).  We keep that representation: a data item
is a plain ``dict`` mapping attribute names to values, plus a small set
of helpers for the reserved keys the runtime uses.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

DataItem = dict[str, Any]

#: Reserved key: the event-time timestamp of the item (seconds).
TIME_KEY = "@time"
#: Reserved key: the arrival time of the item at the platform.
ARRIVAL_KEY = "@arrival"
#: Reserved key: the source stream the item originated from.
SOURCE_KEY = "@source"


def make_item(
    payload: Mapping[str, Any],
    *,
    time: int | None = None,
    arrival: int | None = None,
    source: str | None = None,
) -> DataItem:
    """Build a data item, stamping the reserved keys when provided."""
    item: DataItem = dict(payload)
    if time is not None:
        item[TIME_KEY] = time
    if arrival is not None:
        item[ARRIVAL_KEY] = arrival
    if source is not None:
        item[SOURCE_KEY] = source
    return item


def item_time(item: Mapping[str, Any]) -> int:
    """Event-time of an item (KeyError when unstamped)."""
    return item[TIME_KEY]


def item_arrival(item: Mapping[str, Any]) -> int:
    """Arrival time of an item; falls back to its event-time."""
    return item.get(ARRIVAL_KEY, item[TIME_KEY])


def item_source(item: Mapping[str, Any]) -> str | None:
    """The source stream an item came from, if stamped."""
    return item.get(SOURCE_KEY)


def payload_of(item: Mapping[str, Any]) -> DataItem:
    """The item without the reserved ``@``-prefixed runtime keys."""
    return {k: v for k, v in item.items() if not k.startswith("@")}


def iter_attributes(item: Mapping[str, Any]) -> Iterator[tuple[str, Any]]:
    """Iterate over non-reserved attributes of an item."""
    for key, value in item.items():
        if not key.startswith("@"):
            yield key, value
