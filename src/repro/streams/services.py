"""Services: named shared components of a Streams application.

"Streams allows for the specification of services, i.e. sets of
functions that are accessible throughout the stream processing
application" (paper, Section 3).  The traffic-modelling procedure, for
instance, is "wrapped as a Streams service".  A service here is any
Python object registered under a name; processors reach it through
their :class:`~repro.streams.processors.ProcessorContext`.
"""

from __future__ import annotations

from typing import Any, Iterator


class ServiceRegistry:
    """A simple name → object registry with lifecycle hooks.

    Objects exposing ``start()`` / ``stop()`` receive those calls when
    the runtime starts and finishes; others are used as-is.
    """

    def __init__(self) -> None:
        self._services: dict[str, Any] = {}

    def register(self, name: str, service: Any) -> None:
        """Register ``service`` under ``name`` (names are unique)."""
        if name in self._services:
            raise ValueError(f"service already registered: {name!r}")
        self._services[name] = service

    def lookup(self, name: str) -> Any:
        """Return the service registered under ``name``."""
        try:
            return self._services[name]
        except KeyError:
            raise LookupError(f"unknown service: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._services

    def __iter__(self) -> Iterator[str]:
        return iter(self._services)

    def __len__(self) -> int:
        return len(self._services)

    def start_all(self) -> None:
        """Invoke ``start()`` on every service that defines it."""
        for service in self._services.values():
            start = getattr(service, "start", None)
            if callable(start):
                start()

    def stop_all(self) -> None:
        """Invoke ``stop()`` on every service that defines it."""
        for service in self._services.values():
            stop = getattr(service, "stop", None)
            if callable(stop):
                stop()
