"""Streams, queues and processes — the data-flow graph nodes.

"The actual processing logic, i.e. the nodes of the data flow graph, is
realised by processes that comprise a sequence of processors.
Processes take a stream or a queue as input" (paper, Section 3).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator, Sequence
from typing import Optional

from .items import ARRIVAL_KEY, SOURCE_KEY, TIME_KEY, DataItem, item_arrival
from .processors import Processor
from .supervision import ErrorPolicy


class Source:
    """A named, finite stream of data items ordered by arrival time.

    Items must carry an event-time stamp (``@time``); an ``@arrival``
    stamp is added from the event time when missing, and the source name
    is stamped as ``@source``.
    """

    def __init__(self, name: str, items: Iterable[DataItem]):
        self.name = name
        stamped = []
        for item in items:
            item = dict(item)
            if TIME_KEY not in item:
                raise ValueError(
                    f"source {name!r}: every item needs a {TIME_KEY} stamp"
                )
            item.setdefault(ARRIVAL_KEY, item[TIME_KEY])
            item.setdefault(SOURCE_KEY, name)
            stamped.append(item)
        stamped.sort(key=item_arrival)
        self._items = stamped

    def __iter__(self) -> Iterator[DataItem]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)


class Queue:
    """A named FIFO connecting processes.

    The runtime delivers enqueued items to every process whose input is
    this queue; when no process consumes it, items accumulate and can be
    inspected afterwards (a convenient sink for tests and operators).
    """

    def __init__(self, name: str):
        self.name = name
        self.items: deque[DataItem] = deque()

    def put(self, item: DataItem) -> None:
        """Append an item (runtime use)."""
        self.items.append(item)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[DataItem]:
        return iter(self.items)

    def snapshot(self) -> list[DataItem]:
        """A list copy of the currently-buffered items."""
        return list(self.items)


class Process:
    """A named chain of processors with one input and optional output.

    Parameters
    ----------
    name:
        Process identifier (unique within a topology).
    input:
        The name of the source stream or queue this process consumes.
    processors:
        The processor chain; each item flows through all of them in
        order (a processor may drop the item or fan it out).
    output:
        Optional queue name to which surviving items are forwarded.
    policy:
        Optional :class:`~repro.streams.supervision.ErrorPolicy`
        declared at construction; when the runtime executes under a
        supervisor this policy wins over the supervisor's per-name and
        default policies.  Ignored by an unsupervised runtime.
    """

    def __init__(
        self,
        name: str,
        input: str,
        processors: Sequence[Processor],
        output: Optional[str] = None,
        policy: Optional[ErrorPolicy] = None,
    ):
        if not processors:
            raise ValueError(f"process {name!r} needs at least one processor")
        self.name = name
        self.input = input
        self.processors = list(processors)
        self.output = output
        self.policy = policy
        #: Number of items that entered this process.
        self.consumed = 0
        #: Number of items that left the end of the chain.
        self.produced = 0
