"""The RTEC run-time event recognition engine (reproduction).

Implements the reasoning machinery described in Section 4.2 of the
paper: complex-event recognition is performed at successive *query
times* ``Q_1, Q_2, ...`` spaced ``step`` apart; at each query time only
the SDEs whose occurrence falls inside the *working memory* (window)
``(Q_i - WM, Q_i]`` — and that have *arrived* by ``Q_i`` — are taken
into consideration.  Making the window larger than the step lets the
engine account for SDEs that occurred before the previous query time
but arrived after it (the paper's Figure 2); windowing bounds the cost
of recognition by the window size rather than the full stream history.

Evaluation proceeds stratum by stratum over the definitions (see
:mod:`repro.core.rules`), and the value of each simple fluent at the
window's left edge is seeded from the previous evaluation cycle, which
carries the law of inertia across overlapping windows.

Two evaluation modes share those semantics:

* the **legacy** mode (``incremental=False``) rebuilds the window
  contents and re-derives every definition from scratch at each query
  time — the direct transcription of the paper;
* the **incremental** mode (the default) keeps SDEs in a persistent
  time-indexed working memory (:class:`repro.core.incremental.
  WorkingMemory`) that evicts by the window's left edge, and reuses
  each definition's output points from the previous query for the
  overlap ``[Q_i - window + step, Q_i]``, re-deriving only the newest
  ``step`` of data plus whatever late arrivals and upstream changes
  invalidated (see :mod:`repro.core.incremental` for the contract).
  Its output is identical to the legacy mode's — the golden-trace
  differential tests in ``tests/core/test_golden_trace.py`` pin that.
"""

from __future__ import annotations

import bisect
import operator
import time as _time
from collections import defaultdict
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

import numpy as np

from .columns import ColumnSource, SDEColumns
from .events import Event, FluentFact, FluentKey, Occurrence
from .incremental import (
    DefinitionState,
    IncrementalSpec,
    RangeSet,
    TimeRange,
    WorkingMemory,
    changed_interval_ranges,
    changed_point_ranges,
    freeze,
    merge_ranges,
)
from .intervals import EFFECT_DELAY, IntervalList, make_intervals
from .rules import (
    Definition,
    DerivedEvent,
    RuleContext,
    SimpleFluent,
    StaticFluent,
    ValuedFluent,
    stratify,
)


@dataclass
class RecognitionSnapshot:
    """The result of one recognition step at a query time.

    Attributes
    ----------
    query_time:
        The query time ``Q_i``.
    window_start:
        ``Q_i - WM``; SDEs at or before this point were discarded.
    fluents:
        Computed maximal intervals per fluent name and grounding
        (``holdsFor``).
    occurrences:
        Recognised derived-event instances per CE name (``happensAt``).
    elapsed:
        CPU seconds spent on this recognition step (process time), the
        quantity reported in the paper's Figure 4.
    n_events:
        Number of input SDEs considered in the window.
    n_new_events:
        Number of those SDEs seen for the first time at this query —
        i.e. arrived after the previous query time.  With overlapping
        windows the same SDE is *considered* by several consecutive
        queries (and so counted in ``n_events`` each time); this field
        counts each SDE exactly once across a run.
    cache_hits / cache_misses / cache_invalidations:
        Incremental-evaluation statistics: definitions that reused
        cached points for the window overlap, cacheable definitions
        that had to recompute in full, and reusing definitions whose
        cache was partially invalidated (late arrivals or upstream
        changes).  All zero in legacy mode.
    compiled_evals / compiled_fallbacks:
        Rule-compilation statistics: rule-body evaluations served by a
        vectorised compiled evaluator, and evaluations of point-deriving
        definitions that fell back to the interpreter (no compiled form
        exists for them).  Both zero when compilation is disabled.
    """

    query_time: int
    window_start: int
    fluents: dict[str, dict[FluentKey, IntervalList]] = field(
        default_factory=dict
    )
    occurrences: dict[str, list[Occurrence]] = field(default_factory=dict)
    elapsed: float = 0.0
    n_events: int = 0
    n_new_events: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    compiled_evals: int = 0
    compiled_fallbacks: int = 0
    #: CPU seconds spent per definition (profiling breakdown).
    per_definition: dict[str, float] = field(default_factory=dict)

    def intervals(self, name: str, key: FluentKey) -> IntervalList:
        """``holdsFor`` lookup on the snapshot."""
        return self.fluents.get(name, {}).get(key, IntervalList.empty())

    def holds_at(self, name: str, key: FluentKey, t: int) -> bool:
        """``holdsAt`` lookup on the snapshot."""
        return self.intervals(name, key).holds_at(t)

    def all_occurrences(self, name: str) -> list[Occurrence]:
        """All occurrences of derived event ``name`` in this window."""
        return self.occurrences.get(name, [])


def _occurrence_token(occ: Occurrence) -> Hashable:
    """Hashable identity of an occurrence for multiset diffing (the
    payload mapping proxy itself is not hashable)."""
    return (occ.type, occ.key, occ.time, freeze(occ.payload))


#: time coordinate of an occurrence, for binary-searching sorted
#: occurrence streams (C-level accessor: the reuse scan is hot).
_occurrence_time = operator.attrgetter("time")


class RTEC:
    """Windowed, stratified event-recognition engine.

    Parameters
    ----------
    definitions:
        The CE/fluent definitions to evaluate; they are stratified by
        their declared dependencies.
    window:
        Working-memory size ``WM`` in time-points.
    step:
        Distance between consecutive query times.  The paper recommends
        ``window > step`` when SDEs arrive with delays.
    params:
        Threshold/tuning parameters made available to rule bodies via
        :meth:`repro.core.rules.RuleContext.param`.
    start:
        Time-point of ``Q_0``; the first query time is ``start + step``.
    initially:
        Initial fluent state (the Event Calculus ``initially``
        predicate): ``{(fluent_name, grounding): value}`` — ``True``
        for boolean simple fluents, an arbitrary value for valued
        fluents.  Those fluents hold from before the first window until
        terminated.
    incremental:
        When ``True`` (the default) SDEs are indexed into a persistent
        working memory and definition outputs are cached across the
        window overlap; ``False`` selects the legacy from-scratch
        evaluation.  Both modes produce identical recognition output.
    compiled:
        When ``True`` (the default) definitions offering a vectorised
        evaluator (:meth:`repro.core.rules.Definition.compiled`) have
        their rule bodies lowered to array operations over columnar
        views; ``False`` keeps every body on the interpreter.  The
        recognition output is identical either way (pinned by the
        parity suites); the flag exists for debugging and differential
        testing.

    Durability
    ----------
    Engines are checkpointed by :mod:`repro.recovery` through
    whole-object pickling.  The contract: all cross-query state — the
    persistent :class:`~.incremental.WorkingMemory` (including pending
    SDEs that have not yet *arrived*), the per-definition cached
    streams/change ranges (:class:`~.incremental.DefinitionState`), the
    fluent-inertia cache that seeds each window's left edge, and the
    last query time — must round-trip through pickle such that the
    restored engine answers every subsequent ``query(q)`` identically
    to the original.  This requires rule bodies and grounding-partition
    functions to be module-level callables (pickled by reference, so
    restored definitions and working-memory indexes share the same
    function objects); frozen payload mappings are reduced to plain
    dicts by the event classes' ``__reduce__``.
    """

    def __init__(
        self,
        definitions: Sequence[Definition],
        *,
        window: int,
        step: int,
        params: Optional[Mapping[str, Any]] = None,
        start: int = 0,
        initially: Optional[Mapping[tuple[str, FluentKey], Any]] = None,
        incremental: bool = True,
        compiled: bool = True,
    ):
        if window <= 0 or step <= 0:
            raise ValueError("window and step must be positive")
        if step > window:
            raise ValueError(
                "step must not exceed the window: SDEs occurring between "
                "windows would never be considered"
            )
        self.window = window
        self.step = step
        self.params: dict[str, Any] = dict(params or {})
        self._definitions = stratify(definitions)
        self._start = start
        self._last_query: Optional[int] = None
        self.incremental = bool(incremental)
        # Legacy input buffers (legacy mode only).
        self._events: list[Event] = []
        self._facts: list[FluentFact] = []
        self._inputs_sorted = True
        # Incremental state: the persistent working memory, each
        # definition's declared input contract and its cached points.
        self._wm = WorkingMemory() if self.incremental else None
        self._specs: dict[str, Optional[IncrementalSpec]] = {}
        self._states: dict[str, DefinitionState] = {}
        if self.incremental:
            for d in self._definitions:
                spec = self._specs[d.name] = d.incremental_spec(self.params)
                if (
                    spec is None
                    or spec.lookback is None
                    or not spec.partitioned
                ):
                    continue
                # Partitioned specs re-derive dirty groundings from a
                # token-restricted context; registering their partition
                # functions keeps the working memory pre-grouped so the
                # context never needs a full-column scan.
                for etype in spec.event_types:
                    self._wm.register_event_partition(
                        etype, spec.event_partition[etype]
                    )
                for fname in spec.fact_names:
                    self._wm.register_fact_partition(
                        fname, spec.fact_partition[fname]
                    )
        # Rule compilation: definitions offering a vectorised evaluator
        # get their bodies lowered; the working memory pre-declares the
        # columnar layouts those evaluators read, so its mirrors are
        # maintained incrementally alongside the object columns.
        self.compiled_rules = bool(compiled)
        self._compiled: dict[str, Any] = {}
        if self.compiled_rules:
            for d in self._definitions:
                rule = d.compiled(self.params)
                if rule is None:
                    continue
                self._compiled[d.name] = rule
                if self._wm is not None:
                    for etype, cspec in rule.columns.items():
                        self._wm.declare_columns(etype, cspec)
        #: definitions some *other* definition depends on: only their
        #: output diffs feed downstream invalidation, so ``changed`` is
        #: computed for them alone (for sinks it would be dead work).
        self._consumed = {
            dep for d in self._definitions for dep in d.depends_on
        }
        #: last computed intervals per fluent name and grounding; seeds
        #: the value at the next window's left edge (inertia).  Valued
        #: fluents are cached under ``grounding + (value,)``; groundings
        #: whose intervals became empty are pruned.
        self._fluent_cache: dict[str, dict[FluentKey, IntervalList]] = {}
        #: names of the valued-fluent definitions (they extend keys).
        self._valued_names = {
            d.name for d in self._definitions if isinstance(d, ValuedFluent)
        }
        if initially:
            # The fluent holds from before any window's left edge.
            genesis = start + step - window - 1
            for (name, key), value in initially.items():
                if name in self._valued_names:
                    cache_key = tuple(key) + (value,)
                elif value is True:
                    cache_key = tuple(key)
                else:
                    raise ValueError(
                        "boolean fluents can only be initially True; "
                        f"got {value!r} for {name!r}"
                    )
                self._fluent_cache.setdefault(name, {})[cache_key] = (
                    IntervalList.single(genesis, None)
                )

    # ------------------------------------------------------------------
    # Input handling
    # ------------------------------------------------------------------
    def feed(
        self,
        events: Iterable[Event] = (),
        facts: Iterable[FluentFact] = (),
    ) -> None:
        """Buffer input SDEs and input-fluent facts.

        Inputs may be fed in any order; the engine honours arrival
        times when selecting window contents (legacy mode sorts its
        buffers per query, incremental mode indexes by occurrence time
        on admission).

        SDEs with a negative occurrence time are rejected: the scenario
        clock starts at 0, so a negative stamp is always a mediator bug
        (or an injected corruption) and silently accepting it would
        seed windows before time 0.
        """
        appended = False
        for ev in events:
            if ev.time < 0:
                raise ValueError(
                    f"event of type {ev.type!r} occurs at negative time "
                    f"{ev.time}; SDE timestamps must be >= 0"
                )
            if self._wm is not None:
                self._wm.buffer_event(ev)
            else:
                self._events.append(ev)
                appended = True
        for fact in facts:
            if fact.time < 0:
                raise ValueError(
                    f"fluent fact {fact.name!r} occurs at negative time "
                    f"{fact.time}; SDE timestamps must be >= 0"
                )
            if self._wm is not None:
                self._wm.buffer_fact(fact)
            else:
                self._facts.append(fact)
                appended = True
        if appended:
            self._inputs_sorted = False

    def feed_columns(self, batch: SDEColumns) -> None:
        """Buffer a columnar SDE batch (:class:`~.columns.SDEColumns`).

        The batch counterpart of :meth:`feed`: negative-time validation
        runs vectorised over the batch's time arrays, and in
        incremental mode the rows enter the working memory's pending
        buffer as lazy handles — an :class:`Event` object is only built
        when a row is actually admitted into a window.  Legacy engines
        materialise the batch into their object buffers (their whole
        evaluation is object-based).
        """
        batch.validate()
        if self._wm is not None:
            self._wm.buffer_columns(batch)
        elif batch.n:
            self._events.extend(batch.iter_events())
            self._facts.extend(batch.iter_facts())
            self._inputs_sorted = False

    def mark_stream_fed(self) -> None:
        """Declare the initial input stream fully fed (see
        :meth:`repro.core.incremental.WorkingMemory.mark_stream_boundary`).

        Checkpoints written in streamless mode then drop the pending
        part of that stream and regenerate it on restore; SDEs fed
        after this call (crowd feedback) are snapshotted verbatim.
        Legacy (non-incremental) engines keep full snapshots and ignore
        the marker.
        """
        if self._wm is not None:
            self._wm.mark_stream_boundary()

    def refill_stream(self, events, facts, admitted_through: int) -> None:
        """Rebuild the pending buffer of a streamless checkpoint from
        the regenerated initial stream (no-op for legacy engines, whose
        snapshots are always complete)."""
        if self._wm is not None:
            self._wm.refill_stream(events, facts, admitted_through)

    def refill_columns(self, batch: SDEColumns, admitted_through: int) -> None:
        """Columnar counterpart of :meth:`refill_stream` for engines
        whose initial stream was fed via :meth:`feed_columns`."""
        if self._wm is not None:
            self._wm.refill_columns(batch, admitted_through)

    def _ensure_sorted(self) -> None:
        if not self._inputs_sorted:
            self._events.sort(key=lambda e: e.time)
            self._facts.sort(key=lambda f: f.time)
            self._inputs_sorted = True

    def _prune(self, horizon: int) -> None:
        """Discard inputs that can never again fall inside a window."""
        self._events = [e for e in self._events if e.time > horizon]
        self._facts = [f for f in self._facts if f.time > horizon]

    # ------------------------------------------------------------------
    # Recognition
    # ------------------------------------------------------------------
    def query(self, q: int) -> RecognitionSnapshot:
        """Perform one recognition step at query time ``q``.

        Only SDEs with occurrence in ``(q - window, q]`` that have
        arrived by ``q`` are considered; everything older is discarded
        (the paper's working-memory semantics).
        """
        if self._last_query is not None and q <= self._last_query:
            raise ValueError(
                f"query times must be increasing: {q} <= {self._last_query}"
            )
        if self._wm is not None:
            return self._query_incremental(q)
        return self._query_legacy(q)

    # -- legacy mode ---------------------------------------------------
    def _query_legacy(self, q: int) -> RecognitionSnapshot:
        self._ensure_sorted()
        window_start = q - self.window
        previous = self._last_query

        events_by_type: dict[str, list[Event]] = defaultdict(list)
        n_events = 0
        n_new_events = 0
        for ev in self._events:
            if ev.time <= window_start:
                continue
            if ev.time > q:
                break
            if ev.arrival <= q:
                events_by_type[ev.type].append(ev)
                n_events += 1
                if previous is None or ev.arrival > previous:
                    n_new_events += 1

        facts_by_key: dict[tuple[str, FluentKey], list[FluentFact]] = (
            defaultdict(list)
        )
        for fact in self._facts:
            if fact.time <= window_start:
                continue
            if fact.time > q:
                break
            if fact.arrival <= q:
                facts_by_key[(fact.name, fact.key)].append(fact)

        ctx = RuleContext(
            window_start=window_start,
            window_end=q,
            events=events_by_type,
            facts=facts_by_key,
            params=self.params,
        )

        snapshot = RecognitionSnapshot(
            query_time=q,
            window_start=window_start,
            n_events=n_events,
            n_new_events=n_new_events,
        )
        t0 = _time.process_time()
        for definition in self._definitions:
            d0 = _time.process_time()
            if isinstance(definition, StaticFluent):
                intervals = dict(definition.derive(ctx))
                ctx._store_fluent(definition.name, intervals)
                snapshot.fluents[definition.name] = intervals
            elif isinstance(definition, DerivedEvent):
                streams = self._extract_streams(definition, ctx, snapshot)
                occurrences = sorted(
                    streams["occ"], key=lambda o: (o.time, o.key)
                )
                ctx._store_occurrences(definition.name, occurrences)
                snapshot.occurrences[definition.name] = occurrences
            elif isinstance(definition, (SimpleFluent, ValuedFluent)):
                streams = self._extract_streams(definition, ctx, snapshot)
                if isinstance(definition, ValuedFluent):
                    intervals = self._valued_intervals(
                        definition.name, ctx, streams["init"], streams["term"]
                    )
                else:
                    intervals = self._simple_intervals(
                        definition.name, ctx, streams["init"], streams["term"]
                    )
                ctx._store_fluent(definition.name, intervals)
                snapshot.fluents[definition.name] = intervals
            else:  # pragma: no cover - guarded by the type system
                raise TypeError(f"unknown definition type: {definition!r}")
            snapshot.per_definition[definition.name] = (
                _time.process_time() - d0
            )
        snapshot.elapsed = _time.process_time() - t0

        self._last_query = q
        self._prune(window_start)
        return snapshot

    # -- incremental mode ----------------------------------------------
    def _query_incremental(self, q: int) -> RecognitionSnapshot:
        window_start = q - self.window
        previous = self._last_query

        new_events, new_facts = self._wm.admit(q, window_start)
        self._wm.evict(window_start)
        if previous is not None:
            # Delayed SDEs: first seen now, but occurred inside the
            # previous window's overlap — they invalidate cached points.
            late_events = [ev for ev in new_events if ev.time <= previous]
            late_facts = [f for f in new_facts if f.time <= previous]
        else:
            late_events = []
            late_facts = []

        events_by_type: dict[str, list[Event]] = {}
        n_events = 0
        for etype, column in self._wm.events.items():
            if column.items:
                events_by_type[etype] = column.items
                n_events += len(column.items)
        facts_by_key: dict[tuple[str, FluentKey], list[FluentFact]] = {}
        fact_times: dict[tuple[str, FluentKey], list[int]] = {}
        for fkey, column in self._wm.facts.items():
            if column.items:
                facts_by_key[fkey] = column.items
                fact_times[fkey] = column.times

        ctx = RuleContext(
            window_start=window_start,
            window_end=q,
            events=events_by_type,
            facts=facts_by_key,
            params=self.params,
            fact_times=fact_times,
            columns=self._column_sources(),
        )

        snapshot = RecognitionSnapshot(
            query_time=q,
            window_start=window_start,
            n_events=n_events,
            n_new_events=len(new_events),
        )
        #: restricted contexts built this query, shared across
        #: definitions keyed by their (lo, hi] input range.
        range_contexts: dict[tuple[int, int], RuleContext] = {}
        #: dirty-grounding contexts built this query, shared across
        #: definitions with identical declared inputs (and hence
        #: identical per-token slices of the working memory).
        token_contexts: dict[Hashable, RuleContext] = {}
        #: occurrence-time arrays per already-evaluated derived event,
        #: for bisecting upstream slices into restricted contexts.
        occ_times: dict[str, list[int]] = {}
        overlap_lo = window_start + 1

        t0 = _time.process_time()
        for definition in self._definitions:
            d0 = _time.process_time()
            name = definition.name
            state = self._states.get(name)
            if state is None:
                state = self._states[name] = DefinitionState()

            if isinstance(definition, StaticFluent):
                # Statically-determined fluents are pure interval
                # algebra over their dependencies — recomputed in full
                # (the algebra is cheap; the expensive part is the
                # point derivation upstream, which *is* cached).
                out = dict(definition.derive(ctx))
                ctx._store_fluent(name, out)
                snapshot.fluents[name] = out
                state.changed = (
                    []
                    if previous is None or name not in self._consumed
                    else changed_interval_ranges(
                        state.prev_out or {}, out, overlap_lo, previous
                    )
                )
                state.prev_out = out
                state.streams = None
                state.stream_times = None
            elif isinstance(definition, DerivedEvent):
                old = state.streams
                streams = self._definition_streams(
                    definition, state, ctx, q, window_start, previous,
                    late_events, late_facts, snapshot, range_contexts,
                    token_contexts, occ_times,
                )
                occurrences = sorted(
                    streams["occ"], key=lambda o: (o.time, o.key)
                )
                streams["occ"] = occurrences
                ctx._store_occurrences(name, occurrences)
                snapshot.occurrences[name] = occurrences
                if previous is None or name not in self._consumed:
                    state.changed = []
                elif old is None:
                    state.changed = [(overlap_lo, previous)]
                else:
                    state.changed = changed_point_ranges(
                        (
                            (_occurrence_token(o), o.time)
                            for o in old["occ"]
                            if window_start < o.time <= previous
                        ),
                        (
                            (_occurrence_token(o), o.time)
                            for o in occurrences
                            if o.time <= previous
                        ),
                        overlap_lo,
                        previous,
                    )
                state.streams = streams
                state.stream_times = None
            else:  # SimpleFluent / ValuedFluent
                streams = self._definition_streams(
                    definition, state, ctx, q, window_start, previous,
                    late_events, late_facts, snapshot, range_contexts,
                    token_contexts, occ_times,
                )
                if isinstance(definition, ValuedFluent):
                    out = self._valued_intervals(
                        name, ctx, streams["init"], streams["term"]
                    )
                elif isinstance(definition, SimpleFluent):
                    out = self._simple_intervals(
                        name, ctx, streams["init"], streams["term"]
                    )
                else:  # pragma: no cover - guarded by the type system
                    raise TypeError(
                        f"unknown definition type: {definition!r}"
                    )
                ctx._store_fluent(name, out)
                snapshot.fluents[name] = out
                state.changed = (
                    []
                    if previous is None or name not in self._consumed
                    else changed_interval_ranges(
                        state.prev_out or {}, out, overlap_lo, previous
                    )
                )
                state.prev_out = out
                state.streams = streams
                state.stream_times = None
            snapshot.per_definition[name] = _time.process_time() - d0
        snapshot.elapsed = _time.process_time() - t0

        self._last_query = q
        return snapshot

    def _extract_streams(
        self,
        definition: Definition,
        ctx: RuleContext,
        snapshot: Optional[RecognitionSnapshot] = None,
    ) -> dict[str, list[Any]]:
        """Run a definition's rule bodies, as point streams.

        Definitions with a compiled evaluator take the vectorised path
        over the context's columnar views; everything else runs the
        interpreted bodies.  The snapshot's ``compiled_evals`` /
        ``compiled_fallbacks`` counters record which path served each
        evaluation.
        """
        rule = self._compiled.get(definition.name)
        if rule is not None:
            if snapshot is not None:
                snapshot.compiled_evals += 1
            return rule.derive(ctx)
        if snapshot is not None and self.compiled_rules:
            snapshot.compiled_fallbacks += 1
        if isinstance(definition, DerivedEvent):
            return {"occ": list(definition.occurrences(ctx))}
        return {
            "init": list(definition.initiations(ctx)),
            "term": list(definition.terminations(ctx)),
        }

    @staticmethod
    def _stream_times(definition: Definition):
        """Per-stream accessors for a point's time coordinate."""
        if isinstance(definition, DerivedEvent):
            occ_time = lambda pt: pt.time  # noqa: E731
            return {"occ": occ_time}
        if isinstance(definition, ValuedFluent):
            triple_time = lambda pt: pt[2]  # noqa: E731
            return {"init": triple_time, "term": triple_time}
        pair_time = lambda pt: pt[1]  # noqa: E731
        return {"init": pair_time, "term": pair_time}

    def _definition_streams(
        self,
        definition: Definition,
        state: DefinitionState,
        ctx: RuleContext,
        q: int,
        window_start: int,
        previous: Optional[int],
        late_events: list[Event],
        late_facts: list[FluentFact],
        snapshot: RecognitionSnapshot,
        range_contexts: dict[tuple[int, int], RuleContext],
        token_contexts: dict[Hashable, RuleContext],
        occ_times: dict[str, list[int]],
    ) -> dict[str, list[Any]]:
        """This query's output points, reusing the previous query's
        where the definition's incremental contract proves them stable.

        The window splits into three regions around the cached points:

        * a *head* ``(window_start, window_start + lookback)`` whose
          points saw deeper history last query than the new window
          retains — re-derived against the truncated window, exactly
          as the legacy engine would;
        * a *middle* ``[window_start + lookback, previous - lookahead]``
          reused from the cache, minus invalidated *bands* (widened
          time ranges around late arrivals and upstream output
          changes) and *dirty groundings* (partitioned definitions
          re-derive only the groundings a late arrival touched);
        * a *tail* ``(previous - lookahead, q]`` covering the new data,
          plus the points whose lookahead now reaches inputs that did
          not exist at the previous query.
        """
        spec = self._specs.get(definition.name)
        cacheable = (
            spec is not None
            and spec.lookback is not None
            and previous is not None
            and state.streams is not None
        )
        if cacheable:
            lookback = spec.lookback
            lookahead = spec.lookahead
            reuse_lo = window_start + max(lookback, 1)
            reuse_hi = previous - lookahead
            if reuse_lo > reuse_hi:
                # The overlap is thinner than the dependency horizon:
                # nothing cached is provably stable.
                cacheable = False
        if not cacheable:
            if spec is not None and spec.lookback is not None:
                snapshot.cache_misses += 1
            return self._extract_streams(definition, ctx, snapshot)

        # -- what changed since the previous query -----------------
        partitioned = spec.partitioned
        changed_ranges: list[TimeRange] = []
        dirty: set[Hashable] = set()
        for dep in definition.depends_on:
            dep_state = self._states.get(dep)
            if dep_state is not None:
                changed_ranges.extend(dep_state.changed)
        for ev in late_events:
            if ev.type in spec.event_types:
                if partitioned:
                    dirty.add(spec.event_partition[ev.type](ev))
                else:
                    changed_ranges.append((ev.time, ev.time))
        for fact in late_facts:
            if fact.name in spec.fact_names:
                if partitioned:
                    dirty.add(spec.fact_partition[fact.name](fact))
                else:
                    changed_ranges.append((fact.time, fact.time))
        # An input change at t affects points whose dependency band
        # (t - lookback, t + lookahead] contains it.
        bands = merge_ranges(
            ((a - lookahead, b + lookback) for a, b in changed_ranges),
            reuse_lo,
            reuse_hi,
        )
        snapshot.cache_hits += 1
        if bands or dirty:
            snapshot.cache_invalidations += 1

        segments: list[TimeRange] = []
        if lookback > 1:
            segments.append((window_start + 1, window_start + lookback - 1))
        segments.extend(bands)
        segments.append((reuse_hi + 1, q))
        segments = merge_ranges(segments, window_start + 1, q)

        band_set = RangeSet(bands)
        point_token = spec.point_partition
        times = self._stream_times(definition)
        out: dict[str, list[Any]] = {s: [] for s in state.streams}

        # Middle: reuse cached points outside the invalidated bands.
        # The loops are specialised per definition kind — a cached
        # window holds thousands of points and a per-point accessor
        # call would dominate the reuse path it exists to avoid.
        quiet = not bands and not dirty
        derived = isinstance(definition, DerivedEvent)
        t_index = 2 if isinstance(definition, ValuedFluent) else 1
        for sname, cached_points in state.streams.items():
            kept = out[sname]
            if derived:
                # Occurrence streams are cached (time, key)-sorted, so
                # the reusable range is a binary-searched slice.
                lo_i = bisect.bisect_left(
                    cached_points, reuse_lo, key=_occurrence_time
                )
                hi_i = bisect.bisect_right(
                    cached_points, reuse_hi, lo=lo_i, key=_occurrence_time
                )
                if quiet:
                    out[sname] = cached_points[lo_i:hi_i]
                    continue
                if not bands:
                    for pt in cached_points[lo_i:hi_i]:
                        if point_token(pt) not in dirty:
                            kept.append(pt)
                    continue
                for pt in cached_points[lo_i:hi_i]:
                    if pt.time in band_set:
                        continue
                    if dirty and point_token(pt) in dirty:
                        continue
                    kept.append(pt)
                continue
            # Fluent streams are unsorted point tuples; the time-range
            # and band filters run vectorised over a lazily built
            # (per-stream, per-query) int64 time array — the Python
            # loop only touches the surviving indices.
            if not cached_points:
                continue
            stream_times = state.stream_times
            if stream_times is None:
                stream_times = state.stream_times = {}
            ts = stream_times.get(sname)
            if ts is None:
                ts = stream_times[sname] = np.fromiter(
                    (pt[t_index] for pt in cached_points),
                    np.int64,
                    count=len(cached_points),
                )
            keep = (ts >= reuse_lo) & (ts <= reuse_hi)
            if bands:
                keep &= ~band_set.mask(ts)
            if dirty:
                for i in np.flatnonzero(keep).tolist():
                    pt = cached_points[i]
                    if point_token(pt) not in dirty:
                        kept.append(pt)
            else:
                kept.extend(
                    cached_points[i]
                    for i in np.flatnonzero(keep).tolist()
                )

        # Head, bands and tail: re-derive against a restricted context
        # that contains every input a point in the segment can see.
        for a, b in segments:
            rctx = self._range_context(
                max(a - lookback, window_start),
                min(b + lookahead, q),
                ctx,
                range_contexts,
            )
            self._inject_upstream(rctx, definition, ctx, occ_times)
            extracted = self._extract_streams(definition, rctx, snapshot)
            for sname, points in extracted.items():
                time_of = times[sname]
                kept = out[sname]
                for pt in points:
                    t = time_of(pt)
                    if t < a or t > b:
                        continue
                    if dirty and point_token(pt) in dirty:
                        continue
                    kept.append(pt)

        # Dirty groundings: re-derive them over the whole window from
        # a context restricted to their own inputs.
        if dirty:
            rctx = self._token_context(
                spec, dirty, window_start, q, ctx, token_contexts
            )
            self._inject_upstream(rctx, definition, ctx, occ_times)
            extracted = self._extract_streams(definition, rctx, snapshot)
            for sname, points in extracted.items():
                kept = out[sname]
                for pt in points:
                    if point_token(pt) in dirty:
                        kept.append(pt)
        return out

    def _range_context(
        self,
        lo: int,
        hi: int,
        ctx: RuleContext,
        range_contexts: dict[tuple[int, int], RuleContext],
    ) -> RuleContext:
        """A context over the inputs with occurrence time in
        ``(lo, hi]``, sharing the full context's fluent results."""
        rctx = range_contexts.get((lo, hi))
        if rctx is not None:
            return rctx
        events: dict[str, list[Event]] = {}
        for etype, column in self._wm.events.items():
            i, j = column.bounds(lo, hi)
            if i < j:
                events[etype] = column.items[i:j]
        facts: dict[tuple[str, FluentKey], list[FluentFact]] = {}
        fact_times: dict[tuple[str, FluentKey], list[int]] = {}
        for fkey, column in self._wm.facts.items():
            i, j = column.bounds(lo, hi)
            if i < j:
                facts[fkey] = column.items[i:j]
                fact_times[fkey] = column.times[i:j]
        rctx = RuleContext(
            window_start=lo,
            window_end=hi,
            events=events,
            facts=facts,
            params=self.params,
            fact_times=fact_times,
            columns=self._column_sources(lo, hi),
        )
        rctx._fluents = ctx._fluents
        range_contexts[(lo, hi)] = rctx
        return rctx

    def _column_sources(
        self, lo: Optional[int] = None, hi: Optional[int] = None
    ) -> Optional[dict[str, ColumnSource]]:
        """Deferred columnar views over the working-memory columns with
        a declared layout (``None`` bounds mean the whole window).
        Mirrors sync only when a compiled body actually reads them."""
        if not self.compiled_rules:
            return None
        sources: dict[str, ColumnSource] = {}
        for etype, column in self._wm.events.items():
            spec = self._wm.column_spec_for(etype)
            if spec is not None and column.items:
                sources[etype] = ColumnSource(column, spec, lo, hi)
        return sources

    def _token_context(
        self,
        spec: IncrementalSpec,
        dirty: set[Hashable],
        window_start: int,
        q: int,
        ctx: RuleContext,
        token_contexts: dict[Hashable, RuleContext],
    ) -> RuleContext:
        """A full-window context restricted to the declared input types,
        filtered down to the dirty groundings.

        Definitions declaring the same inputs (same types, same
        partition functions — e.g. the paper's ``disagree`` / ``agree``
        pair over per-bus ``move``/``gps`` reports) select identical
        slices for identical dirty sets, so the context is shared
        between them within one query; the keying deliberately ignores
        ``point_partition``, which only labels *outputs*.
        """
        cache_key = (
            tuple(
                sorted(
                    (t, id(spec.event_partition[t]))
                    for t in spec.event_types
                )
            ),
            tuple(
                sorted(
                    (n, id(spec.fact_partition[n]))
                    for n in spec.fact_names
                )
            ),
            frozenset(dirty),
        )
        cached = token_contexts.get(cache_key)
        if cached is not None:
            return cached
        events: dict[str, list[Event]] = {}
        for etype in spec.event_types:
            token_of = spec.event_partition[etype]
            groups = self._wm.event_groups.get((etype, id(token_of)))
            if groups is not None:
                # Pre-grouped by the working memory: concatenate the
                # dirty tokens' columns (merging restores (time, seq)
                # order when several tokens are dirty at once).
                columns = [
                    groups[token] for token in dirty if token in groups
                ]
                if len(columns) == 1:
                    selected = columns[0].items[:]
                else:
                    selected = [
                        item
                        for _, item in sorted(
                            pair
                            for column in columns
                            for pair in zip(column.order, column.items)
                        )
                    ]
                if selected:
                    events[etype] = selected
                continue
            column = self._wm.events.get(etype)
            if column is None:
                continue
            selected = [ev for ev in column.items if token_of(ev) in dirty]
            if selected:
                events[etype] = selected
        facts: dict[tuple[str, FluentKey], list[FluentFact]] = {}
        fact_times: dict[tuple[str, FluentKey], list[int]] = {}
        grouped_names = set()
        for fname in spec.fact_names:
            token_of = spec.fact_partition[fname]
            groups = self._wm.fact_groups.get((fname, id(token_of)))
            if groups is None:
                continue
            grouped_names.add(fname)
            merged: dict[tuple[str, FluentKey], list] = {}
            for token in dirty:
                by_key = groups.get(token)
                if not by_key:
                    continue
                for key, column in by_key.items():
                    merged.setdefault((fname, key), []).append(column)
            for fkey, columns in merged.items():
                if len(columns) == 1:
                    facts[fkey] = columns[0].items[:]
                    fact_times[fkey] = columns[0].times[:]
                else:
                    pairs = sorted(
                        pair
                        for column in columns
                        for pair in zip(column.order, column.items)
                    )
                    facts[fkey] = [item for _, item in pairs]
                    fact_times[fkey] = [order[0] for order, _ in pairs]
        for fkey, column in self._wm.facts.items():
            if fkey[0] not in spec.fact_names or fkey[0] in grouped_names:
                continue
            token_of = spec.fact_partition[fkey[0]]
            selected = [f for f in column.items if token_of(f) in dirty]
            if selected:
                facts[fkey] = selected
                fact_times[fkey] = [f.time for f in selected]
        rctx = RuleContext(
            window_start=window_start,
            window_end=q,
            events=events,
            facts=facts,
            params=self.params,
            fact_times=fact_times,
        )
        rctx._fluents = ctx._fluents
        token_contexts[cache_key] = rctx
        return rctx

    def _inject_upstream(
        self,
        rctx: RuleContext,
        definition: Definition,
        ctx: RuleContext,
        occ_times: dict[str, list[int]],
    ) -> None:
        """Expose this query's upstream derived events to a restricted
        context, sliced to its ``(lo, hi]`` range."""
        for dep in definition.depends_on:
            if dep in rctx._occurrences:
                continue
            occurrences = ctx._occurrences.get(dep)
            if occurrences is None:
                continue  # a fluent or raw-input dependency
            dep_times = occ_times.get(dep)
            if dep_times is None:
                dep_times = occ_times[dep] = [o.time for o in occurrences]
            i = bisect.bisect_right(dep_times, rctx.window_start)
            j = bisect.bisect_right(dep_times, rctx.window_end)
            rctx._store_occurrences(dep, occurrences[i:j])

    # -- fluent interval assembly (shared by both modes) ---------------
    def _simple_intervals(
        self,
        name: str,
        ctx: RuleContext,
        init_points: Iterable[tuple[FluentKey, int]],
        term_points: Iterable[tuple[FluentKey, int]],
    ) -> dict[FluentKey, IntervalList]:
        """Build a simple fluent's maximal intervals from its
        initiation/termination points, seeding inertia from the cache.

        The seed is the fluent's value at the *first time-point of the
        new window* (``window_start + EFFECT_DELAY``): events at or
        before the window start are discarded, so the previous
        evaluation — which knew all of them — is the authority on that
        point.  When the fluent was holding, the episode keeps its
        historical start from the cached interval (RTEC's interval
        retention), so an episode longer than the window is not
        re-reported with an artificial start at every slide.
        """
        inits: dict[FluentKey, list[int]] = defaultdict(list)
        terms: dict[FluentKey, list[int]] = defaultdict(list)
        for key, t in init_points:
            inits[key].append(t)
        for key, t in term_points:
            terms[key].append(t)

        seed_point = ctx.window_start + EFFECT_DELAY
        cache = self._fluent_cache.setdefault(name, {})
        keys = set(inits) | set(terms)
        # Keys quiescent in this window persist by inertia if their
        # cached intervals still hold at the seed point.
        for key, cached in cache.items():
            if key not in keys and cached.holds_at(seed_point):
                keys.add(key)

        out: dict[FluentKey, IntervalList] = {}
        for key in keys:
            cached = cache.get(key, IntervalList.empty())
            seed_interval = cached.interval_at(seed_point)
            intervals = make_intervals(
                inits.get(key, ()),
                terms.get(key, ()),
                holding_at_start=seed_interval is not None,
                window_start=(
                    seed_interval[0]
                    if seed_interval is not None
                    else ctx.window_start
                ),
            )
            if intervals:
                cache[key] = intervals
                out[key] = intervals
            else:
                cache.pop(key, None)
        return out

    def _valued_intervals(
        self,
        name: str,
        ctx: RuleContext,
        init_points: Iterable[tuple[FluentKey, Any, int]],
        term_points: Iterable[tuple[FluentKey, Any, int]],
    ) -> dict[FluentKey, IntervalList]:
        """Build a multi-valued fluent's intervals from its points.

        A grounding holds one value at a time: initiating ``F = V``
        implicitly terminates the previously held value.  Results (and
        the cache) are stored under ``grounding + (value,)``.  At one
        time-point, explicit terminations apply before initiations, and
        among several initiated values the largest (sorted order) wins.
        """
        inits: dict[FluentKey, list[tuple[int, Any]]] = defaultdict(list)
        terms: dict[FluentKey, set[tuple[int, Any]]] = defaultdict(set)
        for key, value, t in init_points:
            inits[key].append((t, value))
        for key, value, t in term_points:
            terms[key].add((t, value))

        seed_point = ctx.window_start + EFFECT_DELAY
        cache = self._fluent_cache.setdefault(name, {})
        base_keys = set(inits) | set(terms)
        cached_by_base: dict[FluentKey, list[tuple[FluentKey, IntervalList]]]
        cached_by_base = defaultdict(list)
        for stored_key, cached in cache.items():
            if stored_key:
                cached_by_base[stored_key[:-1]].append((stored_key, cached))
                if cached.holds_at(seed_point):
                    base_keys.add(stored_key[:-1])

        out: dict[FluentKey, IntervalList] = {}
        for key in base_keys:
            # Seed: the value (and historical episode start) held at the
            # first point of the window, from the previous evaluation.
            state: Any = None
            state_start = ctx.window_start
            for stored_key, cached in cached_by_base.get(key, ()):
                seed_interval = cached.interval_at(seed_point)
                if seed_interval is not None:
                    state = stored_key[-1]
                    state_start = seed_interval[0]
                    break

            inits_by_t: dict[int, list[Any]] = defaultdict(list)
            for t, value in inits.get(key, ()):
                inits_by_t[t].append(value)
            key_terms = terms.get(key, set())
            points = sorted(inits_by_t.keys() | {t for t, _ in key_terms})
            spans: dict[Any, list[tuple[int, Optional[int]]]] = defaultdict(
                list
            )
            for t in points:
                terminated = state is not None and (t, state) in key_terms
                initiated = sorted(inits_by_t.get(t, ()))
                new_state = state
                if terminated:
                    new_state = None
                if initiated:
                    # Termination applies first; a simultaneous
                    # initiation then takes over (largest value wins).
                    new_state = initiated[-1]
                if new_state != state:
                    if state is not None:
                        spans[state].append((state_start, t + EFFECT_DELAY))
                    state = new_state
                    state_start = t + EFFECT_DELAY
            if state is not None:
                spans[state].append((state_start, None))

            # Refresh the cache for every previously known value of this
            # grounding, then store the new spans.
            for stored_key, _ in cached_by_base.get(key, ()):
                cache.pop(stored_key, None)
            for value, intervals in spans.items():
                extended = key + (value,)
                interval_list = IntervalList(intervals)
                if interval_list:
                    cache[extended] = interval_list
                    out[extended] = interval_list
        return out

    def cached_intervals(self, name: str, key: FluentKey) -> IntervalList:
        """The last computed intervals of a fluent grounding.

        Inspection API for operators/tests between query times; for
        valued fluents pass the extended ``key + (value,)`` grounding.
        """
        return self._fluent_cache.get(name, {}).get(
            tuple(key), IntervalList.empty()
        )

    def currently_holds(self, name: str, key: FluentKey) -> bool:
        """Whether the fluent was holding at the last query time
        (``False`` before any query or for unknown groundings)."""
        if self._last_query is None:
            return False
        return self.cached_intervals(name, key).holds_at(self._last_query)

    def run(self, until: int) -> Iterable[RecognitionSnapshot]:
        """Run recognition at every query time up to ``until``.

        Yields one :class:`RecognitionSnapshot` per query time
        ``Q_i = start + i * step`` with ``Q_i <= until``.
        """
        q = self._start + self.step if self._last_query is None else (
            self._last_query + self.step
        )
        while q <= until:
            yield self.query(q)
            q += self.step


class RecognitionLog:
    """Accumulates snapshots and extracts *fresh* results.

    With overlapping windows the same CE occurrence is recognised by
    several consecutive queries; downstream consumers (the
    crowdsourcing component, the operator console) want each instance
    once.  The log deduplicates occurrences by ``(type, key, time)`` and
    fluent episodes by ``(name, key, interval start)``.
    """

    def __init__(self) -> None:
        self.snapshots: list[RecognitionSnapshot] = []
        self._seen_occurrences: set[tuple[str, FluentKey, int]] = set()
        self._seen_episodes: set[tuple[str, FluentKey, int]] = set()

    def add(self, snapshot: RecognitionSnapshot) -> "FreshResults":
        """Record a snapshot and return what is new in it."""
        self.snapshots.append(snapshot)
        fresh_occurrences: list[Occurrence] = []
        for name, occurrences in snapshot.occurrences.items():
            for occ in occurrences:
                token = (name, occ.key, occ.time)
                if token not in self._seen_occurrences:
                    self._seen_occurrences.add(token)
                    fresh_occurrences.append(occ)
        fresh_episodes: list[tuple[str, FluentKey, int, Optional[int]]] = []
        for name, by_key in snapshot.fluents.items():
            for key, intervals in by_key.items():
                for start, end in intervals:
                    token = (name, key, start)
                    if token not in self._seen_episodes:
                        self._seen_episodes.add(token)
                        fresh_episodes.append((name, key, start, end))
        return FreshResults(fresh_occurrences, fresh_episodes)

    @property
    def total_elapsed(self) -> float:
        """Total CPU seconds across all recorded snapshots."""
        return sum(s.elapsed for s in self.snapshots)

    @property
    def mean_elapsed(self) -> float:
        """Mean CPU seconds per recognition step (Figure 4's metric)."""
        if not self.snapshots:
            return 0.0
        return self.total_elapsed / len(self.snapshots)


@dataclass
class FreshResults:
    """New occurrences/episodes surfaced by one recognition step."""

    occurrences: list[Occurrence]
    episodes: list[tuple[str, FluentKey, int, Optional[int]]]

    def of_type(self, name: str) -> list[Occurrence]:
        """Fresh occurrences of CE ``name``."""
        return [o for o in self.occurrences if o.type == name]

    def episodes_of(
        self, name: str
    ) -> list[tuple[str, FluentKey, int, Optional[int]]]:
        """Fresh fluent episodes of fluent ``name``."""
        return [e for e in self.episodes if e[0] == name]
