"""The RTEC run-time event recognition engine (reproduction).

Implements the reasoning machinery described in Section 4.2 of the
paper: complex-event recognition is performed at successive *query
times* ``Q_1, Q_2, ...`` spaced ``step`` apart; at each query time only
the SDEs whose occurrence falls inside the *working memory* (window)
``(Q_i - WM, Q_i]`` — and that have *arrived* by ``Q_i`` — are taken
into consideration.  Making the window larger than the step lets the
engine account for SDEs that occurred before the previous query time
but arrived after it (the paper's Figure 2); windowing bounds the cost
of recognition by the window size rather than the full stream history.

Evaluation proceeds stratum by stratum over the definitions (see
:mod:`repro.core.rules`), and the value of each simple fluent at the
window's left edge is seeded from the previous evaluation cycle, which
carries the law of inertia across overlapping windows.
"""

from __future__ import annotations

import time as _time
from collections import defaultdict
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any, Optional

from .events import Event, FluentFact, FluentKey, Occurrence
from .intervals import EFFECT_DELAY, IntervalList, make_intervals
from .rules import (
    Definition,
    DerivedEvent,
    RuleContext,
    SimpleFluent,
    StaticFluent,
    ValuedFluent,
    stratify,
)


@dataclass
class RecognitionSnapshot:
    """The result of one recognition step at a query time.

    Attributes
    ----------
    query_time:
        The query time ``Q_i``.
    window_start:
        ``Q_i - WM``; SDEs at or before this point were discarded.
    fluents:
        Computed maximal intervals per fluent name and grounding
        (``holdsFor``).
    occurrences:
        Recognised derived-event instances per CE name (``happensAt``).
    elapsed:
        CPU seconds spent on this recognition step (process time), the
        quantity reported in the paper's Figure 4.
    n_events:
        Number of input SDEs considered in the window.
    """

    query_time: int
    window_start: int
    fluents: dict[str, dict[FluentKey, IntervalList]] = field(
        default_factory=dict
    )
    occurrences: dict[str, list[Occurrence]] = field(default_factory=dict)
    elapsed: float = 0.0
    n_events: int = 0
    #: CPU seconds spent per definition (profiling breakdown).
    per_definition: dict[str, float] = field(default_factory=dict)

    def intervals(self, name: str, key: FluentKey) -> IntervalList:
        """``holdsFor`` lookup on the snapshot."""
        return self.fluents.get(name, {}).get(key, IntervalList.empty())

    def holds_at(self, name: str, key: FluentKey, t: int) -> bool:
        """``holdsAt`` lookup on the snapshot."""
        return self.intervals(name, key).holds_at(t)

    def all_occurrences(self, name: str) -> list[Occurrence]:
        """All occurrences of derived event ``name`` in this window."""
        return self.occurrences.get(name, [])


class RTEC:
    """Windowed, stratified event-recognition engine.

    Parameters
    ----------
    definitions:
        The CE/fluent definitions to evaluate; they are stratified by
        their declared dependencies.
    window:
        Working-memory size ``WM`` in time-points.
    step:
        Distance between consecutive query times.  The paper recommends
        ``window > step`` when SDEs arrive with delays.
    params:
        Threshold/tuning parameters made available to rule bodies via
        :meth:`repro.core.rules.RuleContext.param`.
    start:
        Time-point of ``Q_0``; the first query time is ``start + step``.
    initially:
        Initial fluent state (the Event Calculus ``initially``
        predicate): ``{(fluent_name, grounding): value}`` — ``True``
        for boolean simple fluents, an arbitrary value for valued
        fluents.  Those fluents hold from before the first window until
        terminated.
    """

    def __init__(
        self,
        definitions: Sequence[Definition],
        *,
        window: int,
        step: int,
        params: Optional[Mapping[str, Any]] = None,
        start: int = 0,
        initially: Optional[Mapping[tuple[str, FluentKey], Any]] = None,
    ):
        if window <= 0 or step <= 0:
            raise ValueError("window and step must be positive")
        if step > window:
            raise ValueError(
                "step must not exceed the window: SDEs occurring between "
                "windows would never be considered"
            )
        self.window = window
        self.step = step
        self.params: dict[str, Any] = dict(params or {})
        self._definitions = stratify(definitions)
        self._start = start
        self._last_query: Optional[int] = None
        self._events: list[Event] = []
        self._facts: list[FluentFact] = []
        self._inputs_sorted = True
        #: last computed intervals per (fluent name, grounding); seeds
        #: the value at the next window's left edge (inertia).  Valued
        #: fluents are cached under ``grounding + (value,)``.
        self._fluent_cache: dict[tuple[str, FluentKey], IntervalList] = {}
        #: names of the valued-fluent definitions (they extend keys).
        self._valued_names = {
            d.name for d in self._definitions if isinstance(d, ValuedFluent)
        }
        if initially:
            # The fluent holds from before any window's left edge.
            genesis = start + step - window - 1
            for (name, key), value in initially.items():
                if name in self._valued_names:
                    cache_key = (name, tuple(key) + (value,))
                elif value is True:
                    cache_key = (name, tuple(key))
                else:
                    raise ValueError(
                        "boolean fluents can only be initially True; "
                        f"got {value!r} for {name!r}"
                    )
                self._fluent_cache[cache_key] = IntervalList.single(
                    genesis, None
                )

    # ------------------------------------------------------------------
    # Input handling
    # ------------------------------------------------------------------
    def feed(
        self,
        events: Iterable[Event] = (),
        facts: Iterable[FluentFact] = (),
    ) -> None:
        """Buffer input SDEs and input-fluent facts.

        Inputs may be fed in any order; the engine sorts by occurrence
        time before each query and honours arrival times when selecting
        the window contents.

        SDEs with a negative occurrence time are rejected: the scenario
        clock starts at 0, so a negative stamp is always a mediator bug
        (or an injected corruption) and silently accepting it would
        seed windows before time 0.
        """
        appended = False
        for ev in events:
            if ev.time < 0:
                raise ValueError(
                    f"event of type {ev.type!r} occurs at negative time "
                    f"{ev.time}; SDE timestamps must be >= 0"
                )
            self._events.append(ev)
            appended = True
        for fact in facts:
            if fact.time < 0:
                raise ValueError(
                    f"fluent fact {fact.name!r} occurs at negative time "
                    f"{fact.time}; SDE timestamps must be >= 0"
                )
            self._facts.append(fact)
            appended = True
        if appended:
            self._inputs_sorted = False

    def _ensure_sorted(self) -> None:
        if not self._inputs_sorted:
            self._events.sort(key=lambda e: e.time)
            self._facts.sort(key=lambda f: f.time)
            self._inputs_sorted = True

    def _prune(self, horizon: int) -> None:
        """Discard inputs that can never again fall inside a window."""
        self._events = [e for e in self._events if e.time > horizon]
        self._facts = [f for f in self._facts if f.time > horizon]

    # ------------------------------------------------------------------
    # Recognition
    # ------------------------------------------------------------------
    def query(self, q: int) -> RecognitionSnapshot:
        """Perform one recognition step at query time ``q``.

        Only SDEs with occurrence in ``(q - window, q]`` that have
        arrived by ``q`` are considered; everything older is discarded
        (the paper's working-memory semantics).
        """
        if self._last_query is not None and q <= self._last_query:
            raise ValueError(
                f"query times must be increasing: {q} <= {self._last_query}"
            )
        self._ensure_sorted()
        window_start = q - self.window

        events_by_type: dict[str, list[Event]] = defaultdict(list)
        n_events = 0
        for ev in self._events:
            if ev.time <= window_start:
                continue
            if ev.time > q:
                break
            if ev.arrival <= q:
                events_by_type[ev.type].append(ev)
                n_events += 1

        facts_by_key: dict[tuple[str, FluentKey], list[FluentFact]] = (
            defaultdict(list)
        )
        for fact in self._facts:
            if fact.time <= window_start:
                continue
            if fact.time > q:
                break
            if fact.arrival <= q:
                facts_by_key[(fact.name, fact.key)].append(fact)

        ctx = RuleContext(
            window_start=window_start,
            window_end=q,
            events=events_by_type,
            facts=facts_by_key,
            params=self.params,
        )

        snapshot = RecognitionSnapshot(
            query_time=q, window_start=window_start, n_events=n_events
        )
        t0 = _time.process_time()
        for definition in self._definitions:
            d0 = _time.process_time()
            if isinstance(definition, DerivedEvent):
                occurrences = sorted(
                    definition.occurrences(ctx), key=lambda o: (o.time, o.key)
                )
                ctx._store_occurrences(definition.name, occurrences)
                snapshot.occurrences[definition.name] = occurrences
            elif isinstance(definition, ValuedFluent):
                intervals = self._evaluate_valued(definition, ctx)
                ctx._store_fluent(definition.name, intervals)
                snapshot.fluents[definition.name] = intervals
            elif isinstance(definition, SimpleFluent):
                intervals = self._evaluate_simple(definition, ctx)
                ctx._store_fluent(definition.name, intervals)
                snapshot.fluents[definition.name] = intervals
            elif isinstance(definition, StaticFluent):
                intervals = dict(definition.derive(ctx))
                ctx._store_fluent(definition.name, intervals)
                snapshot.fluents[definition.name] = intervals
            else:  # pragma: no cover - guarded by the type system
                raise TypeError(f"unknown definition type: {definition!r}")
            snapshot.per_definition[definition.name] = (
                _time.process_time() - d0
            )
        snapshot.elapsed = _time.process_time() - t0

        self._last_query = q
        self._prune(window_start)
        return snapshot

    def _evaluate_simple(
        self, definition: SimpleFluent, ctx: RuleContext
    ) -> dict[FluentKey, IntervalList]:
        """Evaluate a simple fluent: collect initiation/termination
        points, seed inertia from the cache, build maximal intervals.

        The seed is the fluent's value at the *first time-point of the
        new window* (``window_start + EFFECT_DELAY``): events at or
        before the window start are discarded, so the previous
        evaluation — which knew all of them — is the authority on that
        point.  When the fluent was holding, the episode keeps its
        historical start from the cached interval (RTEC's interval
        retention), so an episode longer than the window is not
        re-reported with an artificial start at every slide.
        """
        inits: dict[FluentKey, list[int]] = defaultdict(list)
        terms: dict[FluentKey, list[int]] = defaultdict(list)
        for key, t in definition.initiations(ctx):
            inits[key].append(t)
        for key, t in definition.terminations(ctx):
            terms[key].append(t)

        seed_point = ctx.window_start + EFFECT_DELAY
        keys = set(inits) | set(terms)
        # Keys quiescent in this window persist by inertia if their
        # cached intervals still hold at the seed point.
        for (name, key), cached in self._fluent_cache.items():
            if name == definition.name and key not in keys:
                if cached.holds_at(seed_point):
                    keys.add(key)

        out: dict[FluentKey, IntervalList] = {}
        for key in keys:
            cached = self._fluent_cache.get(
                (definition.name, key), IntervalList.empty()
            )
            seed_interval = cached.interval_at(seed_point)
            intervals = make_intervals(
                inits.get(key, ()),
                terms.get(key, ()),
                holding_at_start=seed_interval is not None,
                window_start=(
                    seed_interval[0]
                    if seed_interval is not None
                    else ctx.window_start
                ),
            )
            self._fluent_cache[(definition.name, key)] = intervals
            if intervals:
                out[key] = intervals
        return out

    def _evaluate_valued(
        self, definition: ValuedFluent, ctx: RuleContext
    ) -> dict[FluentKey, IntervalList]:
        """Evaluate a multi-valued fluent.

        A grounding holds one value at a time: initiating ``F = V``
        implicitly terminates the previously held value.  Results (and
        the cache) are stored under ``grounding + (value,)``.  At one
        time-point, explicit terminations apply before initiations, and
        among several initiated values the largest (sorted order) wins.
        """
        inits: dict[FluentKey, list[tuple[int, Any]]] = defaultdict(list)
        terms: dict[FluentKey, set[tuple[int, Any]]] = defaultdict(set)
        for key, value, t in definition.initiations(ctx):
            inits[key].append((t, value))
        for key, value, t in definition.terminations(ctx):
            terms[key].add((t, value))

        seed_point = ctx.window_start + EFFECT_DELAY
        base_keys = set(inits) | set(terms)
        cached_by_base: dict[FluentKey, list[tuple[FluentKey, IntervalList]]]
        cached_by_base = defaultdict(list)
        for (name, stored_key), cached in self._fluent_cache.items():
            if name == definition.name and stored_key:
                cached_by_base[stored_key[:-1]].append((stored_key, cached))
                if cached.holds_at(seed_point):
                    base_keys.add(stored_key[:-1])

        out: dict[FluentKey, IntervalList] = {}
        for key in base_keys:
            # Seed: the value (and historical episode start) held at the
            # first point of the window, from the previous evaluation.
            state: Any = None
            state_start = ctx.window_start
            for stored_key, cached in cached_by_base.get(key, ()):
                seed_interval = cached.interval_at(seed_point)
                if seed_interval is not None:
                    state = stored_key[-1]
                    state_start = seed_interval[0]
                    break

            points = sorted(
                {t for t, _ in inits.get(key, ())}
                | {t for t, _ in terms.get(key, ())}
            )
            spans: dict[Any, list[tuple[int, Optional[int]]]] = defaultdict(
                list
            )
            for t in points:
                terminated = (
                    state is not None and (t, state) in terms.get(key, set())
                )
                initiated = sorted(
                    v for pt, v in inits.get(key, ()) if pt == t
                )
                new_state = state
                if terminated:
                    new_state = None
                if initiated:
                    # Termination applies first; a simultaneous
                    # initiation then takes over (largest value wins).
                    new_state = initiated[-1]
                if new_state != state:
                    if state is not None:
                        spans[state].append((state_start, t + EFFECT_DELAY))
                    state = new_state
                    state_start = t + EFFECT_DELAY
            if state is not None:
                spans[state].append((state_start, None))

            # Refresh the cache for every previously known value of this
            # grounding, then store the new spans.
            for stored_key, _ in cached_by_base.get(key, ()):
                self._fluent_cache[(definition.name, stored_key)] = (
                    IntervalList.empty()
                )
            for value, intervals in spans.items():
                extended = key + (value,)
                interval_list = IntervalList(intervals)
                self._fluent_cache[(definition.name, extended)] = (
                    interval_list
                )
                if interval_list:
                    out[extended] = interval_list
        return out

    def cached_intervals(self, name: str, key: FluentKey) -> IntervalList:
        """The last computed intervals of a fluent grounding.

        Inspection API for operators/tests between query times; for
        valued fluents pass the extended ``key + (value,)`` grounding.
        """
        return self._fluent_cache.get((name, tuple(key)), IntervalList.empty())

    def currently_holds(self, name: str, key: FluentKey) -> bool:
        """Whether the fluent was holding at the last query time
        (``False`` before any query or for unknown groundings)."""
        if self._last_query is None:
            return False
        return self.cached_intervals(name, key).holds_at(self._last_query)

    def run(self, until: int) -> Iterable[RecognitionSnapshot]:
        """Run recognition at every query time up to ``until``.

        Yields one :class:`RecognitionSnapshot` per query time
        ``Q_i = start + i * step`` with ``Q_i <= until``.
        """
        q = self._start + self.step if self._last_query is None else (
            self._last_query + self.step
        )
        while q <= until:
            yield self.query(q)
            q += self.step


class RecognitionLog:
    """Accumulates snapshots and extracts *fresh* results.

    With overlapping windows the same CE occurrence is recognised by
    several consecutive queries; downstream consumers (the
    crowdsourcing component, the operator console) want each instance
    once.  The log deduplicates occurrences by ``(type, key, time)`` and
    fluent episodes by ``(name, key, interval start)``.
    """

    def __init__(self) -> None:
        self.snapshots: list[RecognitionSnapshot] = []
        self._seen_occurrences: set[tuple[str, FluentKey, int]] = set()
        self._seen_episodes: set[tuple[str, FluentKey, int]] = set()

    def add(self, snapshot: RecognitionSnapshot) -> "FreshResults":
        """Record a snapshot and return what is new in it."""
        self.snapshots.append(snapshot)
        fresh_occurrences: list[Occurrence] = []
        for name, occurrences in snapshot.occurrences.items():
            for occ in occurrences:
                token = (name, occ.key, occ.time)
                if token not in self._seen_occurrences:
                    self._seen_occurrences.add(token)
                    fresh_occurrences.append(occ)
        fresh_episodes: list[tuple[str, FluentKey, int, Optional[int]]] = []
        for name, by_key in snapshot.fluents.items():
            for key, intervals in by_key.items():
                for start, end in intervals:
                    token = (name, key, start)
                    if token not in self._seen_episodes:
                        self._seen_episodes.add(token)
                        fresh_episodes.append((name, key, start, end))
        return FreshResults(fresh_occurrences, fresh_episodes)

    @property
    def total_elapsed(self) -> float:
        """Total CPU seconds across all recorded snapshots."""
        return sum(s.elapsed for s in self.snapshots)

    @property
    def mean_elapsed(self) -> float:
        """Mean CPU seconds per recognition step (Figure 4's metric)."""
        if not self.snapshots:
            return 0.0
        return self.total_elapsed / len(self.snapshots)


@dataclass
class FreshResults:
    """New occurrences/episodes surfaced by one recognition step."""

    occurrences: list[Occurrence]
    episodes: list[tuple[str, FluentKey, int, Optional[int]]]

    def of_type(self, name: str) -> list[Occurrence]:
        """Fresh occurrences of CE ``name``."""
        return [o for o in self.occurrences if o.type == name]

    def episodes_of(
        self, name: str
    ) -> list[tuple[str, FluentKey, int, Optional[int]]]:
        """Fresh fluent episodes of fluent ``name``."""
        return [e for e in self.episodes if e[0] == name]
