"""Columnar (struct-of-arrays) SDE batches and working-memory mirrors.

The per-event-object hot path pays a Python-level attribute access and
dict lookup per SDE per rule body per query.  This module provides the
columnar representation behind the compiled fast path:

* :class:`SDEColumns` — the ingestion batch type: one block of
  ``numpy`` time/arrival arrays per event type (:class:`EventColumns`)
  or fact name (:class:`FactColumns`).  The scheduler hands the engine
  one batch per feed pass instead of a list of objects; pending rows
  stay columnar until admission (:class:`PendingEventRow` /
  :class:`PendingFactRow` materialise lazily).
* :class:`ColumnSpec` — a compiled rule's declaration of which payload
  fields it reads as numeric columns and which identify the grounding
  token.
* :class:`ColumnMirror` — a struct-of-arrays mirror maintained
  alongside a working-memory :class:`~.incremental.TimedColumn`:
  occurrence times, declared numeric fields and factorised grounding
  tokens as growable arrays, plus per-token *integer row-index*
  sub-indexes.  Appends extend the arrays in place; evictions advance
  a start offset; an out-of-order insert (a delayed SDE) triggers a
  full rebuild — correctness never depends on the incremental path.
* views (:class:`MirrorView` / :class:`ListColumnView`) — the uniform
  read interface compiled evaluators consume; the list-backed build is
  the fallback for contexts that have no mirror (legacy mode, the
  token-restricted contexts of dirty-grounding re-derivation).

Everything here is representation only: compiled evaluators
(:mod:`repro.core.compiled`) read views, and every emitted point is
built from Python ints and the original payload objects, so the
recognition output is bit-identical to the interpreter's.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from .events import Event, FluentFact, FluentKey


@dataclass(frozen=True)
class ColumnSpec:
    """Which payload fields a compiled rule reads from a view.

    ``numeric`` fields are exposed as ``float64`` arrays for vectorised
    comparisons; ``token`` fields form the per-row grounding tuple
    (e.g. ``(intersection, approach, sensor)``) used for per-token
    grouping.  Specs are value objects — hashable, mergeable by field
    union — and must name fields present in every payload of the type.
    """

    numeric: tuple[str, ...] = ()
    token: tuple[str, ...] = ()

    def merge(self, other: "ColumnSpec") -> Optional["ColumnSpec"]:
        """The union spec, or ``None`` when token layouts conflict."""
        if self.token != other.token:
            return None
        if other.numeric == self.numeric:
            return self
        merged = tuple(dict.fromkeys(self.numeric + other.numeric))
        return ColumnSpec(numeric=merged, token=self.token)


# ----------------------------------------------------------------------
# Ingestion batches
# ----------------------------------------------------------------------
class EventColumns:
    """One event type's batch as a struct of arrays.

    Two construction paths share the type:

    * :meth:`from_events` wraps existing :class:`Event` objects —
      times/arrivals become arrays, payloads stay an object column so
      materialisation returns payload-identical events (zero-copy);
    * :meth:`from_arrays` is the fully columnar path for array-native
      producers (benchmarks, future mediators): no ``Event`` object
      exists until a row is admitted into the working memory.
    """

    __slots__ = (
        "type", "times", "arrivals", "payloads", "numeric", "extra",
        "_times_list", "_arrivals_list",
    )

    def __init__(
        self,
        etype: str,
        times: np.ndarray,
        arrivals: np.ndarray,
        *,
        payloads: Optional[Sequence[Mapping[str, Any]]] = None,
        numeric: Optional[Mapping[str, np.ndarray]] = None,
        extra: Optional[Mapping[str, Sequence[Any]]] = None,
    ):
        self.type = etype
        self.times = times
        self.arrivals = arrivals
        self.payloads = list(payloads) if payloads is not None else None
        self.numeric = dict(numeric or {})
        self.extra = {k: list(v) for k, v in (extra or {}).items()}
        self._times_list: Optional[list[int]] = None
        self._arrivals_list: Optional[list[int]] = None

    def __len__(self) -> int:
        return len(self.times)

    @classmethod
    def from_events(cls, etype: str, events: Sequence[Event]) -> "EventColumns":
        n = len(events)
        return cls(
            etype,
            np.fromiter((ev.time for ev in events), np.int64, count=n),
            np.fromiter((ev.arrival for ev in events), np.int64, count=n),
            payloads=[ev.payload for ev in events],
        )

    @classmethod
    def from_arrays(
        cls,
        etype: str,
        times,
        *,
        arrivals=None,
        numeric: Optional[Mapping[str, Any]] = None,
        extra: Optional[Mapping[str, Sequence[Any]]] = None,
    ) -> "EventColumns":
        """Build from raw arrays (anything :func:`numpy.asarray` takes).

        ``arrivals`` defaults to the occurrence times; ``numeric``
        columns become ``float64``, ``extra`` columns stay Python
        objects (strings, ids).  All columns must share one length.
        """
        times = np.asarray(times, dtype=np.int64)
        arr = (
            times
            if arrivals is None
            else np.asarray(arrivals, dtype=np.int64)
        )
        numeric_cols = {
            name: np.asarray(col, dtype=np.float64)
            for name, col in (numeric or {}).items()
        }
        n = len(times)
        if len(arr) != n or any(
            len(col) != n for col in numeric_cols.values()
        ) or any(len(col) != n for col in (extra or {}).values()):
            raise ValueError(
                f"column length mismatch for event type {etype!r}"
            )
        return cls(etype, times, arr, numeric=numeric_cols, extra=extra)

    # -- lazy Python-int caches (tuple sort keys, payload times) -------
    @property
    def times_list(self) -> list[int]:
        if self._times_list is None:
            self._times_list = self.times.tolist()
        return self._times_list

    @property
    def arrivals_list(self) -> list[int]:
        if self._arrivals_list is None:
            self._arrivals_list = self.arrivals.tolist()
        return self._arrivals_list

    def event(self, i: int) -> Event:
        """Materialise row ``i`` as an :class:`Event` (payload-identical
        for :meth:`from_events` batches)."""
        if self.payloads is not None:
            payload = self.payloads[i]
        else:
            payload = {
                name: float(col[i]) for name, col in self.numeric.items()
            }
            for name, col in self.extra.items():
                payload[name] = col[i]
        return Event(
            self.type, self.times_list[i], payload, self.arrivals_list[i]
        )


class FactColumns:
    """One fact name's batch: times/arrivals as arrays, keys and values
    as object columns (fact values are arbitrary — ``gps`` carries a
    mapping)."""

    __slots__ = (
        "name", "keys", "values", "times", "arrivals",
        "_times_list", "_arrivals_list",
    )

    def __init__(
        self,
        name: str,
        keys: Sequence[FluentKey],
        values: Sequence[Any],
        times: np.ndarray,
        arrivals: np.ndarray,
    ):
        self.name = name
        self.keys = list(keys)
        self.values = list(values)
        self.times = times
        self.arrivals = arrivals
        self._times_list: Optional[list[int]] = None
        self._arrivals_list: Optional[list[int]] = None

    def __len__(self) -> int:
        return len(self.times)

    @classmethod
    def from_facts(
        cls, name: str, facts: Sequence[FluentFact]
    ) -> "FactColumns":
        n = len(facts)
        return cls(
            name,
            [f.key for f in facts],
            [f.value for f in facts],
            np.fromiter((f.time for f in facts), np.int64, count=n),
            np.fromiter((f.arrival for f in facts), np.int64, count=n),
        )

    @property
    def times_list(self) -> list[int]:
        if self._times_list is None:
            self._times_list = self.times.tolist()
        return self._times_list

    @property
    def arrivals_list(self) -> list[int]:
        if self._arrivals_list is None:
            self._arrivals_list = self.arrivals.tolist()
        return self._arrivals_list

    def fact(self, i: int) -> FluentFact:
        """Materialise row ``i`` as a :class:`FluentFact` (key and
        value are the original object references)."""
        return FluentFact(
            self.name,
            self.keys[i],
            self.values[i],
            self.times_list[i],
            self.arrivals_list[i],
        )


class PendingRow:
    """A not-yet-materialised batch row in the pending buffer.

    The working memory's pending entries are ``(arrival, seq, is_fact,
    item)`` tuples; for batch feeds the item is one of these handles,
    resolved into the real record only at admission (or when the
    buffer is pickled).  ``(arrival, seq)`` is unique, so the tuple
    sort never compares the handle itself.
    """

    __slots__ = ("block", "i")

    def __init__(self, block, i: int):
        self.block = block
        self.i = i


class PendingEventRow(PendingRow):
    """A pending :class:`EventColumns` row."""

    def resolve(self) -> Event:
        """Materialise the row as an :class:`Event`."""
        return self.block.event(self.i)


class PendingFactRow(PendingRow):
    """A pending :class:`FactColumns` row."""

    def resolve(self) -> FluentFact:
        """Materialise the row as a :class:`FluentFact`."""
        return self.block.fact(self.i)


class SDEColumns:
    """A heterogeneous SDE batch: event blocks plus fact blocks.

    The canonical row order — event blocks in insertion order, each
    top to bottom, then fact blocks likewise — is shared by the
    buffering and the stream-refill paths, so a batch-fed engine
    assigns the same sequence numbers whether the stream is fed live
    or regenerated after a crash.
    """

    __slots__ = ("events", "facts")

    def __init__(
        self,
        events: Sequence[EventColumns] = (),
        facts: Sequence[FactColumns] = (),
    ):
        self.events = tuple(events)
        self.facts = tuple(facts)

    @classmethod
    def from_sdes(
        cls,
        events: Iterable[Event] = (),
        facts: Iterable[FluentFact] = (),
    ) -> "SDEColumns":
        """Group an object stream into per-type / per-name blocks.

        Grouping preserves each block's relative order; the engine
        sorts admitted rows by ``(time, seq)`` per column anyway, and
        cross-type order never affects recognition output (the parity
        tests pin this).
        """
        by_type: dict[str, list[Event]] = {}
        for ev in events:
            by_type.setdefault(ev.type, []).append(ev)
        by_name: dict[str, list[FluentFact]] = {}
        for fact in facts:
            by_name.setdefault(fact.name, []).append(fact)
        return cls(
            [
                EventColumns.from_events(etype, evs)
                for etype, evs in by_type.items()
            ],
            [
                FactColumns.from_facts(name, fs)
                for name, fs in by_name.items()
            ],
        )

    @property
    def n_events(self) -> int:
        return sum(len(block) for block in self.events)

    @property
    def n_facts(self) -> int:
        return sum(len(block) for block in self.facts)

    @property
    def n(self) -> int:
        return self.n_events + self.n_facts

    def max_arrival(self) -> Optional[int]:
        """Latest arrival time in the batch (``None`` when empty)."""
        candidates = [
            int(block.arrivals.max())
            for block in (*self.events, *self.facts)
            if len(block)
        ]
        return max(candidates) if candidates else None

    def validate(self) -> None:
        """Reject negative occurrence times, as :meth:`RTEC.feed` does
        per object — vectorised over each block."""
        for block in self.events:
            if len(block) and int(block.times.min()) < 0:
                raise ValueError(
                    f"event of type {block.type!r} occurs at negative "
                    "time; SDE timestamps must be >= 0"
                )
        for block in self.facts:
            if len(block) and int(block.times.min()) < 0:
                raise ValueError(
                    f"fluent fact {block.name!r} occurs at negative "
                    "time; SDE timestamps must be >= 0"
                )

    def rows(self) -> Iterator[tuple[int, bool, PendingRow]]:
        """Canonical row enumeration: ``(arrival, is_fact, handle)``."""
        for block in self.events:
            arrivals = block.arrivals_list
            for i in range(len(arrivals)):
                yield arrivals[i], False, PendingEventRow(block, i)
        for block in self.facts:
            arrivals = block.arrivals_list
            for i in range(len(arrivals)):
                yield arrivals[i], True, PendingFactRow(block, i)

    def iter_events(self) -> Iterator[Event]:
        """Materialise every event row (legacy-engine feed path)."""
        for block in self.events:
            for i in range(len(block)):
                yield block.event(i)

    def iter_facts(self) -> Iterator[FluentFact]:
        """Materialise every fact row (legacy-engine feed path)."""
        for block in self.facts:
            for i in range(len(block)):
                yield block.fact(i)


# ----------------------------------------------------------------------
# Working-memory mirrors
# ----------------------------------------------------------------------
def _grow(array: np.ndarray, n: int, needed: int) -> np.ndarray:
    """An array with capacity for ``n + needed`` rows (amortised)."""
    cap = len(array)
    if n + needed <= cap:
        return array
    new_cap = max(cap * 2, n + needed, 64)
    grown = np.empty(new_cap, dtype=array.dtype)
    grown[:n] = array[:n]
    return grown


class ColumnMirror:
    """Struct-of-arrays mirror of one working-memory column.

    Mirrors the column's ``(time, seq)``-sorted items as ``int64``
    times, declared ``float64`` numeric fields and factorised grounding
    tokens, plus per-token integer row-index sub-indexes.  Kept
    consistent through three operations, matched to the column's
    mutation counters:

    * *append* (in-order arrival, the common case): encode the new
      suffix in place;
    * *evict* (window slide): advance the dead-prefix offset — O(1),
      with periodic compaction;
    * *out-of-order insert* (a delayed SDE landed mid-column): full
      rebuild.  Rare by construction, and the rebuild costs what a
      single legacy query already paid per window.

    Mirrors are process-local caches: excluded from pickling and
    rebuilt lazily after a restore.
    """

    __slots__ = (
        "spec", "_column", "_times", "_numeric", "_token_tuples",
        "_groups", "_n", "_dead", "_seen_evictions", "_seen_mutations",
        "version", "_views", "_token_rows_cache",
    )

    def __init__(self, column, spec: ColumnSpec):
        self.spec = spec
        self._column = column
        self._times = np.empty(0, dtype=np.int64)
        self._numeric: dict[str, np.ndarray] = {
            name: np.empty(0, dtype=np.float64) for name in spec.numeric
        }
        #: storage-row -> grounding tuple (object column).
        self._token_tuples: list[tuple] = []
        #: grounding tuple -> ascending storage-row indexes.
        self._groups: dict[tuple, list[int]] = {}
        self._n = 0  # rows encoded (live + dead prefix)
        self._dead = 0  # evicted rows still occupying the prefix
        self._seen_evictions = 0
        self._seen_mutations = 0
        self.version = 0
        self._views: dict[tuple[int, int], MirrorView] = {}
        self._token_rows_cache: Optional[dict[tuple, np.ndarray]] = None

    # -- synchronisation ----------------------------------------------
    def sync(self) -> None:
        """Bring the mirror up to date with its column."""
        column = self._column
        if column.mutations != self._seen_mutations:
            self._rebuild()
            return
        changed = False
        if column.evictions != self._seen_evictions:
            self._dead += column.evictions - self._seen_evictions
            self._seen_evictions = column.evictions
            if self._dead > self._n:
                # Evictions overshot the encoded rows: the column lost
                # rows that were appended *and* evicted between syncs,
                # so the offset arithmetic no longer identifies the
                # live prefix — re-encode from scratch.
                self._rebuild()
                return
            changed = True
            if self._dead > 256 and self._dead * 2 > self._n:
                self._compact()
        new = len(column.items) - (self._n - self._dead)
        if new > 0:
            self._encode(column.items[self._n - self._dead:], column.times)
            changed = True
        if changed:
            self.version += 1
            self._views.clear()
            self._token_rows_cache = None

    def _rebuild(self) -> None:
        column = self._column
        self._times = np.empty(0, dtype=np.int64)
        self._numeric = {
            name: np.empty(0, dtype=np.float64) for name in self.spec.numeric
        }
        self._token_tuples = []
        self._groups = {}
        self._n = 0
        self._dead = 0
        self._seen_mutations = column.mutations
        self._seen_evictions = column.evictions
        self._encode(column.items, column.times)
        self.version += 1
        self._views.clear()
        self._token_rows_cache = None

    def _encode(self, items, times: list[int]) -> None:
        """Append ``items`` (the column's newest suffix) to the arrays."""
        k = len(items)
        if not k:
            return
        n = self._n
        self._times = _grow(self._times, n, k)
        self._times[n:n + k] = times[len(times) - k:]
        for name in self.spec.numeric:
            col = _grow(self._numeric[name], n, k)
            payload_values = [item.payload[name] for item in items]
            col[n:n + k] = payload_values
            self._numeric[name] = col
        token_fields = self.spec.token
        tuples = self._token_tuples
        groups = self._groups
        for offset, item in enumerate(items):
            payload = item.payload
            token = tuple(payload[f] for f in token_fields)
            tuples.append(token)
            rows = groups.get(token)
            if rows is None:
                rows = groups[token] = []
            rows.append(n + offset)
        self._n = n + k

    def _compact(self) -> None:
        """Shift the live suffix down over the dead prefix."""
        dead, n = self._dead, self._n
        live = n - dead
        self._times[:live] = self._times[dead:n].copy()
        for name, col in self._numeric.items():
            col[:live] = col[dead:n].copy()
        del self._token_tuples[:dead]
        compacted: dict[tuple, list[int]] = {}
        for token, rows in self._groups.items():
            kept = [r - dead for r in rows if r >= dead]
            if kept:
                compacted[token] = kept
        self._groups = compacted
        self._n = live
        self._dead = 0

    # -- reads ---------------------------------------------------------
    def live_view(self) -> "MirrorView":
        """The whole live window as a view."""
        return self._view(self._dead, self._n)

    def view_bounds(self, i: int, j: int) -> "MirrorView":
        """A view over the column's item range ``[i, j)``."""
        return self._view(self._dead + i, self._dead + j)

    def _view(self, a: int, b: int) -> "MirrorView":
        view = self._views.get((a, b))
        if view is None:
            view = self._views[(a, b)] = MirrorView(self, a, b)
        return view

    def item(self, storage_row: int):
        """The underlying record at an absolute storage row."""
        return self._column.items[storage_row - self._dead]

    def live_token_rows(self) -> dict[tuple, np.ndarray]:
        """Per-token live row indexes, relative to the live window."""
        cached = self._token_rows_cache
        if cached is None:
            dead = self._dead
            cached = {}
            for token, rows in self._groups.items():
                arr = np.asarray(rows, dtype=np.int64)
                k = int(np.searchsorted(arr, dead)) if dead else 0
                if k < len(arr):
                    cached[token] = arr[k:] - dead
            self._token_rows_cache = cached
        return cached


class MirrorView:
    """A slice of a :class:`ColumnMirror` in the uniform view shape."""

    __slots__ = ("_mirror", "_a", "_b", "n", "times", "_times_list",
                 "_tokens", "_token_rows")

    def __init__(self, mirror: ColumnMirror, a: int, b: int):
        self._mirror = mirror
        self._a = a
        self._b = b
        self.n = b - a
        self.times = mirror._times[a:b]
        self._times_list: Optional[list[int]] = None
        self._tokens: Optional[list[tuple]] = None
        self._token_rows: Optional[dict[tuple, np.ndarray]] = None

    def covers(self, spec: ColumnSpec) -> bool:
        """Whether this view exposes everything ``spec`` requires
        (same grounding-token layout, numeric fields a superset)."""
        mine = self._mirror.spec
        return mine.token == spec.token and all(
            name in mine.numeric for name in spec.numeric
        )

    @property
    def times_list(self) -> list[int]:
        if self._times_list is None:
            self._times_list = self.times.tolist()
        return self._times_list

    def col(self, name: str) -> np.ndarray:
        """The ``float64`` array of a declared numeric payload field."""
        return self._mirror._numeric[name][self._a:self._b]

    @property
    def tokens(self) -> list[tuple]:
        if self._tokens is None:
            self._tokens = self._mirror._token_tuples[self._a:self._b]
        return self._tokens

    def token_rows(self) -> dict[tuple, np.ndarray]:
        """Ascending row indexes (relative to this view) per token."""
        if self._token_rows is None:
            mirror = self._mirror
            if self._a == mirror._dead and self._b == mirror._n:
                self._token_rows = mirror.live_token_rows()
            else:
                a, b = self._a, self._b
                out: dict[tuple, np.ndarray] = {}
                for token, rows in mirror._groups.items():
                    arr = np.asarray(rows, dtype=np.int64)
                    i = int(np.searchsorted(arr, a))
                    j = int(np.searchsorted(arr, b))
                    if i < j:
                        out[token] = arr[i:j] - a
                self._token_rows = out
        return self._token_rows

    def item(self, i: int):
        """The underlying record object at view row ``i``."""
        return self._mirror.item(self._a + i)


class ListColumnView:
    """The fallback view, built from an event list per requested spec.

    Used where no mirror applies: legacy engines, token-restricted
    contexts, and column specs a working memory was not declared for.
    Construction is O(n) — still far cheaper than interpreting, and
    contexts memoise it per ``(event type, spec)``.
    """

    __slots__ = ("_events", "spec", "n", "times", "_numeric",
                 "_times_list", "_tokens", "_token_rows")

    def __init__(self, events: Sequence[Event], spec: ColumnSpec):
        self._events = events
        self.spec = spec
        n = self.n = len(events)
        self.times = np.fromiter(
            (ev.time for ev in events), np.int64, count=n
        )
        self._numeric: dict[str, np.ndarray] = {}
        self._times_list: Optional[list[int]] = None
        self._tokens: Optional[list[tuple]] = None
        self._token_rows: Optional[dict[tuple, np.ndarray]] = None

    def covers(self, spec: ColumnSpec) -> bool:
        """Whether this view satisfies ``spec`` (see
        :meth:`MirrorView.covers`)."""
        mine = self.spec
        return mine.token == spec.token and all(
            name in mine.numeric for name in spec.numeric
        )

    @property
    def times_list(self) -> list[int]:
        if self._times_list is None:
            self._times_list = self.times.tolist()
        return self._times_list

    def col(self, name: str) -> np.ndarray:
        """The ``float64`` array of a payload field, built on demand."""
        col = self._numeric.get(name)
        if col is None:
            col = self._numeric[name] = np.fromiter(
                (ev.payload[name] for ev in self._events),
                np.float64,
                count=self.n,
            )
        return col

    @property
    def tokens(self) -> list[tuple]:
        if self._tokens is None:
            fields = self.spec.token
            self._tokens = [
                tuple(ev.payload[f] for f in fields) for ev in self._events
            ]
        return self._tokens

    def token_rows(self) -> dict[tuple, np.ndarray]:
        """Ascending row indexes per grounding token (see
        :meth:`MirrorView.token_rows`)."""
        if self._token_rows is None:
            grouped: dict[tuple, list[int]] = {}
            for i, token in enumerate(self.tokens):
                rows = grouped.get(token)
                if rows is None:
                    rows = grouped[token] = []
                rows.append(i)
            self._token_rows = {
                token: np.asarray(rows, dtype=np.int64)
                for token, rows in grouped.items()
            }
        return self._token_rows

    def item(self, i: int) -> Event:
        """The underlying event object at view row ``i``."""
        return self._events[i]


class ColumnSource:
    """A deferred view over one working-memory column, handed to rule
    contexts by the engine.  ``view()`` syncs the mirror on first use
    within the query, so definitions that fall back to the interpreter
    never pay for encoding."""

    __slots__ = ("column", "spec", "lo", "hi")

    def __init__(
        self,
        column,
        spec: ColumnSpec,
        lo: Optional[int] = None,
        hi: Optional[int] = None,
    ):
        self.column = column
        self.spec = spec
        self.lo = lo
        self.hi = hi

    def view(self) -> MirrorView:
        """Sync the mirror and return the bounded (or live) view."""
        mirror = self.column.mirror_for(self.spec)
        mirror.sync()
        if self.lo is None:
            return mirror.live_view()
        i, j = self.column.bounds(self.lo, self.hi)
        return mirror.view_bounds(i, j)
