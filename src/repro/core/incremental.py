"""Cross-window caching machinery for the incremental RTEC engine.

Consecutive query times ``Q_{i-1}`` and ``Q_i`` share the overlap
``(Q_i - window, Q_{i-1}]`` of their working memories, yet the legacy
engine re-derives every definition from scratch at each query.  This
module provides the building blocks the engine uses to re-derive only
the newest ``step`` of data:

* :class:`IncrementalSpec` — a definition's declaration of *how far* a
  derived point can see (lookback/lookahead over the raw inputs it
  reads), which makes cached points reusable and late arrivals
  invalidatable;
* :class:`WorkingMemory` — a persistent, time-indexed SDE store that
  admits inputs by arrival time and evicts by the window's left edge
  instead of rebuilding per query;
* range utilities (:func:`merge_ranges`, :class:`RangeSet`) and output
  diffing (:func:`changed_point_ranges`,
  :func:`changed_interval_ranges`) used to propagate invalidation
  through the definition strata.

The contract behind :class:`IncrementalSpec`: a definition's output
*point* at time ``t`` (an occurrence, or an initiation/termination
point) must be a function of

* input SDEs/facts of the declared types with occurrence time in
  ``(t - lookback, t + lookahead]``, and
* upstream definition outputs in the same band (upstream changes are
  propagated by the engine via the published change ranges),

and nothing else.  A definition whose points depend on unbounded
history (e.g. "k consecutive readings" with no time bound) declares
``lookback=None`` and is recomputed in full each query.  Definitions
with no spec at all (the default) also take the full-recompute path,
so user-supplied rules are always evaluated exactly as by the legacy
engine.
"""

from __future__ import annotations

import bisect
import contextlib
import contextvars
import sys
from collections import Counter
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

import numpy as np

from .columns import ColumnMirror, ColumnSpec, PendingRow, SDEColumns
from .events import Event, FluentFact, FluentKey, from_row, to_row
from .intervals import IntervalList

_MAX_SEQ = sys.maxsize

#: When set, :meth:`WorkingMemory.__getstate__` omits the pending
#: entries of the *initial input stream* (everything buffered before
#: :meth:`WorkingMemory.mark_stream_boundary`) — they are regenerable,
#: and re-serialising the whole future stream at every checkpoint is
#: what would make checkpointing cost O(run length) per write.  The
#: flag is scoped to the checkpoint writer; any other pickling of a
#: working memory (e.g. shipping engines to process-pool workers)
#: keeps the full buffer.
_STREAMLESS = contextvars.ContextVar("wm_streamless_pickle", default=False)


@contextlib.contextmanager
def streamless_checkpoint():
    """Within this context, pickling a :class:`WorkingMemory` drops the
    regenerable initial-stream part of its pending buffer (see
    :data:`_STREAMLESS`).  Used by the checkpoint coordinator; restore
    goes through :meth:`WorkingMemory.refill_stream`."""
    token = _STREAMLESS.set(True)
    try:
        yield
    finally:
        _STREAMLESS.reset(token)

#: Inclusive integer time range ``[lo, hi]``.
TimeRange = tuple[int, int]


# ----------------------------------------------------------------------
# Incremental contracts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IncrementalSpec:
    """How a definition's output points depend on its raw inputs.

    Attributes
    ----------
    lookback:
        A point at ``t`` depends on inputs with occurrence time
        ``> t - lookback``; ``None`` marks the definition uncacheable
        (points may depend on unbounded history inside the window).
    lookahead:
        A point at ``t`` depends on inputs with occurrence time
        ``<= t + lookahead``.
    event_types / fact_names:
        The raw SDE event types and input-fluent names the rule body
        reads.  Late arrivals of other types never invalidate this
        definition's cache.
    event_partition / fact_partition / point_partition:
        Optional *grounding partition*: maps from an input event / an
        input fact / an output point to a hashable token such that a
        point is a function only of inputs carrying the same token
        (e.g. per-bus rules).  When every declared input type has a
        partition function, a late arrival invalidates only its own
        token's points — the engine re-derives just the affected
        groundings instead of a whole time band.
        ``point_partition`` receives an :class:`~.events.Occurrence`
        for derived events, a ``(key, t)`` pair for simple fluents and
        a ``(key, value, t)`` triple for valued fluents.
    """

    lookback: Optional[int]
    lookahead: int = 0
    event_types: frozenset[str] = frozenset()
    fact_names: frozenset[str] = frozenset()
    event_partition: Optional[
        Mapping[str, Callable[[Event], Hashable]]
    ] = None
    fact_partition: Optional[
        Mapping[str, Callable[[FluentFact], Hashable]]
    ] = None
    point_partition: Optional[Callable[[Any], Hashable]] = None

    @property
    def partitioned(self) -> bool:
        """Whether invalidation can target individual groundings."""
        if self.point_partition is None:
            return False
        events = self.event_partition or {}
        facts = self.fact_partition or {}
        return all(t in events for t in self.event_types) and all(
            n in facts for n in self.fact_names
        )


# ----------------------------------------------------------------------
# Persistent working memory
# ----------------------------------------------------------------------
class TimedColumn:
    """One time-sorted column of SDEs (one event type or fact key).

    Items are kept sorted by ``(occurrence time, feed sequence)``; the
    sequence number reproduces the legacy engine's stable-sort
    tie-break, so window slices are element-for-element identical to
    the lists the legacy engine builds per query.
    """

    __slots__ = ("order", "times", "items", "evictions", "mutations",
                 "mirror")

    def __init__(self) -> None:
        self.order: list[tuple[int, int]] = []
        self.times: list[int] = []
        self.items: list[Any] = []
        #: cumulative count of evicted items — lets a columnar mirror
        #: advance its dead-prefix offset without diffing the list.
        self.evictions = 0
        #: count of out-of-order inserts — a change invalidates any
        #: mirror's incremental state (rows moved mid-column).
        self.mutations = 0
        #: lazily attached :class:`~repro.core.columns.ColumnMirror`.
        self.mirror: Optional[ColumnMirror] = None

    def insert(self, time: int, seq: int, item: Any) -> None:
        """Insert an item at its ``(time, seq)`` position."""
        order = self.order
        key = (time, seq)
        if not order or key >= order[-1]:
            # In-order arrival (the overwhelmingly common case).
            order.append(key)
            self.times.append(time)
            self.items.append(item)
            return
        i = bisect.bisect_right(order, key)
        order.insert(i, key)
        self.times.insert(i, time)
        self.items.insert(i, item)
        self.mutations += 1

    def evict(self, horizon: int) -> None:
        """Drop every item with occurrence time ``<= horizon``."""
        cut = bisect.bisect_right(self.order, (horizon, _MAX_SEQ))
        if cut:
            del self.order[:cut]
            del self.times[:cut]
            del self.items[:cut]
            self.evictions += cut

    def mirror_for(self, spec: ColumnSpec) -> ColumnMirror:
        """The columnar mirror of this column under ``spec``, created
        on first use (callers :meth:`~ColumnMirror.sync` it)."""
        mirror = self.mirror
        if mirror is None or mirror.spec != spec:
            mirror = self.mirror = ColumnMirror(self, spec)
        return mirror

    # Checkpoint fast path: serialise items as compact rows (see
    # ``events.to_row``) so the pickler stays on its C path; ``times``
    # is derivable from ``order`` and not stored.  Mirrors and their
    # sync counters are process-local caches — dropped on pickle and
    # rebuilt lazily after restore.
    def __getstate__(self):
        return (self.order, [to_row(item) for item in self.items])

    def __setstate__(self, state) -> None:
        order, rows = state
        self.order = order
        self.times = [time for time, _ in order]
        self.items = [from_row(row) for row in rows]
        self.evictions = 0
        self.mutations = 0
        self.mirror = None

    def bounds(self, lo: int, hi: int) -> tuple[int, int]:
        """Index bounds of the items with time in ``(lo, hi]``."""
        i = bisect.bisect_right(self.order, (lo, _MAX_SEQ))
        j = bisect.bisect_right(self.order, (hi, _MAX_SEQ))
        return i, j


class WorkingMemory:
    """Persistent SDE store indexed by occurrence time.

    Inputs are buffered with their arrival time; :meth:`admit` moves
    everything that has arrived by the query time into the per-type /
    per-fact-key columns, and :meth:`evict` cuts the prefix that fell
    out of the window.  Between queries the columns *are* the window
    contents — nothing is rebuilt.
    """

    def __init__(self) -> None:
        self.events: dict[str, TimedColumn] = {}
        self.facts: dict[tuple[str, FluentKey], TimedColumn] = {}
        #: per-token sub-indexes maintained for registered grounding
        #: partitions: ``(event type, id(fn)) -> token -> column`` and
        #: ``(fact name, id(fn)) -> token -> fact key -> column``.
        self.event_groups: dict[
            tuple[str, int], dict[Hashable, TimedColumn]
        ] = {}
        self.fact_groups: dict[
            tuple[str, int], dict[Hashable, dict[FluentKey, TimedColumn]]
        ] = {}
        self._event_partitions: dict[
            str, list[tuple[int, Callable[[Event], Hashable]]]
        ] = {}
        self._fact_partitions: dict[
            str, list[tuple[int, Callable[[FluentFact], Hashable]]]
        ] = {}
        #: (arrival, seq, is_fact, item) awaiting admission; sorted
        #: lazily — inputs mostly arrive in order, so a dirty-flagged
        #: list beats a heap's per-item push/pop.  For batch feeds the
        #: item may be a lazy :class:`~repro.core.columns.PendingRow`,
        #: materialised only at admission; ``(arrival, seq)`` is unique,
        #: so sorting never compares the item itself.
        self._pending: list[tuple[int, int, bool, Any]] = []
        self._pending_sorted = True
        self._seq = 0
        #: declared columnar layout per event type (merged across the
        #: compiled rules reading the type); ``None`` marks a type
        #: whose declarations conflicted — mirrors stay disabled for it.
        self._column_specs: dict[str, Optional[ColumnSpec]] = {}
        #: Sequence number of the last item of the *initial input
        #: stream* (see :meth:`mark_stream_boundary`); 0 means no
        #: boundary was declared and streamless pickling is disabled.
        self._stream_seq = 0
        self._needs_refill = False

    # -- durability ----------------------------------------------------
    # The per-token sub-indexes are keyed by ``id(partition_fn)``, which
    # is only meaningful within one process.  Checkpoints therefore
    # serialise the partition *functions* (module-level callables that
    # pickle by reference) and rebuild the indexes on restore by
    # re-registering them against the restored columns — the same
    # backfill path used when a partition is first declared.
    def __getstate__(self) -> dict[str, Any]:
        if _STREAMLESS.get() and self._stream_seq:
            # Checkpoint fast path: the initial stream (seq <= the
            # boundary) is regenerable and omitted; only later feeds
            # (crowd feedback SDEs) travel with the snapshot.  Restore
            # must go through :meth:`refill_stream`.
            pending = (
                "tail",
                [
                    (arrival, seq, is_fact, _pending_to_row(item))
                    for arrival, seq, is_fact, item in self._pending
                    if seq > self._stream_seq
                ],
            )
        else:
            pending = (
                "full",
                [
                    (arrival, seq, is_fact, _pending_to_row(item))
                    for arrival, seq, is_fact, item in self._pending
                ],
            )
        return {
            "column_specs": self._column_specs,
            "events": self.events,
            "facts": self.facts,
            "event_partitions": {
                etype: [fn for _, fn in fns]
                for etype, fns in self._event_partitions.items()
            },
            "fact_partitions": {
                name: [fn for _, fn in fns]
                for name, fns in self._fact_partitions.items()
            },
            "pending": pending,
            "pending_sorted": self._pending_sorted,
            "seq": self._seq,
            "stream_seq": self._stream_seq,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__()
        self.events = state["events"]
        self.facts = state["facts"]
        kind, rows = state["pending"]
        self._pending = [
            (arrival, seq, is_fact, from_row(row))
            for arrival, seq, is_fact, row in rows
        ]
        self._pending_sorted = state["pending_sorted"]
        self._seq = state["seq"]
        self._stream_seq = state["stream_seq"]
        self._column_specs = state.get("column_specs", {})
        #: A ``"tail"`` snapshot is incomplete until
        #: :meth:`refill_stream` merges the regenerated stream back in.
        self._needs_refill = kind == "tail"
        for etype, fns in state["event_partitions"].items():
            for fn in fns:
                self.register_event_partition(etype, fn)
        for name, fns in state["fact_partitions"].items():
            for fn in fns:
                self.register_fact_partition(name, fn)

    def buffer_event(self, event: Event) -> None:
        """Queue an input SDE until its arrival time is reached."""
        self._seq += 1
        entry = (event.arrival, self._seq, False, event)
        pending = self._pending
        if pending and entry < pending[-1]:
            self._pending_sorted = False
        pending.append(entry)

    def buffer_fact(self, fact: FluentFact) -> None:
        """Queue an input-fluent fact until its arrival time is reached."""
        self._seq += 1
        entry = (fact.arrival, self._seq, True, fact)
        pending = self._pending
        if pending and entry < pending[-1]:
            self._pending_sorted = False
        pending.append(entry)

    def buffer_columns(self, batch: SDEColumns) -> None:
        """Queue a columnar SDE batch without materialising its rows.

        Rows enter the pending buffer as lazy handles in the batch's
        canonical order (event blocks, then fact blocks) and are
        resolved into :class:`Event`/:class:`FluentFact` objects only
        when :meth:`admit` moves them into the window — rows a window
        never sees (or that get evicted on admission) are never built.
        Sequence numbers are assigned exactly as the object path would
        for the same order, so a batch-fed stream refills identically
        (see :meth:`refill_columns`).
        """
        pending = self._pending
        seq = self._seq
        was_sorted = self._pending_sorted
        last = pending[-1][:2] if pending else None
        for arrival, is_fact, row in batch.rows():
            seq += 1
            if was_sorted and last is not None and (arrival, seq) < last:
                was_sorted = False
            last = (arrival, seq)
            pending.append((arrival, seq, is_fact, row))
        self._seq = seq
        self._pending_sorted = was_sorted

    # -- columnar mirror declarations ----------------------------------
    def declare_columns(self, etype: str, spec: ColumnSpec) -> None:
        """Declare the columnar layout a compiled rule reads from an
        event type.  Declarations from several rules merge by numeric
        field union; conflicting grounding-token layouts disable the
        mirror for the type (readers then build list-backed views)."""
        if etype in self._column_specs:
            current = self._column_specs[etype]
            self._column_specs[etype] = (
                None if current is None else current.merge(spec)
            )
        else:
            self._column_specs[etype] = spec

    def column_spec_for(self, etype: str) -> Optional[ColumnSpec]:
        """The merged declared spec of an event type (or ``None``)."""
        return self._column_specs.get(etype)

    # -- streamless checkpointing --------------------------------------
    def mark_stream_boundary(self) -> None:
        """Declare everything buffered so far to be the *initial input
        stream*: a deterministic, regenerable sequence the pipeline fed
        in one pass before the first query.

        A checkpoint written inside :func:`streamless_checkpoint` then
        omits the not-yet-admitted part of that stream instead of
        re-serialising the whole future at every interval; restore
        regenerates it and calls :meth:`refill_stream`.  Items buffered
        *after* the boundary (crowd feedback SDEs produced mid-run) are
        not regenerable and always travel with the snapshot.
        """
        self._stream_seq = self._seq

    def refill_stream(
        self,
        events: Iterable[Event],
        facts: Iterable[FluentFact],
        admitted_through: int,
    ) -> None:
        """Rebuild the pending entries a streamless checkpoint dropped.

        ``events`` and ``facts`` must be the regenerated initial stream
        in the exact order it was originally fed (events first, then
        facts — the order :meth:`repro.core.rtec.RTECEngine.feed`
        buffers them in), so the re-assigned sequence numbers match the
        original feed.  Entries that were already admitted by the last
        query at ``admitted_through`` are dropped — :meth:`admit`
        consumed them before the checkpoint was taken — and the
        survivors are merged with the retained post-boundary tail.
        """
        entries: list[tuple[int, int, bool, Any]] = []
        seq = 0
        for event in events:
            seq += 1
            entries.append((event.arrival, seq, False, event))
        for fact in facts:
            seq += 1
            entries.append((fact.arrival, seq, True, fact))
        self._merge_refilled(entries, seq, admitted_through)

    def refill_columns(
        self, batch: SDEColumns, admitted_through: int
    ) -> None:
        """Columnar counterpart of :meth:`refill_stream`: the
        regenerated initial stream arrives as one batch, whose
        canonical row order matches the original
        :meth:`buffer_columns` feed, so the re-assigned sequence
        numbers line up with the checkpointed boundary."""
        entries: list[tuple[int, int, bool, Any]] = []
        seq = 0
        for arrival, is_fact, row in batch.rows():
            seq += 1
            entries.append((arrival, seq, is_fact, row))
        self._merge_refilled(entries, seq, admitted_through)

    def _merge_refilled(
        self,
        entries: list[tuple[int, int, bool, Any]],
        seq: int,
        admitted_through: int,
    ) -> None:
        if seq != self._stream_seq:
            raise RuntimeError(
                f"regenerated stream has {seq} items, the checkpointed "
                f"boundary says {self._stream_seq} — the scenario did "
                f"not regenerate deterministically"
            )
        entries.sort()
        del entries[: bisect.bisect_left(entries, (admitted_through + 1,))]
        entries.extend(self._pending)
        entries.sort()
        self._pending = entries
        self._pending_sorted = True
        self._needs_refill = False

    # -- grounding partitions ------------------------------------------
    def register_event_partition(
        self, etype: str, fn: Callable[[Event], Hashable]
    ) -> None:
        """Maintain a per-token sub-index of an event type under ``fn``.

        Registered partitions let the engine assemble the restricted
        context of a dirty grounding from pre-grouped columns instead
        of scanning (and re-tokenising) the whole window every query.
        Functions are deduplicated by identity — the same module-level
        partition shared by several definitions is indexed once.
        """
        fns = self._event_partitions.setdefault(etype, [])
        if any(fid == id(fn) for fid, _ in fns):
            return
        fns.append((id(fn), fn))
        groups: dict[Hashable, TimedColumn] = {}
        self.event_groups[(etype, id(fn))] = groups
        column = self.events.get(etype)
        if column is not None:  # backfill anything already admitted
            for (time, seq), item in zip(column.order, column.items):
                self._group_insert(groups, fn(item), time, seq, item)

    def register_fact_partition(
        self, name: str, fn: Callable[[FluentFact], Hashable]
    ) -> None:
        """Maintain per-token, per-key sub-indexes of a fact name."""
        fns = self._fact_partitions.setdefault(name, [])
        if any(fid == id(fn) for fid, _ in fns):
            return
        fns.append((id(fn), fn))
        groups: dict[Hashable, dict[FluentKey, TimedColumn]] = {}
        self.fact_groups[(name, id(fn))] = groups
        for (fname, fkey), column in self.facts.items():
            if fname != name:
                continue
            for (time, seq), item in zip(column.order, column.items):
                by_key = groups.setdefault(fn(item), {})
                self._group_insert(by_key, fkey, time, seq, item)

    @staticmethod
    def _group_insert(
        groups: dict, token: Hashable, time: int, seq: int, item: Any
    ) -> None:
        column = groups.get(token)
        if column is None:
            column = groups[token] = TimedColumn()
        column.insert(time, seq, item)

    def admit(
        self, q: int, horizon: int
    ) -> tuple[list[Event], list[FluentFact]]:
        """Index everything that has arrived by ``q``.

        Items whose occurrence time is already at or before ``horizon``
        (the new window's left edge) are discarded outright.  Returns
        the newly admitted events and facts — the inputs this query
        sees for the first time.
        """
        new_events: list[Event] = []
        new_facts: list[FluentFact] = []
        pending = self._pending
        if not self._pending_sorted:
            pending.sort()
            self._pending_sorted = True
        cut = bisect.bisect_left(pending, (q + 1,))
        if not cut:
            return new_events, new_facts
        batch = pending[:cut]
        del pending[:cut]
        for _, seq, is_fact, item in batch:
            if isinstance(item, PendingRow):
                item = item.resolve()
            if item.time <= horizon:
                continue
            if is_fact:
                column = self.facts.get((item.name, item.key))
                if column is None:
                    column = self.facts[(item.name, item.key)] = TimedColumn()
                column.insert(item.time, seq, item)
                fns = self._fact_partitions.get(item.name)
                if fns:
                    for fid, fn in fns:
                        by_key = self.fact_groups[(item.name, fid)].setdefault(
                            fn(item), {}
                        )
                        self._group_insert(
                            by_key, item.key, item.time, seq, item
                        )
                new_facts.append(item)
            else:
                column = self.events.get(item.type)
                if column is None:
                    column = self.events[item.type] = TimedColumn()
                column.insert(item.time, seq, item)
                fns = self._event_partitions.get(item.type)
                if fns:
                    for fid, fn in fns:
                        self._group_insert(
                            self.event_groups[(item.type, fid)],
                            fn(item),
                            item.time,
                            seq,
                            item,
                        )
                new_events.append(item)
        return new_events, new_facts

    def evict(self, horizon: int) -> None:
        """Evict items that fell out of the window ``(horizon, Q]``."""
        for column in self.events.values():
            column.evict(horizon)
        for column in self.facts.values():
            column.evict(horizon)
        for groups in self.event_groups.values():
            stale = []
            for token, column in groups.items():
                column.evict(horizon)
                if not column.items:
                    stale.append(token)
            for token in stale:
                del groups[token]
        for groups in self.fact_groups.values():
            stale_tokens = []
            for token, by_key in groups.items():
                stale_keys = []
                for fkey, column in by_key.items():
                    column.evict(horizon)
                    if not column.items:
                        stale_keys.append(fkey)
                for fkey in stale_keys:
                    del by_key[fkey]
                if not by_key:
                    stale_tokens.append(token)
            for token in stale_tokens:
                del groups[token]

    def n_events(self) -> int:
        """Number of events currently inside the window."""
        return sum(len(column.items) for column in self.events.values())


def _pending_to_row(item: Any):
    """Checkpoint row of a pending entry's item; lazy batch rows are
    materialised first (checkpoints must be self-contained)."""
    if isinstance(item, PendingRow):
        item = item.resolve()
    return to_row(item)


# ----------------------------------------------------------------------
# Range utilities
# ----------------------------------------------------------------------
def merge_ranges(
    ranges: Iterable[TimeRange], lo: int, hi: int
) -> list[TimeRange]:
    """Clip inclusive ranges to ``[lo, hi]`` and merge overlapping or
    adjacent ones into a sorted, disjoint list."""
    clipped = sorted(
        (max(a, lo), min(b, hi)) for a, b in ranges if a <= hi and b >= lo
    )
    out: list[TimeRange] = []
    for a, b in clipped:
        if out and a <= out[-1][1] + 1:
            if b > out[-1][1]:
                out[-1] = (out[-1][0], b)
        else:
            out.append((a, b))
    return out


class RangeSet:
    """Membership tests over a merged, sorted list of inclusive ranges."""

    __slots__ = ("_starts", "_ends")

    def __init__(self, ranges: Sequence[TimeRange]):
        self._starts = [a for a, _ in ranges]
        self._ends = [b for _, b in ranges]

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __contains__(self, t: int) -> bool:
        i = bisect.bisect_right(self._starts, t) - 1
        return i >= 0 and t <= self._ends[i]

    def mask(self, times: np.ndarray) -> np.ndarray:
        """Vectorised membership: a boolean array marking which of
        ``times`` fall inside any range (``__contains__``, batched)."""
        if not self._starts:
            return np.zeros(len(times), dtype=bool)
        idx = (
            np.searchsorted(
                np.asarray(self._starts, dtype=np.int64), times, "right"
            )
            - 1
        )
        ends = np.asarray(self._ends, dtype=np.int64)
        return (idx >= 0) & (times <= ends[np.maximum(idx, 0)])


# ----------------------------------------------------------------------
# Output diffing (invalidation propagation between strata)
# ----------------------------------------------------------------------
def freeze(value: Any) -> Hashable:
    """A hashable stand-in for a payload value (mappings and lists are
    converted recursively; payload mapping proxies are not hashable)."""
    if isinstance(value, Mapping):
        return tuple(sorted((k, freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    return value


def changed_point_ranges(
    old_pairs: Iterable[tuple[Hashable, int]],
    new_pairs: Iterable[tuple[Hashable, int]],
    lo: int,
    hi: int,
) -> list[TimeRange]:
    """Time ranges where two point multisets differ, clipped to
    ``[lo, hi]``.

    Each input is an iterable of ``(token, time)`` pairs where the
    token identifies the point up to multiset equality (and embeds its
    time, so every token maps to a single time-point).
    """
    counts: Counter = Counter()
    time_of: dict[Hashable, int] = {}
    for token, t in old_pairs:
        counts[token] += 1
        time_of[token] = t
    for token, t in new_pairs:
        counts[token] -= 1
        time_of[token] = t
    changed = {time_of[token] for token, c in counts.items() if c}
    return merge_ranges(((t, t) for t in changed), lo, hi)


def changed_interval_ranges(
    old: Mapping[FluentKey, IntervalList],
    new: Mapping[FluentKey, IntervalList],
    lo: int,
    hi: int,
) -> list[TimeRange]:
    """Time ranges where two fluent outputs differ point-wise, clipped
    to ``[lo, hi]``.

    For each grounding the symmetric difference of the old and new
    interval lists — ``(old OR new) AND NOT (old AND new)`` — is exactly
    the set of time-points where ``holdsAt`` changed.
    """
    ranges: list[TimeRange] = []
    empty = IntervalList.empty()
    for key in old.keys() | new.keys():
        a = old.get(key, empty)
        b = new.get(key, empty)
        if a == b:
            continue
        union = a.union(b)
        common = a.intersect(b)
        for start, end in union.relative_complement([common]):
            last = hi if end is None else end - 1
            ranges.append((start, last))
    return merge_ranges(ranges, lo, hi)


# ----------------------------------------------------------------------
# Per-definition cache state
# ----------------------------------------------------------------------
@dataclass
class DefinitionState:
    """Cross-query cache state the engine keeps per definition."""

    #: cached output points per stream (``{"occ": [...]}`` for derived
    #: events, ``{"init": [...], "term": [...]}`` for fluents), covering
    #: the whole previous window.
    streams: Optional[dict[str, list[Any]]] = None
    #: lazily built ``int64`` time arrays per cached stream, for the
    #: vectorised middle-reuse filter; reset whenever ``streams`` is
    #: reassigned (the engine sets it back to ``None``).
    stream_times: Optional[dict[str, np.ndarray]] = None
    #: previous query's final interval output (fluent kinds only).
    prev_out: Optional[dict[FluentKey, IntervalList]] = None
    #: where this definition's output changed relative to the previous
    #: query, clipped to the overlap — read by downstream definitions
    #: to invalidate their own caches.
    changed: list[TimeRange] = field(default_factory=list)
