"""Event and fluent primitives for the RTEC reproduction.

The paper's input is a stream of *simple derived events* (SDEs):
time-stamped records produced by mediators from raw sensor readings
(Section 2).  Two kinds of facts feed RTEC:

* ``happensAt(E, T)`` facts — instantaneous event occurrences, e.g.
  ``move(Bus, Line, Operator, Delay)`` or
  ``traffic(Int, A, S, D, F)``;
* input-fluent facts — time-stamped values of fluents provided by the
  data source itself, e.g.
  ``gps(Bus, Lon, Lat, Direction, Congestion) = true`` which the bus
  dataset pairs with each ``move`` event (formalisation (1)).

Both are modelled here.  Every record carries two timestamps: the
*occurrence* time used by the event-calculus semantics, and the
*arrival* time used by the windowing machinery (the paper's Figure 2
discusses SDEs that occur before a query time but arrive after it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping, Optional

FluentKey = tuple[Any, ...]


def _frozen(payload: Mapping[str, Any]) -> Mapping[str, Any]:
    """Wrap a payload mapping read-only (records are value objects)."""
    if isinstance(payload, MappingProxyType):
        return payload
    return MappingProxyType(dict(payload))


@dataclass(frozen=True)
class Event:
    """An instantaneous event occurrence — ``happensAt(E, T)``.

    Parameters
    ----------
    type:
        The event-type name (the predicate symbol), e.g. ``"move"``.
    time:
        Occurrence time-point (integer seconds from scenario start).
    payload:
        The event attributes (predicate arguments) as a mapping.
    arrival:
        The time the record became visible to the engine.  Defaults to
        the occurrence time; mediators and networks can delay it.
    """

    type: str
    time: int
    payload: Mapping[str, Any] = field(default_factory=dict)
    arrival: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "payload", _frozen(self.payload))
        if self.arrival is None:
            object.__setattr__(self, "arrival", self.time)
        elif self.arrival < self.time:
            raise ValueError(
                f"event of type {self.type!r} arrives at {self.arrival} "
                f"before it occurs at {self.time}"
            )

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Payload attribute access with a default."""
        return self.payload.get(key, default)

    def __reduce__(self):
        # MappingProxyType is not picklable; rebuild through the
        # constructor from a plain dict (re-frozen in __post_init__).
        return (Event, (self.type, self.time, dict(self.payload), self.arrival))

    def replace_payload(self, **changes: Any) -> "Event":
        """Return a copy of the event with updated payload attributes."""
        merged = dict(self.payload)
        merged.update(changes)
        return Event(self.type, self.time, merged, self.arrival)


@dataclass(frozen=True)
class FluentFact:
    """A time-stamped input-fluent value — ``holdsAt(F=V, T)`` given as
    data (formalisation (1) in the paper: the ``gps`` fluent).

    Parameters
    ----------
    name:
        Fluent name, e.g. ``"gps"``.
    key:
        The grounding of the fluent's index arguments, e.g.
        ``(bus_id,)``.
    value:
        The fluent's value at ``time`` — for ``gps`` a mapping with
        ``lon``, ``lat``, ``direction`` and ``congestion`` entries.
    time:
        Occurrence time-point.
    arrival:
        Arrival time (defaults to occurrence).
    """

    name: str
    key: FluentKey
    value: Any
    time: int
    arrival: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.key, tuple):
            object.__setattr__(self, "key", tuple(self.key))
        if isinstance(self.value, dict):
            object.__setattr__(self, "value", _frozen(self.value))
        if self.arrival is None:
            object.__setattr__(self, "arrival", self.time)
        elif self.arrival < self.time:
            raise ValueError(
                f"fluent fact {self.name!r} arrives at {self.arrival} "
                f"before it occurs at {self.time}"
            )

    def __reduce__(self):
        value = self.value
        if isinstance(value, MappingProxyType):
            value = dict(value)
        return (FluentFact, (self.name, self.key, value, self.time, self.arrival))


@dataclass(frozen=True)
class Occurrence:
    """A recognised instance of a derived (complex) event.

    Produced by :class:`repro.core.rules.DerivedEvent` definitions, e.g.
    ``delayIncrease(Bus, Lon', Lat', Lon, Lat)``.
    """

    type: str
    key: FluentKey
    time: int
    payload: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.key, tuple):
            object.__setattr__(self, "key", tuple(self.key))
        object.__setattr__(self, "payload", _frozen(self.payload))

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Payload attribute access with a default."""
        return self.payload.get(key, default)

    def __reduce__(self):
        return (Occurrence, (self.type, self.key, self.time, dict(self.payload)))

    def as_event(self) -> Event:
        """View this occurrence as an input :class:`Event` (CEs can be
        re-injected as SDEs of a higher-level engine)."""
        payload = dict(self.payload)
        payload.setdefault("key", self.key)
        return Event(self.type, self.time, payload)


# ----------------------------------------------------------------------
# Compact row serialisation (checkpoint fast path)
# ----------------------------------------------------------------------
# Pickling SDEs one object at a time pays a Python-level ``__reduce__``
# call per record; a working memory holds tens of thousands, and the
# checkpoint coordinator serialises them every interval.  Converting to
# plain tuples first keeps the pickler on its C fast path — about 3x
# faster and smaller on the wire.  Restore reconstructs through the
# constructors, so the payload-freezing invariants are re-established.

def to_row(item: Any) -> tuple:
    """The compact tuple form of an :class:`Event`/:class:`FluentFact`;
    anything else is passed through to be pickled as itself."""
    kind = type(item)
    if kind is Event:
        return ("e", item.type, item.time, dict(item.payload), item.arrival)
    if kind is FluentFact:
        value = item.value
        if isinstance(value, MappingProxyType):
            value = dict(value)
        return ("f", item.name, item.key, value, item.time, item.arrival)
    return ("o", item)


def from_row(row: tuple) -> Any:
    """Rebuild the record serialised by :func:`to_row`."""
    tag = row[0]
    if tag == "e":
        return Event(row[1], row[2], row[3], row[4])
    if tag == "f":
        return FluentFact(row[1], row[2], row[3], row[4], row[5])
    return row[1]
