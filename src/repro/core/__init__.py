"""RTEC-style complex event processing (the paper's Section 4).

Public surface:

* :mod:`repro.core.intervals` — maximal-interval algebra (Table 1's
  ``union_all`` / ``intersect_all`` / ``relative_complement_all``).
* :mod:`repro.core.events` — SDE / fluent-fact / CE-occurrence records.
* :mod:`repro.core.rules` — definition DSL (`SimpleFluent`,
  `StaticFluent`, `DerivedEvent`) and the rule evaluation context.
* :mod:`repro.core.rtec` — the windowed recognition engine.
* :mod:`repro.core.columns` — columnar (struct-of-arrays) SDE batches
  and working-memory mirrors for the compiled hot path.
* :mod:`repro.core.compiled` — vectorised evaluators for the hot rule
  bodies.
* :mod:`repro.core.traffic` — the Dublin traffic CE definitions.
"""

from .columns import (
    ColumnSpec,
    EventColumns,
    FactColumns,
    SDEColumns,
)
from .compiled import CompiledRule
from .events import Event, FluentFact, Occurrence
from .intervals import (
    IntervalList,
    count_threshold,
    intersect_all,
    make_intervals,
    relative_complement_all,
    union_all,
)
from .rtec import RTEC, FreshResults, RecognitionLog, RecognitionSnapshot
from .rules import (
    Definition,
    DerivedEvent,
    FunctionalEvent,
    FunctionalSimpleFluent,
    FunctionalStaticFluent,
    FunctionalValuedFluent,
    RuleContext,
    SimpleFluent,
    StaticFluent,
    ValuedFluent,
    stratify,
)

__all__ = [
    "Event",
    "FluentFact",
    "Occurrence",
    "ColumnSpec",
    "EventColumns",
    "FactColumns",
    "SDEColumns",
    "CompiledRule",
    "IntervalList",
    "union_all",
    "intersect_all",
    "relative_complement_all",
    "count_threshold",
    "make_intervals",
    "RTEC",
    "RecognitionSnapshot",
    "RecognitionLog",
    "FreshResults",
    "Definition",
    "DerivedEvent",
    "SimpleFluent",
    "StaticFluent",
    "FunctionalEvent",
    "FunctionalSimpleFluent",
    "FunctionalStaticFluent",
    "FunctionalValuedFluent",
    "ValuedFluent",
    "RuleContext",
    "stratify",
]
