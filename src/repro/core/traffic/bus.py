"""CE definitions over the mobile (bus) stream.

The bus dataset provides, per formalisation (1) of the paper::

    happensAt(move(Bus, Line, Operator, Delay), T)
    holdsAt(gps(Bus, Lon, Lat, Direction, Congestion) = true, T)

In this reproduction a ``move`` :class:`~repro.core.events.Event`
carries the payload keys ``bus``, ``line``, ``operator`` and ``delay``,
and the paired ``gps`` input-fluent fact (same ``Bus`` key, same
time-point) carries ``lon``, ``lat``, ``direction`` and ``congestion``
(0 or 1).

Definitions implemented here:

* :class:`DelayIncrease` — the instantaneous CE of Section 4.1: a sharp
  increase in the delay of a bus between two SDEs emitted close in
  time, indicating a congestion in-the-make.
* :class:`BusCongestion` — rule-set (3): bus-reported congestion near
  locations of interest; and its self-adaptive variant rule-set (3′)
  that discards reports from buses currently considered ``noisy``.
* :class:`CongestionInTheMake` — the reinforcement hinted at in
  Section 4.1: ``delayIncrease`` CEs from several distinct buses in the
  same area within a short span.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

import math

from ..compiled import CompiledDelayIncrease
from ..events import Event, FluentFact, FluentKey, Occurrence
from ..geo import distance_m
from ..incremental import IncrementalSpec
from ..rules import DerivedEvent, RuleContext, SimpleFluent
from .topology import ScatsTopology

#: Default thresholds for the bus-side CE definitions.
DEFAULT_BUS_PARAMS: dict[str, float | int] = {
    # delayIncrease: Delay - Delay' > d within 0 < T - T' < t.
    "bus.delay_delta": 60.0,
    "bus.delay_window": 120,
    # congestion-in-the-make: m distinct buses within w seconds and
    # r metres of each other.
    "citm.min_buses": 2,
    "citm.window": 300,
    "citm.radius_m": 300.0,
}


def _move_bus(ev: Event) -> object:
    """Grounding token of a ``move`` SDE: the reporting bus."""
    return ev["bus"]


def _gps_bus(fact: FluentFact) -> object:
    """Grounding token of a ``gps`` fact: the bus in its key."""
    return fact.key[0]


def _occ_bus(occ: Occurrence) -> object:
    """Grounding token of a bus-keyed point: ``key[0]``."""
    return occ.key[0]


def _moves_by_bus(ctx: RuleContext) -> dict[object, list[Event]]:
    by_bus: dict[object, list[Event]] = defaultdict(list)
    for ev in ctx.events("move"):
        by_bus[ev["bus"]].append(ev)
    return by_bus


def _gps_at(ctx: RuleContext, bus: object, t: int):
    """The ``gps`` fluent value paired with a ``move`` SDE at ``t``."""
    return ctx.fact_at("gps", (bus,), t)


def close_intersections(
    ctx: RuleContext, topology: ScatsTopology, lon: float, lat: float
) -> list[str]:
    """Memoised ``close`` join between a position and the topology.

    Several definitions (rule-sets (3)/(3′) and the ``disagree`` /
    ``agree`` comparisons) evaluate the same ``close`` predicate for the
    same gps positions within one window; sharing the lookup keeps the
    self-adaptive overhead minimal (the property Figure 4 reports).
    """
    cache = ctx.memo.setdefault(("close", id(topology)), {})
    key = (lon, lat)
    if key not in cache:
        cache[key] = topology.intersections_close_to(lon, lat)
    return cache[key]


class DelayIncrease(DerivedEvent):
    """``delayIncrease(Bus, Lon', Lat', Lon, Lat)`` (Section 4.1).

    Recognised when the delay value of a bus increases by more than
    ``bus.delay_delta`` seconds across two SDEs emitted less than
    ``bus.delay_window`` seconds apart.
    """

    def __init__(self, name: str = "delayIncrease"):
        super().__init__(name, depends_on=())

    def occurrences(self, ctx: RuleContext) -> Iterable[Occurrence]:
        d = ctx.param("bus.delay_delta")
        t_max = ctx.param("bus.delay_window")
        for bus, moves in _moves_by_bus(ctx).items():
            for prev, cur in zip(moves, moves[1:]):
                if not 0 < cur.time - prev.time < t_max:
                    continue
                if cur["delay"] - prev["delay"] <= d:
                    continue
                gps_prev = _gps_at(ctx, bus, prev.time)
                gps_cur = _gps_at(ctx, bus, cur.time)
                if gps_prev is None or gps_cur is None:
                    continue
                yield Occurrence(
                    self.name,
                    (bus,),
                    cur.time,
                    {
                        "bus": bus,
                        "from_lon": gps_prev["lon"],
                        "from_lat": gps_prev["lat"],
                        "lon": gps_cur["lon"],
                        "lat": gps_cur["lat"],
                        "delay_increase": cur["delay"] - prev["delay"],
                    },
                )

    def incremental_spec(self, params) -> IncrementalSpec:
        """An occurrence at ``T`` pairs a move at ``T`` with the bus's
        previous move (strictly less than ``bus.delay_window`` earlier)
        and the ``gps`` facts at both times — all inputs of one bus
        within the lookback band."""
        lookback = int(
            math.ceil(
                params.get(
                    "bus.delay_window", DEFAULT_BUS_PARAMS["bus.delay_window"]
                )
            )
        )
        return IncrementalSpec(
            lookback=lookback,
            event_types=frozenset({"move"}),
            fact_names=frozenset({"gps"}),
            event_partition={"move": _move_bus},
            fact_partition={"gps": _gps_bus},
            point_partition=_occ_bus,
        )

    def compiled(self, params) -> CompiledDelayIncrease:
        """Per-bus consecutive-pair deltas over the delay column; only
        the hits pay for the Python-side ``gps`` join."""
        return CompiledDelayIncrease(
            self.name,
            params.get(
                "bus.delay_delta", DEFAULT_BUS_PARAMS["bus.delay_delta"]
            ),
            params.get(
                "bus.delay_window", DEFAULT_BUS_PARAMS["bus.delay_window"]
            ),
        )


class BusCongestion(SimpleFluent):
    """Bus-reported congestion near locations of interest.

    Rule-set (3): ``busCongestion(Lon, Lat) = true`` is initiated when a
    bus moves close to the location and reports congestion (the ``gps``
    fluent's congestion bit is 1), and terminated when a (possibly
    different) bus moves close and reports no congestion.

    With ``adaptive=True`` this becomes rule-set (3′): reports from a
    bus for which ``noisy(Bus) = true`` currently holds are discarded —
    whether close to a SCATS intersection or not — which is how the
    self-adaptive recognition minimises the use of unreliable sources.

    The locations of interest are the SCATS intersections of the
    topology; groundings are keyed ``(intersection_id,)`` and the
    topology maps ids back to ``(Lon, Lat)``.
    """

    def __init__(
        self,
        topology: ScatsTopology,
        *,
        adaptive: bool = False,
        name: str = "busCongestion",
        noisy_fluent: str = "noisy",
    ):
        deps = (noisy_fluent,) if adaptive else ()
        super().__init__(name, depends_on=deps)
        self._topology = topology
        self.adaptive = adaptive
        self._noisy_fluent = noisy_fluent

    def _reports(
        self, ctx: RuleContext, congestion: int
    ) -> Iterable[tuple[FluentKey, int]]:
        for ev in ctx.events("move"):
            bus = ev["bus"]
            gps = _gps_at(ctx, bus, ev.time)
            if gps is None or gps["congestion"] != congestion:
                continue
            if self.adaptive and ctx.holds_at(
                self._noisy_fluent, (bus,), ev.time
            ):
                continue
            for int_id in close_intersections(
                ctx, self._topology, gps["lon"], gps["lat"]
            ):
                yield (int_id,), ev.time

    def initiations(self, ctx: RuleContext) -> Iterable[tuple[FluentKey, int]]:
        return self._reports(ctx, congestion=1)

    def terminations(self, ctx: RuleContext) -> Iterable[tuple[FluentKey, int]]:
        return self._reports(ctx, congestion=0)

    def incremental_spec(self, params) -> IncrementalSpec:
        """Point-wise over single ``move``/``gps`` reports (plus, in
        the adaptive variant, the ``noisy`` fluent at the same instant,
        propagated through the dependency's change ranges).  Not
        grounding-partitioned: one bus report initiates/terminates
        every intersection it is close to."""
        return IncrementalSpec(
            lookback=1,
            event_types=frozenset({"move"}),
            fact_names=frozenset({"gps"}),
        )


class CongestionInTheMake(DerivedEvent):
    """Reinforced congestion-in-the-make indication (Section 4.1).

    The paper notes that a ``delayIncrease`` CE "may indicate a
    congestion in-the-make ... reinforced by instances of this CE type
    concerning other buses operating in the same area".  We formalise
    the reinforcement: an occurrence is emitted at time ``T`` when
    ``delayIncrease`` CEs from at least ``citm.min_buses`` distinct
    buses fall within ``citm.radius_m`` metres and ``citm.window``
    seconds of one another; the occurrence is anchored at the newest
    contributing CE.
    """

    def __init__(
        self,
        name: str = "congestionInTheMake",
        *,
        delay_event: str = "delayIncrease",
    ):
        super().__init__(name, depends_on=(delay_event,))
        self._delay_event = delay_event

    def occurrences(self, ctx: RuleContext) -> Iterable[Occurrence]:
        min_buses = int(ctx.param("citm.min_buses"))
        window = ctx.param("citm.window")
        radius = ctx.param("citm.radius_m")
        increases = list(ctx.derived(self._delay_event))
        emitted: set[tuple[int, object]] = set()
        for anchor in increases:
            nearby_buses = set()
            for other in increases:
                if not 0 <= anchor.time - other.time <= window:
                    continue
                if (
                    distance_m(
                        anchor["lon"], anchor["lat"], other["lon"], other["lat"]
                    )
                    <= radius
                ):
                    nearby_buses.add(other["bus"])
            if len(nearby_buses) >= min_buses:
                token = (anchor.time, anchor["bus"])
                if token not in emitted:
                    emitted.add(token)
                    yield Occurrence(
                        self.name,
                        (anchor["bus"],),
                        anchor.time,
                        {
                            "lon": anchor["lon"],
                            "lat": anchor["lat"],
                            "buses": tuple(sorted(map(str, nearby_buses))),
                            "support": len(nearby_buses),
                        },
                    )

    def incremental_spec(self, params) -> IncrementalSpec:
        """An anchor at ``T`` is supported by ``delayIncrease`` CEs in
        ``[T - citm.window, T]`` (a dependency, propagated as change
        ranges); the +1 turns the closed bound into the spec's
        half-open lookback."""
        lookback = int(
            math.ceil(
                params.get("citm.window", DEFAULT_BUS_PARAMS["citm.window"])
            )
        )
        return IncrementalSpec(lookback=lookback + 1)
