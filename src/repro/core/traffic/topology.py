"""Static knowledge about the monitored city used by the CE rules.

The traffic CE definitions need to know which SCATS sensors belong to
which intersection, where each intersection is located, and how to
resolve the paper's ``close(LonB, LatB, LonInt, LatInt)`` predicate
between a bus position and an intersection.  That static knowledge is
bundled in :class:`ScatsTopology`, built once per deployment (in the
Dublin scenario it is derived from the street network).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from ..geo import SpatialGrid, distance_m

SensorKey = tuple  # (intersection, approach, sensor)


@dataclass(frozen=True)
class Intersection:
    """A SCATS intersection: identity, position and mounted sensors."""

    id: str
    lon: float
    lat: float
    sensors: tuple[SensorKey, ...]


class ScatsTopology:
    """Registry of SCATS intersections with a spatial index.

    Parameters
    ----------
    intersections:
        The SCATS intersections of the deployment.
    close_radius_m:
        Threshold of the ``close`` predicate: a bus within this many
        metres of an intersection "moves close" to it.
    """

    def __init__(
        self,
        intersections: Iterable[Intersection],
        *,
        close_radius_m: float = 150.0,
    ):
        self.close_radius_m = close_radius_m
        self._by_id: dict[str, Intersection] = {}
        for inter in intersections:
            if inter.id in self._by_id:
                raise ValueError(f"duplicate intersection id: {inter.id!r}")
            self._by_id[inter.id] = inter
        if self._by_id:
            ref_lat = sum(i.lat for i in self._by_id.values()) / len(
                self._by_id
            )
        else:
            ref_lat = 0.0
        self._grid = SpatialGrid(close_radius_m, ref_lat)
        for inter in self._by_id.values():
            self._grid.insert(inter.id, inter.lon, inter.lat)
        #: Memoised ``close`` lookups.  Bus positions repeat across
        #: overlapping windows (and across the restricted contexts of
        #: the incremental engine), so the topology keeps the answer
        #: per position instead of re-probing the spatial grid.
        self._near_cache: dict[tuple[float, float], list[str]] = {}

    # -- durability ----------------------------------------------------
    # The memoised ``close`` lookups grow with every distinct bus
    # position seen — hundreds of kilobytes over a long run — and are
    # recomputable from the spatial grid on demand.  Checkpoints drop
    # the cache; the restored topology simply re-warms it.
    def __getstate__(self):
        state = dict(self.__dict__)
        state["_near_cache"] = {}
        return state

    # ------------------------------------------------------------------
    @classmethod
    def from_mappings(
        cls,
        locations: Mapping[str, tuple[float, float]],
        sensors: Mapping[str, Iterable[SensorKey]],
        *,
        close_radius_m: float = 150.0,
    ) -> "ScatsTopology":
        """Build a topology from id→(lon, lat) and id→sensors maps."""
        intersections = [
            Intersection(
                id=int_id,
                lon=lon,
                lat=lat,
                sensors=tuple(sensors.get(int_id, ())),
            )
            for int_id, (lon, lat) in locations.items()
        ]
        return cls(intersections, close_radius_m=close_radius_m)

    # ------------------------------------------------------------------
    def __contains__(self, int_id: str) -> bool:
        return int_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def ids(self) -> list[str]:
        """All intersection ids."""
        return list(self._by_id)

    def get(self, int_id: str) -> Intersection:
        """Intersection by id (KeyError if unknown)."""
        return self._by_id[int_id]

    def location(self, int_id: str) -> tuple[float, float]:
        """``(lon, lat)`` of an intersection."""
        inter = self._by_id[int_id]
        return (inter.lon, inter.lat)

    def sensors_of(self, int_id: str) -> tuple[SensorKey, ...]:
        """Sensor keys mounted on an intersection."""
        return self._by_id[int_id].sensors

    def intersections_close_to(self, lon: float, lat: float) -> list[str]:
        """Ids of intersections the point is ``close`` to (the paper's
        ``close`` predicate against every intersection)."""
        key = (lon, lat)
        hit = self._near_cache.get(key)
        if hit is None:
            if len(self._near_cache) >= 65536:
                # Positions are effectively finite per deployment; the
                # cap only guards unbounded synthetic streams.
                self._near_cache.clear()
            hit = self._near_cache[key] = list(self._grid.near(lon, lat))
        return hit

    def nearest_intersection(
        self, lon: float, lat: float
    ) -> tuple[str, float]:
        """Nearest intersection id and its distance in metres.

        Falls back to a linear scan when nothing is within the close
        radius (used to map crowd answers given by ``(Lon, Lat)`` back
        to an intersection).
        """
        near = self._grid.near(lon, lat)
        candidates = near if near else list(self._by_id)
        best_id, best_d = None, float("inf")
        for int_id in candidates:
            inter = self._by_id[int_id]
            d = distance_m(lon, lat, inter.lon, inter.lat)
            if d < best_d:
                best_id, best_d = int_id, d
        if best_id is None:
            raise ValueError("topology has no intersections")
        return best_id, best_d
