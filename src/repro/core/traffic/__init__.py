"""Dublin traffic CE definition library (paper Section 4.3).

Use :func:`build_traffic_definitions` to assemble the full rule suite
for an :class:`~repro.core.rtec.RTEC` engine, choosing between *static*
recognition (rule-set (3), all sources always trusted) and
*self-adaptive* recognition (rule-set (3′) plus a ``noisy`` fluent
variant, rule-set (4) or (5)).
"""

from __future__ import annotations

from typing import Any, Literal

from ..rules import Definition
from .bus import (
    DEFAULT_BUS_PARAMS,
    BusCongestion,
    CongestionInTheMake,
    DelayIncrease,
)
from .scats import (
    DEFAULT_SCATS_PARAMS,
    ApproachCongestion,
    ScatsCongestion,
    ScatsIntersectionCongestion,
    StructuredIntersectionCongestion,
    TrafficRegime,
    TrafficTrend,
)
from .topology import Intersection, ScatsTopology
from .veracity import (
    DEFAULT_VERACITY_PARAMS,
    NEGATIVE,
    POSITIVE,
    Agree,
    Disagree,
    NoisyCrowdValidated,
    NoisyPessimistic,
    NoisyScatsIntersection,
    SourceDisagreement,
    TrustedScatsCongestion,
)

__all__ = [
    "Intersection",
    "ScatsTopology",
    "ScatsCongestion",
    "ScatsIntersectionCongestion",
    "ApproachCongestion",
    "StructuredIntersectionCongestion",
    "TrafficTrend",
    "TrafficRegime",
    "DelayIncrease",
    "BusCongestion",
    "CongestionInTheMake",
    "SourceDisagreement",
    "Disagree",
    "Agree",
    "NoisyCrowdValidated",
    "NoisyPessimistic",
    "NoisyScatsIntersection",
    "TrustedScatsCongestion",
    "POSITIVE",
    "NEGATIVE",
    "build_traffic_definitions",
    "default_traffic_params",
]


def default_traffic_params() -> dict[str, Any]:
    """The merged default thresholds of all traffic CE definitions."""
    params: dict[str, Any] = {}
    params.update(DEFAULT_SCATS_PARAMS)
    params.update(DEFAULT_BUS_PARAMS)
    params.update(DEFAULT_VERACITY_PARAMS)
    return params


def build_traffic_definitions(
    topology: ScatsTopology,
    *,
    adaptive: bool = False,
    noisy_variant: Literal["crowd", "pessimistic"] = "crowd",
    include_trends: bool = True,
    structured_intersections: bool = False,
    scats_reliability: bool = False,
) -> list[Definition]:
    """Assemble the Dublin CE definition suite.

    Parameters
    ----------
    topology:
        SCATS intersections and the ``close`` predicate configuration.
    adaptive:
        ``False`` reproduces *static* recognition (rule-set (3)):
        every source is always trusted.  ``True`` reproduces
        *self-adaptive* recognition: the ``noisy`` fluent is maintained
        and ``busCongestion`` follows rule-set (3′).
    noisy_variant:
        Which ``noisy(Bus)`` definition to use when ``adaptive``:
        ``"crowd"`` for rule-set (4) (crowd-validated) or
        ``"pessimistic"`` for rule-set (5) (any disagreement counts).
    include_trends:
        Whether to include the flow/density trend fluents.
    structured_intersections:
        Use the structured intersection-congestion definition
        (sensor -> approach -> intersection) instead of the flat
        at-least-n-sensors one.
    scats_reliability:
        Also evaluate SCATS reliability from crowd answers (the
        ``noisyScats`` fluent and the ``trustedScatsCongestion`` view)
        — the formalisation Section 4.3 mentions but omits.
    """
    definitions: list[Definition] = [ScatsCongestion()]
    if structured_intersections:
        definitions.append(ApproachCongestion(topology))
        definitions.append(StructuredIntersectionCongestion(topology))
    else:
        definitions.append(ScatsIntersectionCongestion(topology))
    definitions.append(DelayIncrease())
    definitions.append(CongestionInTheMake())
    if include_trends:
        definitions.append(TrafficTrend("flow"))
        definitions.append(TrafficTrend("density"))
        definitions.append(TrafficRegime())
    if adaptive:
        definitions.append(Disagree(topology))
        definitions.append(Agree(topology))
        if noisy_variant == "crowd":
            definitions.append(NoisyCrowdValidated())
        elif noisy_variant == "pessimistic":
            definitions.append(NoisyPessimistic())
        else:
            raise ValueError(
                f"unknown noisy variant: {noisy_variant!r} "
                "(expected 'crowd' or 'pessimistic')"
            )
        definitions.append(BusCongestion(topology, adaptive=True))
    else:
        definitions.append(BusCongestion(topology, adaptive=False))
    definitions.append(SourceDisagreement(topology))
    if scats_reliability:
        if not adaptive:
            raise ValueError(
                "scats_reliability requires adaptive recognition (it "
                "consumes the disagree events)"
            )
        definitions.append(NoisyScatsIntersection())
        definitions.append(TrustedScatsCongestion())
    return definitions
