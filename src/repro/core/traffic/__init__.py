"""Dublin traffic CE definition library (paper Section 4.3).

Use :func:`build_traffic_definitions` to assemble the full rule suite
for an :class:`~repro.core.rtec.RTEC` engine, choosing between *static*
recognition (rule-set (3), all sources always trusted) and
*self-adaptive* recognition (rule-set (3′) plus a ``noisy`` fluent
variant, rule-set (4) or (5)).
"""

from __future__ import annotations

from typing import Any, Literal

from ..rules import Definition
from .bus import (
    DEFAULT_BUS_PARAMS,
    BusCongestion,
    CongestionInTheMake,
    DelayIncrease,
)
from .scats import (
    DEFAULT_SCATS_PARAMS,
    ApproachCongestion,
    ScatsCongestion,
    ScatsIntersectionCongestion,
    StructuredIntersectionCongestion,
    TrafficRegime,
    TrafficTrend,
)
from .topology import Intersection, ScatsTopology
from .veracity import (
    DEFAULT_VERACITY_PARAMS,
    NEGATIVE,
    POSITIVE,
    Agree,
    Disagree,
    NoisyCrowdValidated,
    NoisyPessimistic,
    NoisyScatsIntersection,
    SourceDisagreement,
    TrustedScatsCongestion,
)

__all__ = [
    "Intersection",
    "ScatsTopology",
    "ScatsCongestion",
    "ScatsIntersectionCongestion",
    "ApproachCongestion",
    "StructuredIntersectionCongestion",
    "TrafficTrend",
    "TrafficRegime",
    "DelayIncrease",
    "BusCongestion",
    "CongestionInTheMake",
    "SourceDisagreement",
    "Disagree",
    "Agree",
    "NoisyCrowdValidated",
    "NoisyPessimistic",
    "NoisyScatsIntersection",
    "TrustedScatsCongestion",
    "POSITIVE",
    "NEGATIVE",
    "build_traffic_definitions",
    "default_traffic_params",
    "FEED_OF_DEFINITION",
    "feeds_of_definition",
]

#: Which SDE feed(s) each definition is derived from.  ``("scats",)``
#: and ``("bus",)`` mark single-feed definitions; cross-source
#: definitions (the veracity suite) list both.  The degradation layer
#: (:mod:`repro.system.degradation`) uses this map to decide which CE
#: results survive a feed outage: a definition is only trustworthy
#: while every feed it reads is alive.
FEED_OF_DEFINITION: dict[str, tuple[str, ...]] = {
    "scatsCongestion": ("scats",),
    "scatsIntCongestion": ("scats",),
    "approachCongestion": ("scats",),
    "flowTrend": ("scats",),
    "densityTrend": ("scats",),
    "trafficRegime": ("scats",),
    "delayIncrease": ("bus",),
    "congestionInTheMake": ("bus",),
    "busCongestion": ("bus",),
    "disagree": ("scats", "bus"),
    "agree": ("scats", "bus"),
    "noisy": ("scats", "bus"),
    "noisyScats": ("scats", "bus"),
    "trustedScatsCongestion": ("scats", "bus"),
    "sourceDisagreement": ("scats", "bus"),
}


def feeds_of_definition(name: str) -> tuple[str, ...]:
    """The feeds a definition depends on (empty for unknown names —
    unknown definitions are never suppressed by degradation)."""
    return FEED_OF_DEFINITION.get(name, ())


def default_traffic_params() -> dict[str, Any]:
    """The merged default thresholds of all traffic CE definitions."""
    params: dict[str, Any] = {}
    params.update(DEFAULT_SCATS_PARAMS)
    params.update(DEFAULT_BUS_PARAMS)
    params.update(DEFAULT_VERACITY_PARAMS)
    return params


def build_traffic_definitions(
    topology: ScatsTopology,
    *,
    adaptive: bool = False,
    noisy_variant: Literal["crowd", "pessimistic"] = "crowd",
    include_trends: bool = True,
    structured_intersections: bool = False,
    scats_reliability: bool = False,
    feeds: tuple[str, ...] = ("scats", "bus"),
) -> list[Definition]:
    """Assemble the Dublin CE definition suite.

    Parameters
    ----------
    topology:
        SCATS intersections and the ``close`` predicate configuration.
    feeds:
        Which SDE feeds the suite may read; the default builds the
        full suite.  ``("bus",)`` or ``("scats",)`` builds the
        degraded single-feed fallback used when the other feed's
        circuit breaker is open: cross-source definitions (the
        veracity suite) are omitted because they cannot be evaluated
        honestly with one side silent.  Single-feed suites are
        incompatible with ``adaptive`` and ``scats_reliability``
        (both consume cross-source events).
    adaptive:
        ``False`` reproduces *static* recognition (rule-set (3)):
        every source is always trusted.  ``True`` reproduces
        *self-adaptive* recognition: the ``noisy`` fluent is maintained
        and ``busCongestion`` follows rule-set (3′).
    noisy_variant:
        Which ``noisy(Bus)`` definition to use when ``adaptive``:
        ``"crowd"`` for rule-set (4) (crowd-validated) or
        ``"pessimistic"`` for rule-set (5) (any disagreement counts).
    include_trends:
        Whether to include the flow/density trend fluents.
    structured_intersections:
        Use the structured intersection-congestion definition
        (sensor -> approach -> intersection) instead of the flat
        at-least-n-sensors one.
    scats_reliability:
        Also evaluate SCATS reliability from crowd answers (the
        ``noisyScats`` fluent and the ``trustedScatsCongestion`` view)
        — the formalisation Section 4.3 mentions but omits.
    """
    known_feeds = {"scats", "bus"}
    feed_set = set(feeds)
    if not feed_set or not feed_set <= known_feeds:
        raise ValueError(
            f"feeds must be a non-empty subset of {sorted(known_feeds)}, "
            f"got {feeds!r}"
        )
    if feed_set != known_feeds:
        if adaptive or scats_reliability:
            raise ValueError(
                "adaptive recognition and scats_reliability consume "
                "cross-source events and need both feeds; got "
                f"feeds={feeds!r}"
            )
        definitions: list[Definition] = []
        if "scats" in feed_set:
            definitions.append(ScatsCongestion())
            if structured_intersections:
                definitions.append(ApproachCongestion(topology))
                definitions.append(
                    StructuredIntersectionCongestion(topology)
                )
            else:
                definitions.append(ScatsIntersectionCongestion(topology))
            if include_trends:
                definitions.append(TrafficTrend("flow"))
                definitions.append(TrafficTrend("density"))
                definitions.append(TrafficRegime())
        if "bus" in feed_set:
            definitions.append(DelayIncrease())
            definitions.append(CongestionInTheMake())
            definitions.append(BusCongestion(topology, adaptive=False))
        return definitions

    definitions = [ScatsCongestion()]
    if structured_intersections:
        definitions.append(ApproachCongestion(topology))
        definitions.append(StructuredIntersectionCongestion(topology))
    else:
        definitions.append(ScatsIntersectionCongestion(topology))
    definitions.append(DelayIncrease())
    definitions.append(CongestionInTheMake())
    if include_trends:
        definitions.append(TrafficTrend("flow"))
        definitions.append(TrafficTrend("density"))
        definitions.append(TrafficRegime())
    if adaptive:
        definitions.append(Disagree(topology))
        definitions.append(Agree(topology))
        if noisy_variant == "crowd":
            definitions.append(NoisyCrowdValidated())
        elif noisy_variant == "pessimistic":
            definitions.append(NoisyPessimistic())
        else:
            raise ValueError(
                f"unknown noisy variant: {noisy_variant!r} "
                "(expected 'crowd' or 'pessimistic')"
            )
        definitions.append(BusCongestion(topology, adaptive=True))
    else:
        definitions.append(BusCongestion(topology, adaptive=False))
    definitions.append(SourceDisagreement(topology))
    if scats_reliability:
        if not adaptive:
            raise ValueError(
                "scats_reliability requires adaptive recognition (it "
                "consumes the disagree events)"
            )
        definitions.append(NoisyScatsIntersection())
        definitions.append(TrustedScatsCongestion())
    return definitions
