"""CE definitions over the SCATS fixed-sensor stream.

The SCATS SDE is the instantaneous event (paper, Section 4.3)::

    happensAt(traffic(Int, A, S, D, F), T)

expressing density ``D`` and traffic flow ``F`` measured by sensor ``S``
mounted on a lane with approach ``A`` into intersection ``Int``.  In
this reproduction the ``traffic`` :class:`~repro.core.events.Event`
carries the payload keys ``intersection``, ``approach``, ``sensor``,
``density`` and ``flow``.

Definitions implemented here:

* :class:`ScatsCongestion` — rule-set (2): sensor-level congestion from
  the fundamental diagram of traffic flow (density above a threshold
  while flow is below another).
* :class:`ScatsIntersectionCongestion` — intersection-level congestion:
  "a SCATS intersection is congested if at least n (n > 1) of its
  sensors are congested" (Section 4.3).
* :class:`TrafficTrend` — the flow/density *trend* CEs mentioned in
  Section 4.3 for proactive decision-making; the paper does not
  formalise them, so we define: a trend fluent holds while ``k``
  consecutive readings of a sensor change monotonically by at least
  ``δ`` per reading (our formalisation, recorded in DESIGN.md).
* :class:`ApproachCongestion` / :class:`StructuredIntersectionCongestion`
  — the "more structured intersection congestion definition that
  depends on approach congestion which in turn would depend on sensor
  congestion" the paper sketches in Section 4.3: an approach is
  congested while at least ``m`` of its sensors are, and the
  intersection while at least ``k`` of its approaches are.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Mapping

from ..compiled import (
    CompiledScatsCongestion,
    CompiledTrafficRegime,
    CompiledTrafficTrend,
)
from ..events import Event, FluentKey
from ..incremental import IncrementalSpec
from ..intervals import IntervalList, count_threshold
from ..rules import RuleContext, SimpleFluent, StaticFluent, ValuedFluent
from .topology import ScatsTopology

#: Default thresholds; densities in vehicles/km, flows in vehicles/hour.
DEFAULT_SCATS_PARAMS: dict[str, float | int] = {
    # Rule-set (2): upper density / lower flow thresholds.
    "scats.density_hi": 60.0,
    "scats.flow_lo": 600.0,
    # Intersection congestion: minimum number of congested sensors.
    "scats.intersection_sensor_count": 2,
    # Structured variant: congested sensors per approach and congested
    # approaches per intersection.
    "scats.approach_sensor_count": 1,
    "scats.intersection_approach_count": 2,
    # Trend CEs: number of consecutive readings and minimum step.
    "trend.readings": 3,
    "trend.flow_delta": 120.0,
    "trend.density_delta": 8.0,
    # Declared upper bound on the time between consecutive retained
    # readings of one sensor, giving the trend rules a finite
    # incremental lookback (SCATS reports every 6 minutes).  Set to
    # ``None`` for deployments without a periodicity guarantee — the
    # trend rules then fall back to full recomputation every query.
    "trend.max_reading_gap_s": 360.0,
    # Traffic-regime bands (veh/km): free < synchronized < congested,
    # with the congested bound shared with rule-set (2).
    "regime.synchronized_density": 35.0,
}


def _sensor_key(ev: Event) -> FluentKey:
    return (ev["intersection"], ev["approach"], ev["sensor"])


def _point_sensor(point) -> FluentKey:
    """Grounding token of a fluent point: its (Int, A, S) key."""
    return point[0]


def _point_trend_sensor(point) -> FluentKey:
    """Grounding token of a trend point: the (Int, A, S) prefix of its
    key (both trend directions are functions of the same readings)."""
    return point[0][:3]


#: Incremental contract shared by the point-wise per-sensor rules: a
#: point at ``T`` is a function of the ``traffic`` SDE of that sensor
#: at ``T`` alone, so lookback 1 / lookahead 0, partitioned by sensor.
_POINTWISE_SENSOR_SPEC = IncrementalSpec(
    lookback=1,
    event_types=frozenset({"traffic"}),
    event_partition={"traffic": _sensor_key},
    point_partition=_point_sensor,
)


class ScatsCongestion(SimpleFluent):
    """Sensor-level congestion — the paper's rule-set (2).

    ``scatsCongestion(Int, A, S) = true`` is initiated when the density
    reported by the sensor is at or above ``scats.density_hi`` while the
    flow is at or below ``scats.flow_lo`` (the congested branch of the
    fundamental diagram), and terminated when either condition fails.
    """

    def __init__(self, name: str = "scatsCongestion"):
        super().__init__(name, depends_on=())

    def initiations(self, ctx: RuleContext) -> Iterable[tuple[FluentKey, int]]:
        density_hi = ctx.param("scats.density_hi")
        flow_lo = ctx.param("scats.flow_lo")
        for ev in ctx.events("traffic"):
            if ev["density"] >= density_hi and ev["flow"] <= flow_lo:
                yield _sensor_key(ev), ev.time

    def terminations(self, ctx: RuleContext) -> Iterable[tuple[FluentKey, int]]:
        density_hi = ctx.param("scats.density_hi")
        flow_lo = ctx.param("scats.flow_lo")
        for ev in ctx.events("traffic"):
            # Two termination rules in rule-set (2): density back under
            # the threshold, or flow back above its threshold.
            if ev["density"] < density_hi or ev["flow"] > flow_lo:
                yield _sensor_key(ev), ev.time

    def incremental_spec(self, params) -> IncrementalSpec:
        """Point-wise over single ``traffic`` readings, per sensor."""
        return _POINTWISE_SENSOR_SPEC

    def compiled(self, params) -> CompiledScatsCongestion:
        """One boolean mask over the density/flow columns."""
        return CompiledScatsCongestion(
            params["scats.density_hi"], params["scats.flow_lo"]
        )


class ScatsIntersectionCongestion(StaticFluent):
    """Intersection-level congestion (``scatsIntCongestion``).

    A statically-determined fluent: the intersection is congested while
    at least ``scats.intersection_sensor_count`` of its sensors'
    ``scatsCongestion`` fluents hold simultaneously.  Grounding key:
    ``(intersection_id,)``; the topology maps ids to ``(Lon, Lat)``.
    """

    def __init__(
        self,
        topology: ScatsTopology,
        *,
        name: str = "scatsIntCongestion",
        congestion_fluent: str = "scatsCongestion",
    ):
        super().__init__(name, depends_on=(congestion_fluent,))
        self._topology = topology
        self._congestion_fluent = congestion_fluent

    def derive(self, ctx: RuleContext) -> Mapping[FluentKey, IntervalList]:
        n = int(ctx.param("scats.intersection_sensor_count"))
        by_intersection: dict[str, list[IntervalList]] = defaultdict(list)
        for key, intervals in ctx.fluent(self._congestion_fluent).items():
            int_id = key[0]
            if int_id in self._topology:
                by_intersection[int_id].append(intervals)
        out: dict[FluentKey, IntervalList] = {}
        for int_id, lists in by_intersection.items():
            # An intersection with fewer sensors than the threshold is
            # congested when all of its sensors are.
            required = min(n, len(self._topology.sensors_of(int_id))) or n
            intervals = count_threshold(lists, required)
            if intervals:
                out[(int_id,)] = intervals
        return out


class TrafficTrend(SimpleFluent):
    """Flow or density trend fluent (``flowTrend`` / ``densityTrend``).

    Grounding key: ``(Int, A, S, direction)`` with direction
    ``"rising"`` or ``"falling"``.  The fluent is initiated at the
    reading that completes ``k`` consecutive monotone steps of at least
    ``δ`` each, and terminated at any reading that breaks the pattern.
    """

    def __init__(self, quantity: str, *, name: str | None = None):
        if quantity not in ("flow", "density"):
            raise ValueError("quantity must be 'flow' or 'density'")
        super().__init__(name or f"{quantity}Trend", depends_on=())
        self.quantity = quantity

    def _readings(
        self, ctx: RuleContext
    ) -> dict[FluentKey, list[tuple[int, float]]]:
        by_sensor: dict[FluentKey, list[tuple[int, float]]] = defaultdict(list)
        for ev in ctx.events("traffic"):
            by_sensor[_sensor_key(ev)].append((ev.time, ev[self.quantity]))
        return by_sensor

    def _delta(self, ctx: RuleContext) -> float:
        return ctx.param(f"trend.{self.quantity}_delta")

    def initiations(self, ctx: RuleContext) -> Iterable[tuple[FluentKey, int]]:
        k = int(ctx.param("trend.readings"))
        delta = self._delta(ctx)
        for key, readings in self._readings(ctx).items():
            for i in range(k, len(readings)):
                window = readings[i - k : i + 1]
                steps = [
                    b[1] - a[1] for a, b in zip(window, window[1:])
                ]
                if all(s >= delta for s in steps):
                    yield key + ("rising",), readings[i][0]
                elif all(s <= -delta for s in steps):
                    yield key + ("falling",), readings[i][0]

    def terminations(self, ctx: RuleContext) -> Iterable[tuple[FluentKey, int]]:
        delta = self._delta(ctx)
        for key, readings in self._readings(ctx).items():
            for (t0, v0), (t1, v1) in zip(readings, readings[1:]):
                step = v1 - v0
                if step < delta:
                    yield key + ("rising",), t1
                if step > -delta:
                    yield key + ("falling",), t1

    def incremental_spec(self, params) -> IncrementalSpec:
        """A trend point depends on ``k`` *consecutive* readings of its
        sensor, which bounds its history in reading count, not in time
        — on its own no finite lookback exists.  When the deployment
        declares ``trend.max_reading_gap_s`` (SCATS reports strictly
        every 6 minutes), ``k`` consecutive gaps span at most
        ``k * gap``, so a lookback of ``k * gap + 1`` is sound and the
        definition caches per sensor; with the parameter unset (or
        ``None``) it is recomputed in full each query."""
        gap = params.get("trend.max_reading_gap_s")
        if gap is None:
            return IncrementalSpec(
                lookback=None, event_types=frozenset({"traffic"})
            )
        k = int(
            params.get(
                "trend.readings", DEFAULT_SCATS_PARAMS["trend.readings"]
            )
        )
        return IncrementalSpec(
            lookback=k * int(gap) + 1,
            event_types=frozenset({"traffic"}),
            event_partition={"traffic": _sensor_key},
            point_partition=_point_trend_sensor,
        )

    def compiled(self, params) -> CompiledTrafficTrend:
        """Per-sensor monotone-run scan over one measurement column."""
        return CompiledTrafficTrend(
            self.quantity,
            int(
                params.get(
                    "trend.readings", DEFAULT_SCATS_PARAMS["trend.readings"]
                )
            ),
            params[f"trend.{self.quantity}_delta"],
        )


class ApproachCongestion(StaticFluent):
    """Approach-level congestion (``approachCongestion``).

    The middle layer of the structured intersection definition of
    Section 4.3: an approach into an intersection is congested while at
    least ``scats.approach_sensor_count`` of the sensors mounted on it
    are congested.  Grounding key: ``(intersection_id, approach)``.
    """

    def __init__(
        self,
        topology: ScatsTopology,
        *,
        name: str = "approachCongestion",
        congestion_fluent: str = "scatsCongestion",
    ):
        super().__init__(name, depends_on=(congestion_fluent,))
        self._topology = topology
        self._congestion_fluent = congestion_fluent

    def derive(self, ctx: RuleContext) -> Mapping[FluentKey, IntervalList]:
        m = int(ctx.param("scats.approach_sensor_count"))
        by_approach: dict[tuple, list[IntervalList]] = defaultdict(list)
        sensors_per_approach: dict[tuple, int] = defaultdict(int)
        for int_id in self._topology.ids():
            for sensor_key in self._topology.sensors_of(int_id):
                sensors_per_approach[(sensor_key[0], sensor_key[1])] += 1
        for key, intervals in ctx.fluent(self._congestion_fluent).items():
            int_id, approach = key[0], key[1]
            if int_id in self._topology:
                by_approach[(int_id, approach)].append(intervals)
        out: dict[FluentKey, IntervalList] = {}
        for approach_key, lists in by_approach.items():
            required = min(m, sensors_per_approach[approach_key]) or m
            intervals = count_threshold(lists, required)
            if intervals:
                out[approach_key] = intervals
        return out


class StructuredIntersectionCongestion(StaticFluent):
    """Intersection congestion from congested approaches.

    The top layer of the structured definition: the intersection is
    congested while at least ``scats.intersection_approach_count`` of
    its approaches are congested.  Grounding key: ``(intersection_id,)``
    — interchangeable with :class:`ScatsIntersectionCongestion`, so the
    veracity rules can be built on either definition.
    """

    def __init__(
        self,
        topology: ScatsTopology,
        *,
        name: str = "scatsIntCongestion",
        approach_fluent: str = "approachCongestion",
    ):
        super().__init__(name, depends_on=(approach_fluent,))
        self._topology = topology
        self._approach_fluent = approach_fluent

    def derive(self, ctx: RuleContext) -> Mapping[FluentKey, IntervalList]:
        k = int(ctx.param("scats.intersection_approach_count"))
        by_intersection: dict[str, list[IntervalList]] = defaultdict(list)
        for key, intervals in ctx.fluent(self._approach_fluent).items():
            by_intersection[key[0]].append(intervals)
        out: dict[FluentKey, IntervalList] = {}
        for int_id, lists in by_intersection.items():
            approaches = {
                sensor_key[1]
                for sensor_key in self._topology.sensors_of(int_id)
            }
            required = min(k, len(approaches)) or k
            intervals = count_threshold(lists, required)
            if intervals:
                out[(int_id,)] = intervals
        return out


class TrafficRegime(ValuedFluent):
    """Per-sensor traffic regime — a multi-valued fluent.

    Classifies each detector's state into the three phases of
    traffic-flow theory by density band: ``free`` (below
    ``regime.synchronized_density``), ``synchronized`` (between the
    bands) and ``congested`` (at or above ``scats.density_hi``, the
    same threshold rule-set (2) uses).  Being a single fluent over
    three values (rather than three booleans) guarantees exactly one
    regime holds per sensor at any time — the ``F = V`` semantics of
    RTEC.  Grounding key: ``(Int, A, S)``, stored under
    ``(Int, A, S, regime)``.
    """

    #: The regime labels, ordered free-flowing to congested.
    REGIMES = ("free", "synchronized", "congested")

    def __init__(self, name: str = "trafficRegime"):
        super().__init__(name, depends_on=())

    def _classify(self, ctx: RuleContext, density: float) -> str:
        if density >= ctx.param("scats.density_hi"):
            return "congested"
        if density >= ctx.param("regime.synchronized_density"):
            return "synchronized"
        return "free"

    def initiations(self, ctx: RuleContext):
        """Each reading initiates the regime its density falls in."""
        for ev in ctx.events("traffic"):
            yield _sensor_key(ev), self._classify(ctx, ev["density"]), ev.time

    def terminations(self, ctx: RuleContext):
        """No explicit terminations: regimes displace one another."""
        return ()

    def incremental_spec(self, params) -> IncrementalSpec:
        """Point-wise over single ``traffic`` readings, per sensor."""
        return _POINTWISE_SENSOR_SPEC

    def compiled(self, params) -> CompiledTrafficRegime:
        """Banded classification of the density column."""
        return CompiledTrafficRegime(
            params["scats.density_hi"],
            params["regime.synchronized_density"],
        )
