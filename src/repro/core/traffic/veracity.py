"""Veracity handling: source (dis)agreement and bus reliability.

Implements the CE definitions of Sections 4.3 that deal with the data
veracity problem:

* :class:`SourceDisagreement` — the statically-determined fluent
  computed with ``relative_complement_all``: buses report congestion at
  a SCATS intersection while the SCATS sensors there do not.
* :class:`Disagree` / :class:`Agree` — instantaneous events fired when
  a bus moving close to a SCATS intersection contradicts/confirms the
  intersection's sensors.
* :class:`NoisyCrowdValidated` — rule-set (4): a bus becomes ``noisy``
  only when the crowd confirms the SCATS sensors against it.
* :class:`NoisyPessimistic` — rule-set (5): a bus becomes ``noisy`` on
  any disagreement (SCATS presumed trustworthy), and is rehabilitated
  by agreement or by crowd evidence in its favour.

Crowd answers arrive as input SDEs of type ``crowd`` with payload keys
``intersection``, ``lon``, ``lat`` and ``value`` (``"positive"`` for a
confirmed congestion, ``"negative"`` otherwise) — the
``crowd(LonInt, LatInt, Val)`` events of the paper, keyed here by
intersection id.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import math

from ..events import Event, FluentKey, Occurrence
from ..incremental import IncrementalSpec
from ..intervals import IntervalList, relative_complement_all
from ..rules import DerivedEvent, RuleContext, SimpleFluent, StaticFluent
from .bus import _gps_at, _gps_bus, _move_bus, close_intersections
from .topology import ScatsTopology

#: Default thresholds for the veracity definitions.
DEFAULT_VERACITY_PARAMS: dict[str, float | int] = {
    # Crowd answers are only used against a disagreement if they arrive
    # within this many seconds of it (rule-sets (4)/(5)).
    "veracity.crowd_response_window": 900,
}

POSITIVE = "positive"
NEGATIVE = "negative"


def _occ_bus(occ: Occurrence) -> object:
    """Grounding token of a bus comparison point: ``key[0]``."""
    return occ.key[0]


def _crowd_intersection(ev: Event) -> object:
    """Grounding token of a ``crowd`` SDE: the intersection asked."""
    return ev["intersection"]


def _point_intersection(point) -> object:
    """Grounding token of an intersection-keyed fluent point."""
    return point[0][0]


def _crowd_window(params) -> int:
    """The crowd-response window as an integral number of ticks."""
    return int(
        math.ceil(
            params.get(
                "veracity.crowd_response_window",
                DEFAULT_VERACITY_PARAMS["veracity.crowd_response_window"],
            )
        )
    )


class SourceDisagreement(StaticFluent):
    """``sourceDisagreement`` via ``relative_complement_all``.

    The maximal intervals during which some buses report congestion at
    the location of a SCATS intersection while, according to the SCATS
    sensors of that intersection, there is no congestion.  Computed only
    for SCATS intersection locations; grounding key
    ``(intersection_id,)``.
    """

    def __init__(
        self,
        topology: ScatsTopology,
        *,
        name: str = "sourceDisagreement",
        bus_fluent: str = "busCongestion",
        scats_fluent: str = "scatsIntCongestion",
    ):
        super().__init__(name, depends_on=(bus_fluent, scats_fluent))
        self._topology = topology
        self._bus_fluent = bus_fluent
        self._scats_fluent = scats_fluent

    def derive(self, ctx: RuleContext) -> Mapping[FluentKey, IntervalList]:
        out: dict[FluentKey, IntervalList] = {}
        for key, bus_intervals in ctx.fluent(self._bus_fluent).items():
            if key[0] not in self._topology:
                continue
            scats_intervals = ctx.intervals(self._scats_fluent, key)
            disagreement = relative_complement_all(
                bus_intervals, [scats_intervals]
            )
            if disagreement:
                out[key] = disagreement
        return out


class _BusScatsComparison(DerivedEvent):
    """Shared machinery for the ``disagree``/``agree`` events.

    Both rules fire on a ``move`` SDE of a bus that is close to a SCATS
    intersection, comparing the bus's congestion bit against
    ``holdsAt(scatsIntCongestion(...) = true, T)``.
    """

    def __init__(
        self,
        name: str,
        topology: ScatsTopology,
        *,
        scats_fluent: str = "scatsIntCongestion",
    ):
        super().__init__(name, depends_on=(scats_fluent,))
        self._topology = topology
        self._scats_fluent = scats_fluent

    def _comparisons(
        self, ctx: RuleContext
    ) -> Iterable[tuple[object, str, int, bool, bool]]:
        """All ``(bus, intersection, T, bus_says, scats_says)`` joins.

        Computed once per window and shared between the ``disagree``
        and ``agree`` definitions through the context memo.
        """
        memo_key = ("bus_scats_comparisons", id(self._topology),
                    self._scats_fluent)
        if memo_key in ctx.memo:
            return ctx.memo[memo_key]
        out: list[tuple[object, str, int, bool, bool]] = []
        for ev in ctx.events("move"):
            bus = ev["bus"]
            gps = _gps_at(ctx, bus, ev.time)
            if gps is None:
                continue
            bus_says = bool(gps["congestion"])
            for int_id in close_intersections(
                ctx, self._topology, gps["lon"], gps["lat"]
            ):
                scats_says = ctx.holds_at(
                    self._scats_fluent, (int_id,), ev.time
                )
                out.append((bus, int_id, ev.time, bus_says, scats_says))
        ctx.memo[memo_key] = out
        return out

    def incremental_spec(self, params) -> IncrementalSpec:
        """Point-wise over single ``move``/``gps`` reports of one bus
        (the SCATS fluent probed at the same instant is a dependency,
        propagated as change ranges)."""
        return IncrementalSpec(
            lookback=1,
            event_types=frozenset({"move"}),
            fact_names=frozenset({"gps"}),
            event_partition={"move": _move_bus},
            fact_partition={"gps": _gps_bus},
            point_partition=_occ_bus,
        )


class Disagree(_BusScatsComparison):
    """``disagree(Bus, LonInt, LatInt, Val)`` (Section 4.3).

    Fired when a bus close to a SCATS intersection disagrees with the
    intersection's sensors on congestion.  ``Val`` is ``positive`` when
    the bus reports a congestion (the sensors do not) and ``negative``
    when the bus reports free flow (the sensors report congestion).
    """

    def __init__(
        self,
        topology: ScatsTopology,
        *,
        name: str = "disagree",
        scats_fluent: str = "scatsIntCongestion",
    ):
        super().__init__(name, topology, scats_fluent=scats_fluent)

    def occurrences(self, ctx: RuleContext) -> Iterable[Occurrence]:
        for bus, int_id, t, bus_says, scats_says in self._comparisons(ctx):
            if bus_says == scats_says:
                continue
            lon, lat = self._topology.location(int_id)
            yield Occurrence(
                self.name,
                (bus, int_id),
                t,
                {
                    "bus": bus,
                    "intersection": int_id,
                    "lon": lon,
                    "lat": lat,
                    "value": POSITIVE if bus_says else NEGATIVE,
                },
            )


class Agree(_BusScatsComparison):
    """``agree(Bus)`` (Section 4.3): the bus confirms the sensors."""

    def __init__(
        self,
        topology: ScatsTopology,
        *,
        name: str = "agree",
        scats_fluent: str = "scatsIntCongestion",
    ):
        super().__init__(name, topology, scats_fluent=scats_fluent)

    def occurrences(self, ctx: RuleContext) -> Iterable[Occurrence]:
        for bus, int_id, t, bus_says, scats_says in self._comparisons(ctx):
            if bus_says != scats_says:
                continue
            yield Occurrence(
                self.name,
                (bus,),
                t,
                {"bus": bus, "intersection": int_id},
            )


def _crowd_answers(
    ctx: RuleContext,
) -> dict[object, list[tuple[int, str]]]:
    """Crowd events grouped by intersection as ``(T', value)`` pairs."""
    answers: dict[object, list[tuple[int, str]]] = {}
    for ev in ctx.events("crowd"):
        answers.setdefault(ev["intersection"], []).append(
            (ev.time, ev["value"])
        )
    return answers


def _crowd_verdict_after(
    answers: dict[object, list[tuple[int, str]]],
    intersection: object,
    t: int,
    window: float,
) -> str | None:
    """The first crowd value for ``intersection`` with
    ``0 < T' - T < window``, or ``None``."""
    for t_crowd, value in sorted(answers.get(intersection, ())):
        if 0 < t_crowd - t < window:
            return value
    return None


class NoisyCrowdValidated(SimpleFluent):
    """``noisy(Bus)`` — rule-set (4), crowd-validated.

    Initiated when a bus disagrees with the SCATS sensors of an
    intersection *and* the crowdsourced answer (arriving within
    ``veracity.crowd_response_window`` seconds) sides with the sensors.
    Terminated when the bus agrees with SCATS sensors somewhere, or when
    crowd evidence proves the bus right about a disagreement.
    """

    def __init__(
        self,
        *,
        name: str = "noisy",
        disagree_event: str = "disagree",
        agree_event: str = "agree",
    ):
        super().__init__(name, depends_on=(disagree_event, agree_event))
        self._disagree_event = disagree_event
        self._agree_event = agree_event

    def initiations(self, ctx: RuleContext) -> Iterable[tuple[FluentKey, int]]:
        window = ctx.param("veracity.crowd_response_window")
        answers = _crowd_answers(ctx)
        for occ in ctx.derived(self._disagree_event):
            verdict = _crowd_verdict_after(
                answers, occ["intersection"], occ.time, window
            )
            if verdict is not None and verdict != occ["value"]:
                yield (occ["bus"],), occ.time

    def terminations(self, ctx: RuleContext) -> Iterable[tuple[FluentKey, int]]:
        for occ in ctx.derived(self._agree_event):
            yield (occ["bus"],), occ.time
        window = ctx.param("veracity.crowd_response_window")
        answers = _crowd_answers(ctx)
        for occ in ctx.derived(self._disagree_event):
            verdict = _crowd_verdict_after(
                answers, occ["intersection"], occ.time, window
            )
            if verdict is not None and verdict == occ["value"]:
                yield (occ["bus"],), occ.time

    def incremental_spec(self, params) -> IncrementalSpec:
        """Points sit at ``disagree``/``agree`` times (dependencies)
        and look *ahead* up to the crowd-response window for the
        ``crowd`` answer that validates them."""
        return IncrementalSpec(
            lookback=1,
            lookahead=_crowd_window(params),
            event_types=frozenset({"crowd"}),
        )


class NoisyPessimistic(SimpleFluent):
    """``noisy(Bus)`` — rule-set (5), SCATS-presumed-trustworthy.

    Initiated on *any* disagreement with SCATS sensors, even without
    crowd input.  Terminated by agreement, or by a crowd answer (within
    the response window) that proves the bus correct — note the paper
    terminates at ``T'``, the crowd answer's time, not the
    disagreement's.
    """

    def __init__(
        self,
        *,
        name: str = "noisy",
        disagree_event: str = "disagree",
        agree_event: str = "agree",
    ):
        super().__init__(name, depends_on=(disagree_event, agree_event))
        self._disagree_event = disagree_event
        self._agree_event = agree_event

    def initiations(self, ctx: RuleContext) -> Iterable[tuple[FluentKey, int]]:
        for occ in ctx.derived(self._disagree_event):
            yield (occ["bus"],), occ.time

    def terminations(self, ctx: RuleContext) -> Iterable[tuple[FluentKey, int]]:
        for occ in ctx.derived(self._agree_event):
            yield (occ["bus"],), occ.time
        window = ctx.param("veracity.crowd_response_window")
        answers = _crowd_answers(ctx)
        for occ in ctx.derived(self._disagree_event):
            for t_crowd, value in sorted(
                answers.get(occ["intersection"], ())
            ):
                if 0 < t_crowd - occ.time < window and value == occ["value"]:
                    # Terminate at T' (the crowd answer's time).
                    yield (occ["bus"],), t_crowd
                    break

    def incremental_spec(self, params) -> IncrementalSpec:
        """A termination at ``T'`` (a crowd answer's time) reaches back
        to the disagreement it rehabilitates, up to the crowd-response
        window earlier; initiations are point-wise on dependencies."""
        return IncrementalSpec(
            lookback=_crowd_window(params),
            event_types=frozenset({"crowd"}),
        )


class NoisyScatsIntersection(SimpleFluent):
    """``noisyScats(Int)`` — SCATS reliability from crowd evidence.

    Section 4.3 closes with: "Given the crowdsourced information, we
    can also evaluate the reliability of SCATS sensors.  The
    formalisation is similar and omitted to save space."  This is that
    omitted formalisation, mirroring rule-set (4) with the roles
    swapped: a SCATS intersection becomes noisy when the crowdsourced
    answer (arriving within ``veracity.crowd_response_window`` seconds
    of a source disagreement at that intersection) contradicts what the
    intersection's sensors report, and is rehabilitated when a later
    crowd answer confirms them.
    """

    def __init__(
        self,
        *,
        name: str = "noisyScats",
        scats_fluent: str = "scatsIntCongestion",
        disagree_event: str = "disagree",
    ):
        super().__init__(name, depends_on=(scats_fluent, disagree_event))
        self._scats_fluent = scats_fluent
        self._disagree_event = disagree_event

    def _verdicts(
        self, ctx: RuleContext
    ) -> Iterable[tuple[object, int, bool, bool]]:
        """Yield ``(intersection, T', crowd_says, scats_says)`` for
        every crowd answer that resolves a recent disagreement."""
        window = ctx.param("veracity.crowd_response_window")
        disagreement_times: dict[object, list[int]] = {}
        for occ in ctx.derived(self._disagree_event):
            disagreement_times.setdefault(occ["intersection"], []).append(
                occ.time
            )
        for ev in ctx.events("crowd"):
            int_id = ev["intersection"]
            recent = any(
                0 < ev.time - t < window
                for t in disagreement_times.get(int_id, ())
            )
            if not recent:
                continue
            crowd_says = ev["value"] == POSITIVE
            scats_says = ctx.holds_at(self._scats_fluent, (int_id,), ev.time)
            yield int_id, ev.time, crowd_says, scats_says

    def initiations(self, ctx: RuleContext) -> Iterable[tuple[FluentKey, int]]:
        for int_id, t, crowd_says, scats_says in self._verdicts(ctx):
            if crowd_says != scats_says:
                yield (int_id,), t

    def terminations(self, ctx: RuleContext) -> Iterable[tuple[FluentKey, int]]:
        for int_id, t, crowd_says, scats_says in self._verdicts(ctx):
            if crowd_says == scats_says:
                yield (int_id,), t

    def incremental_spec(self, params) -> IncrementalSpec:
        """Points sit at ``crowd`` answer times and reach back to the
        disagreements they resolve (a dependency), per intersection."""
        return IncrementalSpec(
            lookback=_crowd_window(params),
            event_types=frozenset({"crowd"}),
            event_partition={"crowd": _crowd_intersection},
            point_partition=_point_intersection,
        )


class TrustedScatsCongestion(StaticFluent):
    """``scatsIntCongestion`` filtered by SCATS reliability.

    The analog of rule-set (3′) on the fixed-sensor side: congestion
    intervals reported by a SCATS intersection are discarded while the
    intersection is considered noisy, so downstream consumers (the
    operator map, the traffic model) only see trusted sensor output.
    """

    def __init__(
        self,
        *,
        name: str = "trustedScatsCongestion",
        scats_fluent: str = "scatsIntCongestion",
        noisy_fluent: str = "noisyScats",
    ):
        super().__init__(name, depends_on=(scats_fluent, noisy_fluent))
        self._scats_fluent = scats_fluent
        self._noisy_fluent = noisy_fluent

    def derive(self, ctx: RuleContext) -> Mapping[FluentKey, IntervalList]:
        out: dict[FluentKey, IntervalList] = {}
        for key, intervals in ctx.fluent(self._scats_fluent).items():
            noisy = ctx.intervals(self._noisy_fluent, key)
            trusted = relative_complement_all(intervals, [noisy])
            if trusted:
                out[key] = trusted
        return out
