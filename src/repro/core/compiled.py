"""Vectorised evaluators for the hot RTEC rule bodies.

The interpreter evaluates a rule body by iterating event objects and
probing their payload mappings per event, per rule, per query.  For the
simple body shapes that dominate the traffic suite — threshold
comparisons over one event type, per-token consecutive-reading scans,
banded classification — the whole body is expressible as a handful of
``numpy`` operations over the columnar views of
:mod:`repro.core.columns`.  Each :class:`CompiledRule` here lowers one
such body; the engine calls :meth:`CompiledRule.derive` wherever it
would have called the definition's interpreted rule bodies, in every
evaluation context (full window, restricted range, dirty-grounding) —
the view abstraction makes the contexts interchangeable.

Parity is the hard constraint, enforced by the golden-trace and
Hypothesis differential suites: a compiled body must yield exactly the
point multiset the interpreted body would.  Two practices keep that
true:

* every emitted time coordinate is converted to a Python ``int``
  (``numpy`` scalars would leak into snapshots and serialise
  differently);
* payload construction always reads the *original* objects
  (:meth:`~repro.core.columns.MirrorView.item`), never round-trips
  through ``float64`` — an integer payload field must stay an integer.

Anything these shapes can't express (spatial joins, fluent-dependent
bodies, count thresholds over interval algebra) simply stays on the
interpreter; :meth:`repro.core.rules.Definition.compiled` returns
``None`` and the engine counts the evaluation as a fallback.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Optional

import numpy as np

from .columns import ColumnSpec
from .events import Occurrence

#: Columnar layout of the SCATS ``traffic`` SDE: the two measurements
#: as numeric columns, the sensor identity as the grounding token.
TRAFFIC_COLUMNS = ColumnSpec(
    numeric=("density", "flow"),
    token=("intersection", "approach", "sensor"),
)

#: Columnar layout of the bus ``move`` SDE.
MOVE_COLUMNS = ColumnSpec(numeric=("delay",), token=("bus",))


class CompiledRule:
    """A vectorised drop-in for one definition's rule bodies.

    ``columns`` declares, per input event type, the
    :class:`~repro.core.columns.ColumnSpec` the evaluator reads — the
    engine uses it to pre-declare working-memory mirrors so the arrays
    are maintained incrementally rather than rebuilt per query.
    ``derive`` returns the same stream dict
    :meth:`repro.core.rtec.RTEC._extract_streams` would
    (``{"occ": [...]}`` or ``{"init": [...], "term": [...]}``).

    Instances are constructed once per engine with thresholds bound
    from the engine's parameters, hold only plain values, and must
    remain picklable (engines ship to process-pool workers whole).
    """

    columns: Mapping[str, ColumnSpec] = {}

    def derive(self, ctx) -> dict[str, list[Any]]:
        """Evaluate the rule body over the context's columnar views.

        Returns the interpreter-shaped stream dict — ``{"occ": [...]}``
        for derived events, ``{"init": [...], "term": [...]}`` for
        fluents — with every emitted time a Python ``int``.
        """
        raise NotImplementedError


class CompiledScatsCongestion(CompiledRule):
    """Rule-set (2): one threshold conjunction per ``traffic`` reading.

    ``init`` where ``density >= hi and flow <= lo``; ``term`` is the
    exact complement — both sides of the fundamental-diagram test fall
    out of a single boolean mask.
    """

    columns = {"traffic": TRAFFIC_COLUMNS}

    def __init__(self, density_hi: float, flow_lo: float):
        self.density_hi = density_hi
        self.flow_lo = flow_lo

    def derive(self, ctx) -> dict[str, list[Any]]:
        """One boolean mask over the batch; ``init`` where it holds,
        ``term`` where it does not."""
        view = ctx.events_columns("traffic", TRAFFIC_COLUMNS)
        if not view.n:
            return {"init": [], "term": []}
        mask = (view.col("density") >= self.density_hi) & (
            view.col("flow") <= self.flow_lo
        )
        tokens = view.tokens
        times = view.times_list
        init = [
            (tokens[i], times[i]) for i in np.flatnonzero(mask).tolist()
        ]
        term = [
            (tokens[i], times[i]) for i in np.flatnonzero(~mask).tolist()
        ]
        return {"init": init, "term": term}


class CompiledTrafficRegime(CompiledRule):
    """Banded density classification into the three traffic regimes.

    Each reading initiates exactly one regime value (valued-fluent
    semantics displace the previous value); there are no explicit
    terminations.  The two band thresholds collapse into a nested
    ``np.where``.
    """

    columns = {"traffic": TRAFFIC_COLUMNS}

    #: Must match :attr:`repro.core.traffic.scats.TrafficRegime.REGIMES`.
    REGIMES = ("free", "synchronized", "congested")

    def __init__(self, density_hi: float, synchronized_density: float):
        self.density_hi = density_hi
        self.synchronized_density = synchronized_density

    def derive(self, ctx) -> dict[str, list[Any]]:
        """Band-classify every reading; each row initiates its regime
        value (valued-fluent semantics need no terminations)."""
        view = ctx.events_columns("traffic", TRAFFIC_COLUMNS)
        if not view.n:
            return {"init": [], "term": []}
        density = view.col("density")
        band = np.where(
            density >= self.density_hi,
            2,
            np.where(density >= self.synchronized_density, 1, 0),
        ).tolist()
        tokens = view.tokens
        times = view.times_list
        regimes = self.REGIMES
        init = [
            (tokens[i], regimes[band[i]], times[i])
            for i in range(view.n)
        ]
        return {"init": init, "term": []}


class CompiledTrafficTrend(CompiledRule):
    """Monotone-run detection over each sensor's consecutive readings.

    All tokens are evaluated in ONE flattened pass: the per-token row
    groups are concatenated, the reading steps become a single
    ``np.diff`` with the steps that cross a token boundary masked out,
    and a trend initiation is a window of ``k`` consecutive qualifying
    steps found with a cumulative-sum window count (a boundary step
    inside a window forces the count below ``k``, so runs can never
    leak across tokens).  A termination is any in-token step that
    breaks the direction.  Per-token numpy calls would drown the
    vector win in call overhead — windows here contain only tens of
    readings per sensor.

    The interpreted body's ``elif`` gives rising priority when
    ``delta`` admits both directions at once, mirrored here by masking
    falling windows with the rising ones.
    """

    columns = {"traffic": TRAFFIC_COLUMNS}

    def __init__(self, quantity: str, k: int, delta: float):
        self.quantity = quantity
        self.k = k
        self.delta = delta

    def derive(self, ctx) -> dict[str, list[Any]]:
        """Flattened diff/run-window pass over every token at once,
        emitting rising/falling trend initiations and direction-break
        terminations."""
        view = ctx.events_columns("traffic", TRAFFIC_COLUMNS)
        init: list[Any] = []
        term: list[Any] = []
        if not view.n:
            return {"init": init, "term": term}
        groups = [
            (token, rows)
            for token, rows in view.token_rows().items()
            if len(rows) >= 2
        ]
        if not groups:
            return {"init": init, "term": term}
        k = self.k
        delta = self.delta
        rising_keys = [token + ("rising",) for token, _ in groups]
        falling_keys = [token + ("falling",) for token, _ in groups]
        lengths = np.fromiter(
            (len(rows) for _, rows in groups), np.int64, count=len(groups)
        )
        order = np.concatenate([rows for _, rows in groups])
        vals = view.col(self.quantity)[order]
        times = view.times[order].tolist()
        #: Group index of each flattened element (and of each in-token
        #: step, which starts at that element).
        element_group = np.repeat(
            np.arange(len(groups)), lengths
        ).tolist()
        steps = np.diff(vals)
        valid = np.ones(len(steps), dtype=bool)
        last = np.cumsum(lengths) - 1
        if len(last) > 1:
            valid[last[:-1]] = False  # steps crossing a token boundary
        rising = (steps >= delta) & valid
        falling = (steps <= -delta) & valid
        # Terminations: any in-token step that fails a direction's
        # bound terminates that direction at the later reading.
        for j in np.flatnonzero(valid & ~rising).tolist():
            term.append((rising_keys[element_group[j]], times[j + 1]))
        for j in np.flatnonzero(valid & ~falling).tolist():
            term.append((falling_keys[element_group[j]], times[j + 1]))
        # Initiations: k consecutive qualifying steps, anchored at the
        # reading that completes the run.  Window counts via cumsum:
        # sums[j] = qualifying steps among steps[j .. j+k-1].
        if k < 1 or len(steps) < k:
            return {"init": init, "term": term}
        cs_r = np.concatenate(([0], np.cumsum(rising)))
        cs_f = np.concatenate(([0], np.cumsum(falling)))
        rising_runs = (cs_r[k:] - cs_r[:-k]) == k
        falling_runs = (cs_f[k:] - cs_f[:-k]) == k
        falling_runs &= ~rising_runs
        for j in np.flatnonzero(rising_runs).tolist():
            init.append((rising_keys[element_group[j]], times[j + k]))
        for j in np.flatnonzero(falling_runs).tolist():
            init.append((falling_keys[element_group[j]], times[j + k]))
        return {"init": init, "term": term}


class CompiledDelayIncrease(CompiledRule):
    """Section 4.1's ``delayIncrease``: consecutive-pair deltas per bus.

    The pair predicate (``0 < dt < t_max`` and ``delay step > d``)
    vectorises per bus; only the (rare) hits fall back to Python for
    the ``gps`` join and the payload, which is built from the original
    event objects so integer delay fields survive untouched.
    """

    columns = {"move": MOVE_COLUMNS}

    def __init__(
        self, name: str, delay_delta: float, delay_window: float
    ):
        self.name = name
        self.delay_delta = delay_delta
        self.delay_window = delay_window

    def derive(self, ctx) -> dict[str, list[Any]]:
        """Vectorised pair predicate per bus; hits join ``gps`` and
        build occurrences from the original event objects."""
        view = ctx.events_columns("move", MOVE_COLUMNS)
        occ: list[Occurrence] = []
        if not view.n:
            return {"occ": occ}
        delays = view.col("delay")
        all_times = view.times
        d = self.delay_delta
        t_max = self.delay_window
        for token, rows in view.token_rows().items():
            if len(rows) < 2:
                continue
            times = all_times[rows]
            dt = np.diff(times)
            dd = np.diff(delays[rows])
            hits = np.flatnonzero((dt > 0) & (dt < t_max) & (dd > d))
            if not len(hits):
                continue
            bus = token[0]
            rows_list = rows.tolist()
            times_list = times.tolist()
            for j in hits.tolist():
                gps_prev = ctx.fact_at("gps", (bus,), times_list[j])
                gps_cur = ctx.fact_at("gps", (bus,), times_list[j + 1])
                if gps_prev is None or gps_cur is None:
                    continue
                prev_ev = view.item(rows_list[j])
                cur_ev = view.item(rows_list[j + 1])
                occ.append(
                    Occurrence(
                        self.name,
                        (bus,),
                        times_list[j + 1],
                        {
                            "bus": bus,
                            "from_lon": gps_prev["lon"],
                            "from_lat": gps_prev["lat"],
                            "lon": gps_cur["lon"],
                            "lat": gps_cur["lat"],
                            "delay_increase": (
                                cur_ev["delay"] - prev_ev["delay"]
                            ),
                        },
                    )
                )
        return {"occ": occ}
