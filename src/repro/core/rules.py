"""Definition DSL for RTEC complex events and fluents.

The paper expresses complex-event (CE) definitions as Event Calculus
rules over ``happensAt`` / ``holdsAt`` / ``initiatedAt`` /
``terminatedAt`` / ``holdsFor`` (Section 4.1).  We mirror that structure
with three kinds of definition objects evaluated by the engine in
dependency (stratification) order:

* :class:`DerivedEvent` — a CE modelled as a rule defining event
  instances with ``happensAt`` (e.g. ``delayIncrease``);
* :class:`SimpleFluent` — a fluent defined by ``initiatedAt`` /
  ``terminatedAt`` rules and subject to the law of inertia (e.g.
  ``scatsCongestion``, rule-set (2));
* :class:`StaticFluent` — a statically-determined fluent defined
  through interval-manipulation constructs (e.g.
  ``sourceDisagreement`` via ``relative_complement_all``).

Rule bodies receive a :class:`RuleContext` giving windowed access to
input SDEs, input-fluent facts, previously derived events and already
computed fluent intervals.
"""

from __future__ import annotations

import abc
import bisect
from collections import defaultdict
from collections.abc import Iterable, Mapping, Sequence
from typing import Any, Callable, Optional

from .events import Event, FluentFact, FluentKey, Occurrence
from .intervals import IntervalList


class RuleContext:
    """Windowed view over inputs and intermediate results.

    One context is built per query time; it exposes exactly the data an
    Event Calculus rule body may reference: SDEs inside the working
    memory, input-fluent facts, derived-event occurrences of lower
    strata, fluent intervals of lower strata, and tunable parameters
    (thresholds such as the density/flow bounds of rule-set (2)).
    """

    def __init__(
        self,
        *,
        window_start: int,
        window_end: int,
        events: Mapping[str, Sequence[Event]],
        facts: Mapping[tuple[str, FluentKey], Sequence[FluentFact]],
        params: Mapping[str, Any],
        fact_times: Optional[
            Mapping[tuple[str, FluentKey], Sequence[int]]
        ] = None,
        columns: Optional[Mapping[str, Any]] = None,
    ):
        self.window_start = window_start
        self.window_end = window_end
        self._events = events
        self._facts = facts
        # The incremental engine slices facts out of its time-indexed
        # working memory and passes the matching time arrays along;
        # otherwise derive them here.
        self._fact_times: Mapping[tuple[str, FluentKey], Sequence[int]] = (
            fact_times
            if fact_times is not None
            else {k: [f.time for f in fs] for k, fs in facts.items()}
        )
        self._params = params
        # Columnar sources per event type, provided by the incremental
        # engine over its working-memory mirrors; compiled rule bodies
        # read them through :meth:`events_columns`.
        self._columns = columns
        self._occurrences: dict[str, list[Occurrence]] = {}
        self._fluents: dict[str, dict[FluentKey, IntervalList]] = {}
        #: Per-window scratch space shared by all rule bodies.  Rules
        #: that repeat work over the same inputs (e.g. the spatial
        #: ``close`` joins performed by several bus-side definitions)
        #: memoise results here; the context — and the memo — lives for
        #: exactly one query time.
        self.memo: dict = {}

    # -- inputs --------------------------------------------------------
    def events(self, event_type: str) -> Sequence[Event]:
        """All input SDEs of ``event_type`` inside the window, sorted by
        occurrence time (``happensAt`` facts)."""
        return self._events.get(event_type, ())

    def fact_at(self, name: str, key: FluentKey, t: int) -> Optional[Any]:
        """Value of input fluent ``name(key)`` recorded *exactly* at
        ``t``, or ``None``.

        The bus dataset pairs each ``move`` event with a ``gps`` fact at
        the same time-point (formalisation (1)); rule bodies join them
        through this accessor.
        """
        facts = self._facts.get((name, key))
        if not facts:
            return None
        times = self._fact_times[(name, key)]
        i = bisect.bisect_left(times, t)
        if i < len(times) and times[i] == t:
            return facts[i].value
        return None

    def fact_latest(self, name: str, key: FluentKey, t: int) -> Optional[Any]:
        """Most recent value of input fluent ``name(key)`` at or before
        ``t``, or ``None`` if no fact has been recorded yet."""
        facts = self._facts.get((name, key))
        if not facts:
            return None
        times = self._fact_times[(name, key)]
        i = bisect.bisect_right(times, t)
        if i == 0:
            return None
        return facts[i - 1].value

    def fact_keys(self, name: str) -> list[FluentKey]:
        """All groundings of input fluent ``name`` seen in the window."""
        return [key for (n, key) in self._facts if n == name]

    def param(self, name: str) -> Any:
        """A tunable parameter (threshold) by dotted name."""
        return self._params[name]

    def events_columns(self, event_type: str, spec) -> Any:
        """A columnar view over :meth:`events` of ``event_type``.

        Compiled rule bodies call this instead of iterating event
        objects.  When the engine attached a mirror-backed source for
        the type (and its declared columns cover ``spec``), the view is
        the struct-of-arrays mirror slice — no per-event Python work.
        Otherwise a list-backed view is built from the object sequence
        and memoised for the rest of the query, so every caller sees
        the same rows as :meth:`events` in the same order.
        """
        if self._columns is not None:
            source = self._columns.get(event_type)
            if source is not None:
                view = source.view()
                if view.covers(spec):
                    return view
        memo_key = ("__columns__", event_type, spec)
        view = self.memo.get(memo_key)
        if view is None:
            from .columns import ListColumnView

            view = ListColumnView(self.events(event_type), spec)
            self.memo[memo_key] = view
        return view

    # -- intermediate results ------------------------------------------
    def derived(self, event_type: str) -> Sequence[Occurrence]:
        """Occurrences of an already-evaluated derived event."""
        return self._occurrences.get(event_type, ())

    def fluent(self, name: str) -> Mapping[FluentKey, IntervalList]:
        """All computed interval lists of fluent ``name`` this cycle."""
        return self._fluents.get(name, {})

    def intervals(self, name: str, key: FluentKey) -> IntervalList:
        """``holdsFor(F=V, I)`` for an already-evaluated fluent."""
        return self._fluents.get(name, {}).get(key, IntervalList.empty())

    def holds_at(self, name: str, key: FluentKey, t: int) -> bool:
        """``holdsAt(F=V, T)`` for an already-evaluated fluent."""
        return self.intervals(name, key).holds_at(t)

    def value_at(self, name: str, key: FluentKey, t: int) -> Any:
        """The value a multi-valued fluent holds at ``t`` (or ``None``).

        Valued fluents are stored under ``key + (value,)``; this scans
        the groundings extending ``key`` and returns the value whose
        intervals cover ``t``.
        """
        for stored_key, intervals in self._fluents.get(name, {}).items():
            if stored_key[:-1] == key and intervals.holds_at(t):
                return stored_key[-1]
        return None

    # -- used by the engine --------------------------------------------
    def _store_occurrences(
        self, event_type: str, occurrences: list[Occurrence]
    ) -> None:
        self._occurrences[event_type] = occurrences

    def _store_fluent(
        self, name: str, intervals: dict[FluentKey, IntervalList]
    ) -> None:
        self._fluents[name] = intervals


class Definition(abc.ABC):
    """Base class for CE/fluent definitions.

    ``name`` identifies the defined event type or fluent; ``depends_on``
    lists the names of *other definitions* the rule bodies read, which
    the engine uses to stratify evaluation (RTEC requires hierarchical
    definitions).
    """

    def __init__(self, name: str, depends_on: Iterable[str] = ()):
        self.name = name
        self.depends_on = tuple(depends_on)

    def incremental_spec(self, params: Mapping[str, Any]):
        """Declare how output points depend on raw inputs (or ``None``).

        Returning an :class:`repro.core.incremental.IncrementalSpec`
        lets the incremental engine reuse this definition's cached
        points across overlapping windows; the default ``None`` keeps
        the definition on the full-recompute path, which is always
        semantically safe.
        """
        return None

    def compiled(self, params: Mapping[str, Any]):
        """A vectorised evaluator for this rule body (or ``None``).

        Returning a :class:`repro.core.compiled.CompiledRule` lets the
        engine lower this definition's point derivation to array
        operations over columnar views; the returned object must
        produce exactly the streams the interpreted body would (the
        parity suite pins this).  The default ``None`` keeps the
        definition on the interpreter, which is always safe —
        anything the compiler can't express simply stays there.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class DerivedEvent(Definition):
    """A CE defined as instantaneous event instances (``happensAt``)."""

    @abc.abstractmethod
    def occurrences(self, ctx: RuleContext) -> Iterable[Occurrence]:
        """Yield the recognised occurrences inside the window."""


class SimpleFluent(Definition):
    """A fluent defined by initiation/termination rules plus inertia.

    The engine collects the ``initiatedAt`` / ``terminatedAt``
    time-points per grounding and builds maximal intervals with
    :func:`repro.core.intervals.make_intervals`, seeding the value at
    the window's left edge from the previous evaluation cycle.
    """

    @abc.abstractmethod
    def initiations(
        self, ctx: RuleContext
    ) -> Iterable[tuple[FluentKey, int]]:
        """Yield ``(grounding, T)`` pairs where ``initiatedAt`` holds."""

    @abc.abstractmethod
    def terminations(
        self, ctx: RuleContext
    ) -> Iterable[tuple[FluentKey, int]]:
        """Yield ``(grounding, T)`` pairs where ``terminatedAt`` holds."""


class StaticFluent(Definition):
    """A statically-determined fluent (interval manipulation)."""

    @abc.abstractmethod
    def derive(self, ctx: RuleContext) -> Mapping[FluentKey, IntervalList]:
        """Return the interval list per grounding for this window."""


class ValuedFluent(Definition):
    """A multi-valued simple fluent — full ``F = V`` semantics.

    RTEC fluents range over arbitrary value sets: ``holdsFor(F=V, I)``
    gives the maximal intervals per *value*, and initiating ``F = V``
    implicitly terminates every other value (a fluent holds one value
    at a time).  The engine stores the result under the grounding
    ``key + (value,)`` so ``ctx.intervals(name, key + (value,))`` works
    like for boolean fluents; :meth:`RuleContext.value_at` returns the
    value held at a time-point.

    Determinism note: if several distinct values are initiated for the
    same grounding at the same time-point, the largest (by ``sorted``
    order) wins; an explicit termination at the same point is applied
    first.
    """

    @abc.abstractmethod
    def initiations(
        self, ctx: RuleContext
    ) -> Iterable[tuple[FluentKey, Any, int]]:
        """Yield ``(grounding, value, T)`` where ``initiatedAt(F=V,T)``."""

    @abc.abstractmethod
    def terminations(
        self, ctx: RuleContext
    ) -> Iterable[tuple[FluentKey, Any, int]]:
        """Yield ``(grounding, value, T)`` where ``terminatedAt(F=V,T)``."""


class FunctionalValuedFluent(ValuedFluent):
    """A :class:`ValuedFluent` backed by two plain functions."""

    def __init__(
        self,
        name: str,
        initiated: Callable[[RuleContext], Iterable[tuple[FluentKey, Any, int]]],
        terminated: Callable[[RuleContext], Iterable[tuple[FluentKey, Any, int]]],
        depends_on: Iterable[str] = (),
    ):
        super().__init__(name, depends_on)
        self._initiated = initiated
        self._terminated = terminated

    def initiations(self, ctx: RuleContext):
        return self._initiated(ctx)

    def terminations(self, ctx: RuleContext):
        return self._terminated(ctx)


# ----------------------------------------------------------------------
# Convenience adaptors for quick, function-based definitions
# ----------------------------------------------------------------------
class FunctionalEvent(DerivedEvent):
    """A :class:`DerivedEvent` backed by a plain function."""

    def __init__(
        self,
        name: str,
        fn: Callable[[RuleContext], Iterable[Occurrence]],
        depends_on: Iterable[str] = (),
    ):
        super().__init__(name, depends_on)
        self._fn = fn

    def occurrences(self, ctx: RuleContext) -> Iterable[Occurrence]:
        return self._fn(ctx)


class FunctionalSimpleFluent(SimpleFluent):
    """A :class:`SimpleFluent` backed by two plain functions."""

    def __init__(
        self,
        name: str,
        initiated: Callable[[RuleContext], Iterable[tuple[FluentKey, int]]],
        terminated: Callable[[RuleContext], Iterable[tuple[FluentKey, int]]],
        depends_on: Iterable[str] = (),
    ):
        super().__init__(name, depends_on)
        self._initiated = initiated
        self._terminated = terminated

    def initiations(self, ctx: RuleContext) -> Iterable[tuple[FluentKey, int]]:
        return self._initiated(ctx)

    def terminations(self, ctx: RuleContext) -> Iterable[tuple[FluentKey, int]]:
        return self._terminated(ctx)


class FunctionalStaticFluent(StaticFluent):
    """A :class:`StaticFluent` backed by a plain function."""

    def __init__(
        self,
        name: str,
        fn: Callable[[RuleContext], Mapping[FluentKey, IntervalList]],
        depends_on: Iterable[str] = (),
    ):
        super().__init__(name, depends_on)
        self._fn = fn

    def derive(self, ctx: RuleContext) -> Mapping[FluentKey, IntervalList]:
        return self._fn(ctx)


def stratify(definitions: Sequence[Definition]) -> list[Definition]:
    """Topologically sort definitions by their ``depends_on`` edges.

    Dependencies naming input event types (not present among the
    definitions) are ignored — inputs are stratum zero by construction.
    Raises :class:`ValueError` on cyclic or duplicate definitions.
    """
    by_name: dict[str, Definition] = {}
    for d in definitions:
        if d.name in by_name:
            raise ValueError(f"duplicate definition name: {d.name!r}")
        by_name[d.name] = d

    ordered: list[Definition] = []
    state: dict[str, int] = defaultdict(int)  # 0=unseen, 1=visiting, 2=done

    def visit(name: str, chain: tuple[str, ...]) -> None:
        if name not in by_name or state[name] == 2:
            return
        if state[name] == 1:
            cycle = " -> ".join(chain + (name,))
            raise ValueError(f"cyclic definitions: {cycle}")
        state[name] = 1
        for dep in by_name[name].depends_on:
            visit(dep, chain + (name,))
        state[name] = 2
        ordered.append(by_name[name])

    for d in definitions:
        visit(d.name, ())
    return ordered
