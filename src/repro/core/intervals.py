"""Maximal-interval algebra for the RTEC reproduction.

RTEC (the Event Calculus for Run-Time reasoning) represents the periods
during which a fluent continuously holds as a *list of maximal
intervals* and defines statically-determined fluents through three
interval-manipulation constructs: ``union_all``, ``intersect_all`` and
``relative_complement_all`` (paper, Table 1).  This module implements
those constructs together with the machinery needed by simple fluents:
turning initiation/termination time-points into maximal intervals under
the law of inertia.

Conventions
-----------
* Time is discrete (integers).
* An interval is a half-open pair ``(start, end)`` meaning the fluent
  holds at every time-point ``t`` with ``start <= t < end``.
* ``end`` may be ``None``, meaning the interval is *open*: the fluent
  still holds at the right edge of the evaluation window (RTEC reports
  such intervals as extending to the query time).
* An initiation at time ``t`` makes the fluent hold from ``t + 1``
  onwards; a termination at ``t`` makes it cease from ``t + 1`` onwards.
  This mirrors the Event Calculus convention that effects of an event
  hold strictly after its occurrence.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence
from typing import Optional

#: Effects of an initiation/termination apply this many time-points
#: after the triggering event (Event Calculus convention).
EFFECT_DELAY = 1

Interval = tuple[int, Optional[int]]


def _end_sort_key(end: Optional[int]) -> float:
    """Map an interval end to a sortable number (``None`` = +infinity)."""
    return math.inf if end is None else end


class IntervalList:
    """An immutable, normalised list of maximal half-open intervals.

    Normalised means: intervals are non-empty, sorted by start, pairwise
    disjoint, and non-adjacent (touching intervals are merged into one
    maximal interval).  At most one interval may have ``end=None`` and,
    if present, it is the last one.
    """

    __slots__ = ("_ivs",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        self._ivs: tuple[Interval, ...] = _normalise(intervals)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "IntervalList":
        """The empty list of intervals (fluent never holds)."""
        return _EMPTY

    @classmethod
    def single(cls, start: int, end: Optional[int]) -> "IntervalList":
        """A list holding one interval ``[start, end)``."""
        return cls(((start, end),))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def intervals(self) -> tuple[Interval, ...]:
        """The underlying tuple of ``(start, end)`` pairs."""
        return self._ivs

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __len__(self) -> int:
        return len(self._ivs)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalList):
            return NotImplemented
        return self._ivs == other._ivs

    def __hash__(self) -> int:
        return hash(self._ivs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(
            f"[{s}, {'∞' if e is None else e})" for s, e in self._ivs
        )
        return f"IntervalList({body})"

    def holds_at(self, t: int) -> bool:
        """Return whether the fluent holds at time-point ``t``.

        Implements ``holdsAt(F=V, T)``: true iff ``T`` belongs to one of
        the maximal intervals (paper, Table 1).
        """
        return self.interval_at(t) is not None

    def interval_at(self, t: int) -> Optional[Interval]:
        """The maximal interval containing ``t``, or ``None``.

        Used by the engine to carry an episode's historical start
        across overlapping windows (RTEC's interval retention).
        """
        for start, end in self._ivs:
            if t < start:
                return None
            if end is None or t < end:
                return (start, end)
        return None

    def first_start(self) -> Optional[int]:
        """Start of the earliest interval, or ``None`` if empty."""
        return self._ivs[0][0] if self._ivs else None

    def last_end(self) -> Optional[int]:
        """End of the latest interval (``None`` if open or empty)."""
        return self._ivs[-1][1] if self._ivs else None

    def total_duration(self, horizon: Optional[int] = None) -> int:
        """Total number of time-points covered, up to ``horizon``.

        Open intervals require a ``horizon`` to be measurable; without
        one a :class:`ValueError` is raised when an open interval is
        present.
        """
        total = 0
        for start, end in self._ivs:
            if end is None:
                if horizon is None:
                    raise ValueError(
                        "cannot measure an open interval without a horizon"
                    )
                end = horizon
            if horizon is not None:
                end = min(end, horizon)
            if end > start:
                total += end - start
        return total

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def union(self, other: "IntervalList") -> "IntervalList":
        """Pointwise disjunction of two interval lists."""
        return IntervalList(self._ivs + other._ivs)

    def intersect(self, other: "IntervalList") -> "IntervalList":
        """Pointwise conjunction of two interval lists."""
        out: list[Interval] = []
        a, b = self._ivs, other._ivs
        i = j = 0
        while i < len(a) and j < len(b):
            start = max(a[i][0], b[j][0])
            end_a = _end_sort_key(a[i][1])
            end_b = _end_sort_key(b[j][1])
            end = min(end_a, end_b)
            if start < end:
                out.append((start, None if end is math.inf else int(end)))
            if end_a <= end_b:
                i += 1
            else:
                j += 1
        return IntervalList(out)

    def complement(self, window_start: int, window_end: Optional[int]) -> "IntervalList":
        """Intervals within ``[window_start, window_end)`` where the
        fluent does *not* hold."""
        out: list[Interval] = []
        cursor: float = window_start
        limit = _end_sort_key(window_end)
        for start, end in self._ivs:
            if _end_sort_key(end) <= cursor:
                continue
            if start >= limit:
                break
            if start > cursor:
                out.append((int(cursor), min(start, int(limit)) if limit is not math.inf else start))
            cursor = max(cursor, _end_sort_key(end))
            if cursor >= limit:
                break
        if cursor < limit:
            out.append(
                (int(cursor), None if window_end is None else window_end)
            )
        return IntervalList(out)

    def relative_complement(
        self, others: Sequence["IntervalList"]
    ) -> "IntervalList":
        """``relative_complement_all``: portions of *self* not covered
        by any interval of any list in ``others`` (paper, Table 1)."""
        if not self._ivs:
            return _EMPTY
        covered = union_all(others)
        if not covered:
            return self
        # Clip the complement of `covered` to self's extent, then
        # intersect with self.
        lo = self._ivs[0][0]
        hi = self._ivs[-1][1]
        return self.intersect(covered.complement(lo, hi))

    def clip(self, window_start: int, window_end: Optional[int]) -> "IntervalList":
        """Restrict the intervals to ``[window_start, window_end)``.

        Used when sliding the working memory: RTEC discards everything
        before ``Q_i - WM``.
        """
        window = IntervalList.single(window_start, window_end)
        return self.intersect(window)

    def close(self, at: int) -> "IntervalList":
        """Replace an open right end with the concrete bound ``at``.

        RTEC reports ongoing fluents as holding up to the query time;
        ``close`` materialises that choice for duration accounting.
        """
        if not self._ivs or self._ivs[-1][1] is not None:
            return self
        ivs = list(self._ivs)
        start, _ = ivs[-1]
        if at <= start:
            ivs.pop()
        else:
            ivs[-1] = (start, at)
        return IntervalList(ivs)


def _normalise(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
    """Sort, drop empties, and merge overlapping/adjacent intervals."""
    cleaned = [
        (s, e)
        for s, e in intervals
        if e is None or e > s
    ]
    if not cleaned:
        return ()
    cleaned.sort(key=lambda iv: (iv[0], _end_sort_key(iv[1])))
    merged: list[Interval] = [cleaned[0]]
    for start, end in cleaned[1:]:
        last_start, last_end = merged[-1]
        if last_end is None:
            break  # an open interval swallows everything after it
        if start <= last_end:
            if end is None or end > last_end:
                merged[-1] = (last_start, end)
        else:
            merged.append((start, end))
    return tuple(merged)


_EMPTY = IntervalList.__new__(IntervalList)
_EMPTY._ivs = ()


# ----------------------------------------------------------------------
# RTEC interval-manipulation constructs (paper, Table 1)
# ----------------------------------------------------------------------
def union_all(lists: Sequence[IntervalList]) -> IntervalList:
    """``union_all(L, I)``: maximal intervals of the union of ``L``."""
    all_ivs: list[Interval] = []
    for lst in lists:
        all_ivs.extend(lst.intervals)
    return IntervalList(all_ivs)


def intersect_all(lists: Sequence[IntervalList]) -> IntervalList:
    """``intersect_all(L, I)``: maximal intervals of the intersection."""
    if not lists:
        return IntervalList.empty()
    result = lists[0]
    for lst in lists[1:]:
        if not result:
            break
        result = result.intersect(lst)
    return result


def relative_complement_all(
    primary: IntervalList, others: Sequence[IntervalList]
) -> IntervalList:
    """``relative_complement_all(I', L, I)`` (paper, Table 1).

    ``I`` is the part of ``I'`` not covered by any list in ``L``.  The
    paper uses this to define ``sourceDisagreement``: bus-reported
    congestion intervals minus SCATS-reported congestion intervals.
    """
    return primary.relative_complement(others)


def count_threshold(lists: Sequence[IntervalList], n: int) -> IntervalList:
    """Intervals during which at least ``n`` of ``lists`` hold.

    Supports the paper's intersection-congestion definition: "a SCATS
    intersection is congested if at least n (n > 1) of its sensors are
    congested" (Section 4.3).  Implemented as a boundary sweep.
    """
    if n <= 0:
        raise ValueError("count threshold must be positive")
    if len(lists) < n:
        return IntervalList.empty()
    deltas: list[tuple[float, int]] = []
    for lst in lists:
        for start, end in lst:
            deltas.append((start, +1))
            deltas.append((_end_sort_key(end), -1))
    deltas.sort(key=lambda d: (d[0], -d[1]))
    out: list[Interval] = []
    active = 0
    open_start: Optional[float] = None
    for point, delta in deltas:
        prev = active
        active += delta
        if prev < n <= active:
            open_start = point
        elif prev >= n > active and open_start is not None:
            if point > open_start:
                out.append(
                    (int(open_start), None if point is math.inf else int(point))
                )
            open_start = None
    if open_start is not None and open_start is not math.inf:
        out.append((int(open_start), None))
    return IntervalList(out)


# ----------------------------------------------------------------------
# Simple-fluent interval construction (law of inertia)
# ----------------------------------------------------------------------
def make_intervals(
    initiations: Iterable[int],
    terminations: Iterable[int],
    *,
    holding_at_start: bool = False,
    window_start: int = 0,
) -> IntervalList:
    """Build the maximal intervals of a simple fluent.

    Given the time-points at which ``initiatedAt`` and ``terminatedAt``
    hold inside the current window, produce the maximal intervals during
    which the fluent holds, applying the law of inertia: once initiated
    at ``t`` the fluent holds from ``t + EFFECT_DELAY`` until the first
    later termination point ``t'`` (ceasing at ``t' + EFFECT_DELAY``).

    ``holding_at_start`` seeds the state at the window's left edge from
    the previous evaluation cycle, which is how inertia is carried
    across overlapping windows.

    Tie-break: if the same time-point both initiates and terminates the
    fluent, termination wins (the fluent does not (re)start there).
    """
    init_set = set(initiations)
    term_set = set(terminations)
    points = sorted(init_set | term_set)

    out: list[Interval] = []
    holding = holding_at_start
    current_start: Optional[int] = window_start if holding else None
    for t in points:
        terminates = t in term_set
        initiates = t in init_set and not terminates
        if holding and terminates:
            end = t + EFFECT_DELAY
            assert current_start is not None
            if end > current_start:
                out.append((current_start, end))
            holding = False
            current_start = None
        elif not holding and initiates:
            holding = True
            current_start = t + EFFECT_DELAY
    if holding and current_start is not None:
        out.append((current_start, None))
    return IntervalList(out)
