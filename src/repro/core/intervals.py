"""Maximal-interval algebra for the RTEC reproduction.

RTEC (the Event Calculus for Run-Time reasoning) represents the periods
during which a fluent continuously holds as a *list of maximal
intervals* and defines statically-determined fluents through three
interval-manipulation constructs: ``union_all``, ``intersect_all`` and
``relative_complement_all`` (paper, Table 1).  This module implements
those constructs together with the machinery needed by simple fluents:
turning initiation/termination time-points into maximal intervals under
the law of inertia.

Conventions
-----------
* Time is discrete (integers).
* An interval is a half-open pair ``(start, end)`` meaning the fluent
  holds at every time-point ``t`` with ``start <= t < end``.
* ``end`` may be ``None``, meaning the interval is *open*: the fluent
  still holds at the right edge of the evaluation window (RTEC reports
  such intervals as extending to the query time).
* An initiation at time ``t`` makes the fluent hold from ``t + 1``
  onwards; a termination at ``t`` makes it cease from ``t + 1`` onwards.
  This mirrors the Event Calculus convention that effects of an event
  hold strictly after its occurrence.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence
from heapq import merge as _heap_merge
from typing import Optional

#: Effects of an initiation/termination apply this many time-points
#: after the triggering event (Event Calculus convention).
EFFECT_DELAY = 1

Interval = tuple[int, Optional[int]]


def _end_sort_key(end: Optional[int]) -> float:
    """Map an interval end to a sortable number (``None`` = +infinity)."""
    return math.inf if end is None else end


class IntervalList:
    """An immutable, normalised list of maximal half-open intervals.

    Normalised means: intervals are non-empty, sorted by start, pairwise
    disjoint, and non-adjacent (touching intervals are merged into one
    maximal interval).  At most one interval may have ``end=None`` and,
    if present, it is the last one.
    """

    __slots__ = ("_ivs",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        self._ivs: tuple[Interval, ...] = _normalise(intervals)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "IntervalList":
        """The empty list of intervals (fluent never holds)."""
        return _EMPTY

    @classmethod
    def single(cls, start: int, end: Optional[int]) -> "IntervalList":
        """A list holding one interval ``[start, end)``."""
        return cls(((start, end),))

    @classmethod
    def _from_normalised(cls, intervals: tuple[Interval, ...]) -> "IntervalList":
        """Wrap a tuple that is *known* to be in normal form.

        The trusted constructor behind the algebra's fast paths: the
        sweep algorithms below emit their output already sorted,
        disjoint and non-adjacent, so re-running :func:`_normalise`
        (a sort plus a merge pass) on it would be pure overhead on the
        engine's hottest path.  Callers must guarantee normal form —
        the property-based tests assert every algebra result is a
        normalisation fixpoint.
        """
        if not intervals:
            return _EMPTY
        out = cls.__new__(cls)
        out._ivs = intervals
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def intervals(self) -> tuple[Interval, ...]:
        """The underlying tuple of ``(start, end)`` pairs."""
        return self._ivs

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __len__(self) -> int:
        return len(self._ivs)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalList):
            return NotImplemented
        return self._ivs == other._ivs

    def __hash__(self) -> int:
        return hash(self._ivs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(
            f"[{s}, {'∞' if e is None else e})" for s, e in self._ivs
        )
        return f"IntervalList({body})"

    def holds_at(self, t: int) -> bool:
        """Return whether the fluent holds at time-point ``t``.

        Implements ``holdsAt(F=V, T)``: true iff ``T`` belongs to one of
        the maximal intervals (paper, Table 1).
        """
        return self.interval_at(t) is not None

    def interval_at(self, t: int) -> Optional[Interval]:
        """The maximal interval containing ``t``, or ``None``.

        Used by the engine to carry an episode's historical start
        across overlapping windows (RTEC's interval retention).
        """
        for start, end in self._ivs:
            if t < start:
                return None
            if end is None or t < end:
                return (start, end)
        return None

    def first_start(self) -> Optional[int]:
        """Start of the earliest interval, or ``None`` if empty."""
        return self._ivs[0][0] if self._ivs else None

    def last_end(self) -> Optional[int]:
        """End of the latest interval (``None`` if open or empty)."""
        return self._ivs[-1][1] if self._ivs else None

    def total_duration(self, horizon: Optional[int] = None) -> int:
        """Total number of time-points covered, up to ``horizon``.

        Open intervals require a ``horizon`` to be measurable; without
        one a :class:`ValueError` is raised when an open interval is
        present.
        """
        total = 0
        for start, end in self._ivs:
            if end is None:
                if horizon is None:
                    raise ValueError(
                        "cannot measure an open interval without a horizon"
                    )
                end = horizon
            if horizon is not None:
                end = min(end, horizon)
            if end > start:
                total += end - start
        return total

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def union(self, other: "IntervalList") -> "IntervalList":
        """Pointwise disjunction of two interval lists."""
        return union_all((self, other))

    def intersect(self, other: "IntervalList") -> "IntervalList":
        """Pointwise conjunction of two interval lists.

        The two-pointer sweep over two normal-form inputs emits its
        output already in normal form: pieces are ordered by start and
        a piece boundary always coincides with a gap in one of the
        inputs, so no two pieces can touch.
        """
        out: list[Interval] = []
        a, b = self._ivs, other._ivs
        i = j = 0
        while i < len(a) and j < len(b):
            start = max(a[i][0], b[j][0])
            end_a = _end_sort_key(a[i][1])
            end_b = _end_sort_key(b[j][1])
            end = min(end_a, end_b)
            if start < end:
                out.append((start, None if end is math.inf else int(end)))
            if end_a <= end_b:
                i += 1
            else:
                j += 1
        return IntervalList._from_normalised(tuple(out))

    def complement(self, window_start: int, window_end: Optional[int]) -> "IntervalList":
        """Intervals within ``[window_start, window_end)`` where the
        fluent does *not* hold."""
        out: list[Interval] = []
        cursor: float = window_start
        limit = _end_sort_key(window_end)
        for start, end in self._ivs:
            if _end_sort_key(end) <= cursor:
                continue
            if start >= limit:
                break
            if start > cursor:
                out.append((int(cursor), min(start, int(limit)) if limit is not math.inf else start))
            cursor = max(cursor, _end_sort_key(end))
            if cursor >= limit:
                break
        if cursor < limit:
            out.append(
                (int(cursor), None if window_end is None else window_end)
            )
        # The gaps of a normal-form list are themselves in normal form:
        # consecutive gaps are separated by a non-empty interval.
        return IntervalList._from_normalised(tuple(out))

    def relative_complement(
        self, others: Sequence["IntervalList"]
    ) -> "IntervalList":
        """``relative_complement_all``: portions of *self* not covered
        by any interval of any list in ``others`` (paper, Table 1).

        Implemented as a direct two-pointer subtraction against the
        union of ``others`` — one pass over each list instead of the
        complement-then-intersect detour.
        """
        if not self._ivs:
            return _EMPTY
        covered = union_all(others)
        c = covered._ivs
        if not c:
            return self
        out: list[Interval] = []
        n = len(c)
        j = 0
        for start, end in self._ivs:
            cursor = start
            open_ended = end is None
            # Skip covering intervals that end at or before this piece.
            while j < n and c[j][1] is not None and c[j][1] <= cursor:
                j += 1
            k = j
            clipped = False
            while k < n:
                c_start, c_end = c[k]
                if not open_ended and c_start >= end:
                    break
                if c_start > cursor:
                    out.append((cursor, c_start))
                if c_end is None:
                    # Covered to infinity: nothing of this (or any
                    # later) piece survives past c_start.
                    return IntervalList._from_normalised(tuple(out))
                if c_end > cursor:
                    cursor = c_end
                if not open_ended and c_end >= end:
                    clipped = True
                    break
                k += 1
            if not clipped and (open_ended or cursor < end):
                out.append((cursor, end))
        return IntervalList._from_normalised(tuple(out))

    def clip(self, window_start: int, window_end: Optional[int]) -> "IntervalList":
        """Restrict the intervals to ``[window_start, window_end)``.

        Used when sliding the working memory: RTEC discards everything
        before ``Q_i - WM``.
        """
        window = IntervalList.single(window_start, window_end)
        return self.intersect(window)

    def close(self, at: int) -> "IntervalList":
        """Replace an open right end with the concrete bound ``at``.

        RTEC reports ongoing fluents as holding up to the query time;
        ``close`` materialises that choice for duration accounting.
        """
        if not self._ivs or self._ivs[-1][1] is not None:
            return self
        ivs = list(self._ivs)
        start, _ = ivs[-1]
        if at <= start:
            ivs.pop()
        else:
            ivs[-1] = (start, at)
        return IntervalList(ivs)


def _is_normalised(intervals: Sequence[Interval]) -> bool:
    """Whether a sequence is already in normal form (sorted, non-empty,
    disjoint, non-adjacent, open interval only at the end)."""
    prev_end = 0
    for i, (start, end) in enumerate(intervals):
        if i:
            if prev_end is None or start <= prev_end:
                return False
        if end is not None and end <= start:
            return False
        prev_end = end
    return True


def _normalise(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
    """Sort, drop empties, and merge overlapping/adjacent intervals."""
    if not isinstance(intervals, tuple):
        intervals = tuple(intervals)
    # Fast path: inputs that are already in normal form (the common
    # case when one IntervalList is rebuilt from another's intervals)
    # skip the sort-and-merge entirely.
    if _is_normalised(intervals):
        return intervals
    cleaned = [
        (s, e)
        for s, e in intervals
        if e is None or e > s
    ]
    if not cleaned:
        return ()
    cleaned.sort(key=lambda iv: (iv[0], _end_sort_key(iv[1])))
    merged: list[Interval] = [cleaned[0]]
    for start, end in cleaned[1:]:
        last_start, last_end = merged[-1]
        if last_end is None:
            break  # an open interval swallows everything after it
        if start <= last_end:
            if end is None or end > last_end:
                merged[-1] = (last_start, end)
        else:
            merged.append((start, end))
    return tuple(merged)


_EMPTY = IntervalList.__new__(IntervalList)
_EMPTY._ivs = ()


# ----------------------------------------------------------------------
# RTEC interval-manipulation constructs (paper, Table 1)
# ----------------------------------------------------------------------
def union_all(lists: Sequence[IntervalList]) -> IntervalList:
    """``union_all(L, I)``: maximal intervals of the union of ``L``.

    Every input is already sorted (IntervalLists are normalised on
    construction), so instead of concatenating and re-sorting, the
    sorted runs are k-way merged and fused in a single pass —
    ``O(n log k)`` for ``n`` total intervals over ``k`` lists.
    """
    runs = [lst._ivs for lst in lists if lst._ivs]
    if not runs:
        return IntervalList.empty()
    if len(runs) == 1:
        return IntervalList._from_normalised(runs[0])
    out: list[Interval] = []
    for start, end in _heap_merge(
        *runs, key=lambda iv: (iv[0], _end_sort_key(iv[1]))
    ):
        if out:
            last_start, last_end = out[-1]
            if last_end is None:
                break  # an open interval swallows everything after it
            if start <= last_end:
                if end is None or end > last_end:
                    out[-1] = (last_start, end)
                continue
        out.append((start, end))
    return IntervalList._from_normalised(tuple(out))


def intersect_all(lists: Sequence[IntervalList]) -> IntervalList:
    """``intersect_all(L, I)``: maximal intervals of the intersection."""
    if not lists:
        return IntervalList.empty()
    result = lists[0]
    for lst in lists[1:]:
        if not result:
            break
        result = result.intersect(lst)
    return result


def relative_complement_all(
    primary: IntervalList, others: Sequence[IntervalList]
) -> IntervalList:
    """``relative_complement_all(I', L, I)`` (paper, Table 1).

    ``I`` is the part of ``I'`` not covered by any list in ``L``.  The
    paper uses this to define ``sourceDisagreement``: bus-reported
    congestion intervals minus SCATS-reported congestion intervals.
    """
    return primary.relative_complement(others)


def count_threshold(lists: Sequence[IntervalList], n: int) -> IntervalList:
    """Intervals during which at least ``n`` of ``lists`` hold.

    Supports the paper's intersection-congestion definition: "a SCATS
    intersection is congested if at least n (n > 1) of its sensors are
    congested" (Section 4.3).  Implemented as a boundary sweep.
    """
    if n <= 0:
        raise ValueError("count threshold must be positive")
    if len(lists) < n:
        return IntervalList.empty()
    deltas: list[tuple[float, int]] = []
    for lst in lists:
        for start, end in lst:
            deltas.append((start, +1))
            deltas.append((_end_sort_key(end), -1))
    deltas.sort(key=lambda d: (d[0], -d[1]))
    out: list[Interval] = []
    active = 0
    open_start: Optional[float] = None
    for point, delta in deltas:
        prev = active
        active += delta
        if prev < n <= active:
            open_start = point
        elif prev >= n > active and open_start is not None:
            if point > open_start:
                out.append(
                    (int(open_start), None if point is math.inf else int(point))
                )
            open_start = None
    if open_start is not None and open_start is not math.inf:
        out.append((int(open_start), None))
    return IntervalList(out)


# ----------------------------------------------------------------------
# Simple-fluent interval construction (law of inertia)
# ----------------------------------------------------------------------
def make_intervals(
    initiations: Iterable[int],
    terminations: Iterable[int],
    *,
    holding_at_start: bool = False,
    window_start: int = 0,
) -> IntervalList:
    """Build the maximal intervals of a simple fluent.

    Given the time-points at which ``initiatedAt`` and ``terminatedAt``
    hold inside the current window, produce the maximal intervals during
    which the fluent holds, applying the law of inertia: once initiated
    at ``t`` the fluent holds from ``t + EFFECT_DELAY`` until the first
    later termination point ``t'`` (ceasing at ``t' + EFFECT_DELAY``).

    ``holding_at_start`` seeds the state at the window's left edge from
    the previous evaluation cycle, which is how inertia is carried
    across overlapping windows.

    Tie-break: if the same time-point both initiates and terminates the
    fluent, termination wins (the fluent does not (re)start there).
    """
    init_set = set(initiations)
    term_set = set(terminations)
    points = sorted(init_set | term_set)

    out: list[Interval] = []
    holding = holding_at_start
    current_start: Optional[int] = window_start if holding else None
    for t in points:
        terminates = t in term_set
        initiates = t in init_set and not terminates
        if holding and terminates:
            end = t + EFFECT_DELAY
            assert current_start is not None
            if end > current_start:
                out.append((current_start, end))
            holding = False
            current_start = None
        elif not holding and initiates:
            holding = True
            current_start = t + EFFECT_DELAY
    if holding and current_start is not None:
        out.append((current_start, None))
    # Pieces are emitted in point order and a new episode can only
    # start strictly after the previous one ended (the state machine
    # must pass through a later initiation point first), so the output
    # is already in normal form.
    return IntervalList._from_normalised(tuple(out))
