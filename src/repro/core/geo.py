"""Small geographic helpers shared by the traffic CE rules.

The paper's rules use an atemporal ``close/4`` predicate "computing the
distance between two points and comparing them against a threshold"
(Section 4.3).  City-scale distances are computed with an
equirectangular approximation, which is accurate to well under a metre
over the few hundred metres the ``close`` predicate cares about.
"""

from __future__ import annotations

import math

#: Mean Earth radius in metres.
EARTH_RADIUS_M = 6_371_000.0


def distance_m(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Distance in metres between two WGS84 points (equirectangular)."""
    mean_lat = math.radians((lat1 + lat2) / 2.0)
    dx = math.radians(lon2 - lon1) * math.cos(mean_lat)
    dy = math.radians(lat2 - lat1)
    return EARTH_RADIUS_M * math.hypot(dx, dy)


def close(
    lon1: float,
    lat1: float,
    lon2: float,
    lat2: float,
    radius_m: float,
) -> bool:
    """The paper's ``close`` predicate: within ``radius_m`` metres."""
    return distance_m(lon1, lat1, lon2, lat2) <= radius_m


class SpatialGrid:
    """A uniform lon/lat grid index for radius queries.

    The bus rules repeatedly ask "which SCATS intersections is this bus
    close to?"; a linear scan over ~1000 intersections per ``move`` SDE
    would dominate recognition time, so intersections are bucketed into
    grid cells roughly the size of the query radius.
    """

    def __init__(self, radius_m: float, reference_lat: float):
        if radius_m <= 0:
            raise ValueError("radius must be positive")
        self.radius_m = radius_m
        # Cell size in degrees, chosen so one cell spans ~radius metres.
        self._dlat = math.degrees(radius_m / EARTH_RADIUS_M)
        cos_lat = max(math.cos(math.radians(reference_lat)), 1e-6)
        self._dlon = self._dlat / cos_lat
        self._cells: dict[tuple[int, int], list[tuple[object, float, float]]] = {}

    def _cell(self, lon: float, lat: float) -> tuple[int, int]:
        return (math.floor(lon / self._dlon), math.floor(lat / self._dlat))

    def insert(self, item: object, lon: float, lat: float) -> None:
        """Index ``item`` at position ``(lon, lat)``."""
        self._cells.setdefault(self._cell(lon, lat), []).append(
            (item, lon, lat)
        )

    def near(self, lon: float, lat: float) -> list[object]:
        """All items within ``radius_m`` metres of ``(lon, lat)``."""
        cx, cy = self._cell(lon, lat)
        found = []
        for gx in (cx - 1, cx, cx + 1):
            for gy in (cy - 1, cy, cy + 1):
                for item, ilon, ilat in self._cells.get((gx, gy), ()):
                    if distance_m(lon, lat, ilon, ilat) <= self.radius_m:
                        found.append(item)
        return found
