"""Graph kernels for traffic-flow regression (paper, Section 6).

The latent traffic flows at the junctions of the street graph ``G`` are
modelled as a Gaussian Process whose covariance is tied to the network
structure: adjacent junctions are highly correlated.  Lacking
preferred-route knowledge, the paper opts "for the commonly used
regularized Laplacian kernel function" (equation 16)::

    K = [ β (L + I/α²) ]⁻¹

where ``L = D − A`` is the combinatorial Laplacian of ``G`` and
``α, β`` are hyperparameters.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import networkx as nx
import numpy as np


def adjacency_matrix(
    graph: nx.Graph, nodes: Optional[Sequence] = None
) -> np.ndarray:
    """Dense symmetric adjacency of ``graph`` in ``nodes`` order."""
    nodelist = list(nodes) if nodes is not None else list(graph.nodes)
    return nx.to_numpy_array(graph, nodelist=nodelist, weight=None)


def combinatorial_laplacian(adjacency: np.ndarray) -> np.ndarray:
    """``L = D − A`` with ``D`` the diagonal degree matrix."""
    adjacency = np.asarray(adjacency, dtype=float)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("adjacency must be a square matrix")
    if not np.allclose(adjacency, adjacency.T):
        raise ValueError("adjacency must be symmetric (undirected graph)")
    degrees = adjacency.sum(axis=1)
    return np.diag(degrees) - adjacency


def regularized_laplacian_kernel(
    laplacian: np.ndarray, alpha: float, beta: float
) -> np.ndarray:
    """Equation (16): ``K = [β (L + I/α²)]⁻¹``.

    ``alpha`` controls the correlation length over the graph (larger
    ``α`` → longer-range smoothing) and ``beta`` the overall scale.
    Both must be positive.  The regularisation ``I/α²`` makes the
    matrix strictly positive definite, so the inverse always exists.
    """
    if alpha <= 0 or beta <= 0:
        raise ValueError("alpha and beta must be positive")
    laplacian = np.asarray(laplacian, dtype=float)
    n = laplacian.shape[0]
    matrix = beta * (laplacian + np.eye(n) / alpha**2)
    return np.linalg.inv(matrix)


def graph_kernel(
    graph: nx.Graph,
    alpha: float,
    beta: float,
    nodes: Optional[Sequence] = None,
) -> np.ndarray:
    """Convenience: eq. (16) kernel straight from a networkx graph."""
    adjacency = adjacency_matrix(graph, nodes)
    return regularized_laplacian_kernel(
        combinatorial_laplacian(adjacency), alpha, beta
    )


def is_positive_definite(matrix: np.ndarray, tol: float = 1e-10) -> bool:
    """Whether ``matrix`` is symmetric positive definite (up to tol)."""
    matrix = np.asarray(matrix, dtype=float)
    if not np.allclose(matrix, matrix.T, atol=1e-8):
        return False
    eigenvalues = np.linalg.eigvalsh(matrix)
    return bool(eigenvalues.min() > tol * max(1.0, abs(eigenvalues.max())))
