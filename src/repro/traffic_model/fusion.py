"""Fusing crowd answers into the traffic model's observations.

Section 2: "The traffic modelling component may also use the
crowdsourced information to resolve data sparsity", and Section 6: the
technique "is designed to be general enough that any additional
sources that can provide congestion information at specific locations
can be incorporated in the training, including, specifically, the
results of the crowdsourcing component."

A crowd answer is categorical (congestion / no congestion at a
location), not a flow reading; it is folded in as a *pseudo
observation*: a positive answer pins the junction near the congested
branch of the fundamental diagram, a negative one near free flow, and
conflicting/low-confidence answers are skipped.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class CrowdFlowReport:
    """One crowd resolution mapped onto a street-graph junction."""

    node: object
    value: str  # "positive" (congestion) or "negative"
    confidence: float = 1.0
    time: Optional[int] = None


#: Default pseudo-observation levels (veh/h) for crowd answers, chosen
#: on the congested / free-flow branches of the fundamental diagram
#: used by the Dublin substrate.
CONGESTED_FLOW = 350.0
FREE_FLOW = 1100.0


def augment_observations(
    observations: Mapping,
    crowd_reports: Iterable[CrowdFlowReport],
    *,
    congested_flow: float = CONGESTED_FLOW,
    free_flow: float = FREE_FLOW,
    min_confidence: float = 0.7,
    override_sensors: bool = False,
) -> dict:
    """Merge crowd pseudo-observations into sensor observations.

    Parameters
    ----------
    observations:
        Sensor readings ``{node: flow}``.
    crowd_reports:
        Crowd resolutions placed on junctions.
    congested_flow, free_flow:
        Flow levels a positive/negative answer pins the junction to.
    min_confidence:
        Answers below this posterior confidence are ignored.
    override_sensors:
        When ``False`` (default), junctions that already have a sensor
        reading keep it — the crowd only fills gaps.  When ``True`` a
        confident crowd answer replaces the sensor value (useful when
        the sensor is known noisy, cf. the ``noisyScats`` fluent).

    Later reports for the same junction win (reports are applied in
    iteration order; pass them sorted by time).
    """
    merged = dict(observations)
    for report in crowd_reports:
        if report.confidence < min_confidence:
            continue
        if report.node in observations and not override_sensors:
            continue
        if report.value == "positive":
            merged[report.node] = congested_flow
        elif report.value == "negative":
            merged[report.node] = free_flow
        else:
            raise ValueError(f"unknown crowd value: {report.value!r}")
    return merged
