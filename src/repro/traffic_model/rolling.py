"""Continuous re-estimation of the city-wide flow field.

Section 7.3: "the Gaussian Process estimate is computed for the
unobserved locations ... This step is repeated continuously."  The
rolling estimator keeps the latest reading per junction, ages readings
out after a staleness horizon (a sensor that went quiet stops
anchoring the field), and re-fits the GP on demand — reusing the
kernel matrix, which only depends on the street graph, not on the
observations.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Optional

import networkx as nx
import numpy as np

from ..obs import Registry
from .gp import GraphGP
from .kernels import graph_kernel


@dataclass
class _Reading:
    value: float
    time: int


class RollingFlowEstimator:
    """Streaming wrapper around the graph GP.

    Parameters
    ----------
    graph:
        The street network (fixed for the estimator's lifetime; the
        kernel is computed once).
    alpha, beta, noise:
        GP configuration (see :mod:`repro.traffic_model.kernels`).
    staleness_s:
        Readings older than this are dropped at estimation time.
    metrics:
        Optional :class:`repro.obs.Registry`; when given, the estimator
        counts readings (``flow.observations``) and publishes a
        ``flow.refits`` gauge after every re-fit.
    """

    def __init__(
        self,
        graph: nx.Graph,
        *,
        alpha: float = 5.0,
        beta: float = 0.05,
        noise: float = 20.0,
        staleness_s: int = 1800,
        metrics: Optional[Registry] = None,
    ):
        if graph.number_of_nodes() == 0:
            raise ValueError("graph must have at least one node")
        if staleness_s <= 0:
            raise ValueError("staleness horizon must be positive")
        self.graph = graph
        self.staleness_s = staleness_s
        self.nodes = list(graph.nodes)
        self._index = {node: i for i, node in enumerate(self.nodes)}
        self._alpha = alpha
        self._beta = beta
        self._kernel = graph_kernel(graph, alpha, beta, nodes=self.nodes)
        self._noise = noise
        self._readings: dict = {}
        self.metrics = metrics
        #: Number of GP refits performed (observability for operators).
        self.refits = 0

    # -- durability ----------------------------------------------------
    # The kernel matrix is O(n^2) floats — by far the largest object in
    # a pipeline checkpoint — and a pure function of (graph, alpha,
    # beta).  Dropping it from the pickle keeps checkpoints small and
    # fast; the restoring process recomputes it once.
    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_kernel"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._kernel = graph_kernel(
            self.graph, self._alpha, self._beta, nodes=self.nodes
        )

    # ------------------------------------------------------------------
    def observe(self, node, value: float, time: int) -> None:
        """Ingest one sensor (or crowd pseudo-) reading."""
        if node not in self._index:
            raise KeyError(f"unknown junction: {node!r}")
        current = self._readings.get(node)
        if current is None or time >= current.time:
            self._readings[node] = _Reading(float(value), time)
        if self.metrics is not None:
            self.metrics.counter("flow.observations").inc()

    def observe_many(self, readings: Mapping, time: int) -> None:
        """Ingest a batch of readings taken at the same time."""
        for node, value in readings.items():
            self.observe(node, value, time)

    def active_observations(self, now: int) -> dict:
        """Readings still within the staleness horizon at ``now``."""
        horizon = now - self.staleness_s
        return {
            node: reading.value
            for node, reading in self._readings.items()
            if reading.time > horizon
        }

    def coverage(self, now: int) -> float:
        """Fraction of junctions with a fresh reading."""
        return len(self.active_observations(now)) / len(self.nodes)

    def estimate(self, now: int) -> Optional[dict]:
        """Re-fit on the fresh readings and estimate every junction.

        Returns ``None`` when no reading is fresh (the operator map
        would be pure prior — better to say "no data" than to invent).
        """
        observations = self.active_observations(now)
        if not observations:
            return None
        gp = GraphGP(self._kernel, noise=self._noise)
        idx = [self._index[n] for n in observations]
        gp.fit(idx, list(observations.values()))
        self.refits += 1
        if self.metrics is not None:
            self.metrics.gauge("flow.refits").set(self.refits)
        prediction = gp.predict(np.arange(len(self.nodes)))
        return dict(zip(self.nodes, prediction.mean.tolist()))
