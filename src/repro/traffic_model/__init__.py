"""Traffic modelling: GP flow regression on the street graph (Section 6).

Addresses the data *sparsity* problem: sensors cover a fraction of the
city's junctions, and the operator needs a city-wide picture.  Flow at
unmeasured junctions is estimated with a Gaussian Process whose
covariance is the regularized Laplacian kernel of the street graph.
"""

from .fusion import (
    CONGESTED_FLOW,
    FREE_FLOW,
    CrowdFlowReport,
    augment_observations,
)
from .gp import GPPrediction, GraphGP, TrafficFlowModel
from .kernels import (
    adjacency_matrix,
    combinatorial_laplacian,
    graph_kernel,
    is_positive_definite,
    regularized_laplacian_kernel,
)
from .render import SHADES, render_flow_map
from .rolling import RollingFlowEstimator
from .svg import render_city_svg, write_city_svg
from .tuning import GridSearchResult, default_grid, grid_search

__all__ = [
    "adjacency_matrix",
    "combinatorial_laplacian",
    "regularized_laplacian_kernel",
    "graph_kernel",
    "is_positive_definite",
    "GraphGP",
    "GPPrediction",
    "TrafficFlowModel",
    "grid_search",
    "GridSearchResult",
    "default_grid",
    "render_flow_map",
    "SHADES",
    "CrowdFlowReport",
    "augment_observations",
    "CONGESTED_FLOW",
    "FREE_FLOW",
    "RollingFlowEstimator",
    "render_city_svg",
    "write_city_svg",
]
