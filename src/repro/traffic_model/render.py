"""Text rendering of city-wide flow estimates (the Figure 9 analog).

The paper plots GP flow estimates "on a visual display ... and shaded
according to their value.  High values obtain a red colour while low
values obtain green colour."  In a terminal reproduction the display is
an ASCII density map: junction estimates are bucketed onto a character
grid and shaded by magnitude.
"""

from __future__ import annotations

from collections.abc import Mapping

#: Shades from low to high value (Fig. 9's green → red).
SHADES = " .:-=+*#%@"


def render_flow_map(
    positions: Mapping,
    values: Mapping,
    *,
    width: int = 72,
    height: int = 24,
    shades: str = SHADES,
) -> str:
    """Render ``values`` at lon/lat ``positions`` as an ASCII map.

    Parameters
    ----------
    positions:
        ``{node: (lon, lat)}`` for every node to draw.
    values:
        ``{node: value}``; nodes missing a value are skipped.
    width, height:
        Character-grid dimensions.
    shades:
        Characters ordered from low to high value.

    Returns the multi-line map followed by a value legend.
    """
    if width < 2 or height < 2:
        raise ValueError("map must be at least 2x2 characters")
    if len(shades) < 2:
        raise ValueError("need at least two shade characters")
    drawable = [n for n in values if n in positions]
    if not drawable:
        raise ValueError("no drawable nodes (positions/values disjoint)")

    lons = [positions[n][0] for n in drawable]
    lats = [positions[n][1] for n in drawable]
    lon_min, lon_max = min(lons), max(lons)
    lat_min, lat_max = min(lats), max(lats)
    lon_span = (lon_max - lon_min) or 1.0
    lat_span = (lat_max - lat_min) or 1.0

    vals = [float(values[n]) for n in drawable]
    v_min, v_max = min(vals), max(vals)
    v_span = (v_max - v_min) or 1.0

    # Accumulate the max value per cell (congestion dominates).
    cells: dict[tuple[int, int], float] = {}
    for node in drawable:
        lon, lat = positions[node]
        col = min(int((lon - lon_min) / lon_span * (width - 1)), width - 1)
        # Latitude grows northwards; rows grow downwards.
        row = min(
            int((lat_max - lat) / lat_span * (height - 1)), height - 1
        )
        value = float(values[node])
        cells[(row, col)] = max(cells.get((row, col), value), value)

    lines = []
    for row in range(height):
        chars = []
        for col in range(width):
            if (row, col) in cells:
                norm = (cells[(row, col)] - v_min) / v_span
                shade = shades[
                    min(int(norm * (len(shades) - 1)), len(shades) - 1)
                ]
                chars.append(shade)
            else:
                chars.append(" ")
        lines.append("".join(chars))

    legend = (
        f"low {v_min:.1f} [{shades[0]}{shades[len(shades) // 2]}"
        f"{shades[-1]}] {v_max:.1f} high"
    )
    return "\n".join(lines) + "\n" + legend
