"""Hyperparameter selection for the graph-GP traffic model.

"The hyperparametres are chosen in advance using grid search within the
interval [0, ..., 10]" (paper, Section 7.3).  Selection is by k-fold
cross-validated RMSE on the observed junctions: each fold hides a
subset of sensors and scores the GP's predictions at the hidden
locations.  ``α`` and ``β`` must be strictly positive for the kernel to
exist, so the grid spans ``(0, 10]``.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import networkx as nx
import numpy as np

from .gp import TrafficFlowModel


def default_grid(points: int = 5, upper: float = 10.0) -> list[float]:
    """An evenly spaced grid over ``(0, upper]``."""
    if points <= 0:
        raise ValueError("grid needs at least one point")
    return [upper * (i + 1) / points for i in range(points)]


@dataclass
class GridSearchResult:
    """Outcome of the hyperparameter search."""

    alpha: float
    beta: float
    rmse: float
    #: Every evaluated combination: (alpha, beta) → CV RMSE.
    scores: dict[tuple[float, float], float]

    def best_model(self, graph: nx.Graph, *, noise: float = 1.0) -> TrafficFlowModel:
        """A fresh model configured with the winning hyperparameters."""
        return TrafficFlowModel(
            graph, alpha=self.alpha, beta=self.beta, noise=noise
        )


def _folds(nodes: list, k: int, rng: random.Random) -> list[list]:
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    return [shuffled[i::k] for i in range(k)]


def grid_search(
    graph: nx.Graph,
    observations: Mapping,
    *,
    alphas: Sequence[float] | None = None,
    betas: Sequence[float] | None = None,
    folds: int = 3,
    noise: float = 1.0,
    seed: int = 0,
) -> GridSearchResult:
    """Cross-validated grid search over (α, β).

    Parameters
    ----------
    graph:
        The street network.
    observations:
        Sensor readings ``{node: flow}`` (needs ≥ ``folds`` + 1 sensors).
    alphas, betas:
        Candidate values; default evenly spaced over ``(0, 10]``.
    folds:
        Number of cross-validation folds.
    """
    if folds < 2:
        raise ValueError("cross-validation needs at least two folds")
    nodes = list(observations)
    if len(nodes) <= folds:
        raise ValueError(
            f"need more observations ({len(nodes)}) than folds ({folds})"
        )
    alphas = list(alphas) if alphas is not None else default_grid()
    betas = list(betas) if betas is not None else default_grid()
    if any(a <= 0 for a in alphas) or any(b <= 0 for b in betas):
        raise ValueError("alpha/beta candidates must be positive")

    rng = random.Random(seed)
    fold_sets = _folds(nodes, folds, rng)

    scores: dict[tuple[float, float], float] = {}
    for alpha in alphas:
        for beta in betas:
            model = TrafficFlowModel(graph, alpha=alpha, beta=beta, noise=noise)
            squared_errors: list[float] = []
            for held_out in fold_sets:
                held = set(held_out)
                train = {n: v for n, v in observations.items() if n not in held}
                if not train:
                    continue
                model.fit(train)
                estimates = model.estimate(held_out)
                squared_errors.extend(
                    (estimates[n] - observations[n]) ** 2 for n in held_out
                )
            scores[(alpha, beta)] = float(np.sqrt(np.mean(squared_errors)))

    best_alpha, best_beta = min(scores, key=scores.get)  # type: ignore[arg-type]
    return GridSearchResult(
        alpha=best_alpha,
        beta=best_beta,
        rmse=scores[(best_alpha, best_beta)],
        scores=scores,
    )
