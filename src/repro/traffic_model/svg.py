"""SVG rendering of the street network and flow estimates.

The paper's Figures 7–9 are city maps: the street network, the SCATS
locations as dots, and the GP flow estimates shaded green (low) to red
(congested).  This module writes the equivalent as standalone SVG —
no external dependencies, fully deterministic — so the operator's
"simple, intuitive map" (Section 2) exists as an actual image next to
the terminal ASCII rendering.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from pathlib import Path
from typing import Optional


def _colour(norm: float) -> str:
    """Green (low) → yellow → red (high), like Figure 9's shading."""
    norm = min(max(norm, 0.0), 1.0)
    if norm < 0.5:
        red = int(255 * (norm * 2.0))
        green = 200
    else:
        red = 255
        green = int(200 * (1.0 - (norm - 0.5) * 2.0))
    return f"#{red:02x}{green:02x}30"


def _projector(positions: Mapping, width: int, height: int, margin: int):
    lons = [p[0] for p in positions.values()]
    lats = [p[1] for p in positions.values()]
    lon_min, lon_max = min(lons), max(lons)
    lat_min, lat_max = min(lats), max(lats)
    lon_span = (lon_max - lon_min) or 1.0
    lat_span = (lat_max - lat_min) or 1.0

    def project(lon: float, lat: float) -> tuple[float, float]:
        x = margin + (lon - lon_min) / lon_span * (width - 2 * margin)
        y = margin + (lat_max - lat) / lat_span * (height - 2 * margin)
        return (round(x, 1), round(y, 1))

    return project


def render_city_svg(
    positions: Mapping,
    edges: Iterable[tuple],
    *,
    values: Optional[Mapping] = None,
    sensors: Iterable = (),
    width: int = 900,
    height: int = 600,
    margin: int = 20,
    title: str = "",
) -> str:
    """Render the city as an SVG document string.

    Parameters
    ----------
    positions:
        ``{node: (lon, lat)}`` junction coordinates.
    edges:
        ``(node_a, node_b)`` street segments (Figure 7's network).
    values:
        Optional ``{node: value}`` to shade junctions green→red
        (Figure 9's flow estimates; *high value = red*, so pass
        congestion-like quantities — e.g. ``max_flow - flow`` — when
        red should mean congested).
    sensors:
        Nodes to mark with a black ring (Figure 8's SCATS locations).
    """
    if not positions:
        raise ValueError("positions must not be empty")
    project = _projector(positions, width, height, margin)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{margin}" y="{margin - 5}" font-size="13" '
            f'font-family="sans-serif">{title}</text>'
        )

    parts.append('<g stroke="#b0b0b0" stroke-width="1">')
    for a, b in edges:
        if a not in positions or b not in positions:
            continue
        xa, ya = project(*positions[a])
        xb, yb = project(*positions[b])
        parts.append(f'<line x1="{xa}" y1="{ya}" x2="{xb}" y2="{yb}"/>')
    parts.append("</g>")

    if values:
        drawable = {n: float(v) for n, v in values.items() if n in positions}
        if drawable:
            v_min = min(drawable.values())
            v_span = (max(drawable.values()) - v_min) or 1.0
            parts.append("<g>")
            for node, value in drawable.items():
                x, y = project(*positions[node])
                colour = _colour((value - v_min) / v_span)
                parts.append(
                    f'<circle cx="{x}" cy="{y}" r="3" fill="{colour}"/>'
                )
            parts.append("</g>")

    sensor_list = [n for n in sensors if n in positions]
    if sensor_list:
        parts.append('<g fill="none" stroke="black" stroke-width="1.2">')
        for node in sensor_list:
            x, y = project(*positions[node])
            parts.append(f'<circle cx="{x}" cy="{y}" r="4.5"/>')
        parts.append("</g>")

    parts.append("</svg>")
    return "\n".join(parts)


def write_city_svg(path: str | Path, *args, **kwargs) -> Path:
    """Render with :func:`render_city_svg` and write to ``path``."""
    path = Path(path)
    path.write_text(render_city_svg(*args, **kwargs), encoding="utf-8")
    return path
