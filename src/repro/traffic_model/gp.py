"""Gaussian-process regression of traffic flow on the street graph.

Implements the predictive machinery of Section 6: observed flows ``y``
at sensor-equipped junctions ``ū`` are noisy views of latent function
values (eq. 13); the joint of observed and unobserved flows is Gaussian
with covariance given by the graph kernel (eq. 15), so the flows at
unmeasured junctions ``u`` follow the conditional::

    m = K_{u,ū} (K_{ū,ū} + σ²I)⁻¹ y
    Σ = K_{u,u} − K_{u,ū} (K_{ū,ū} + σ²I)⁻¹ K_{ū,u}

A zero prior mean is assumed "without loss of generality"; this
implementation realises that by centring the observations and adding
the empirical mean back to the predictions.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Optional

import networkx as nx
import numpy as np
from scipy import linalg as sla

from .kernels import graph_kernel


@dataclass
class GPPrediction:
    """Predictive distribution at the queried nodes."""

    mean: np.ndarray
    variance: np.ndarray
    covariance: Optional[np.ndarray] = None


class GraphGP:
    """GP conditioning on a fixed kernel matrix.

    Parameters
    ----------
    kernel:
        The full ``M × M`` covariance matrix ``K`` over all nodes.
    noise:
        Observation noise standard deviation ``σ`` (eq. 13).
    """

    def __init__(self, kernel: np.ndarray, noise: float = 1.0):
        kernel = np.asarray(kernel, dtype=float)
        if kernel.ndim != 2 or kernel.shape[0] != kernel.shape[1]:
            raise ValueError("kernel must be a square matrix")
        if noise <= 0:
            raise ValueError("noise must be positive")
        self.kernel = kernel
        self.noise = noise
        self._obs_idx: Optional[np.ndarray] = None
        self._cho = None
        self._alpha: Optional[np.ndarray] = None
        self._y_mean = 0.0

    @property
    def n_nodes(self) -> int:
        """Number of nodes the kernel covers."""
        return self.kernel.shape[0]

    def fit(self, observed_idx: Sequence[int], y: Sequence[float]) -> "GraphGP":
        """Condition on observations ``y`` at node indices ``observed_idx``."""
        observed_idx = np.asarray(observed_idx, dtype=int)
        y = np.asarray(y, dtype=float)
        if observed_idx.ndim != 1 or observed_idx.size == 0:
            raise ValueError("need at least one observation")
        if observed_idx.size != y.size:
            raise ValueError("observed_idx and y must have the same length")
        if observed_idx.min() < 0 or observed_idx.max() >= self.n_nodes:
            raise ValueError("observation index out of range")
        if len(set(observed_idx.tolist())) != observed_idx.size:
            raise ValueError("duplicate observation indices")

        self._obs_idx = observed_idx
        self._y_mean = float(y.mean())
        centred = y - self._y_mean
        k_oo = self.kernel[np.ix_(observed_idx, observed_idx)]
        gram = k_oo + self.noise**2 * np.eye(observed_idx.size)
        self._cho = sla.cho_factor(gram, lower=True)
        self._alpha = sla.cho_solve(self._cho, centred)
        return self

    def _require_fit(self) -> None:
        if self._obs_idx is None:
            raise RuntimeError("fit() must be called before predicting")

    def predict(
        self,
        query_idx: Sequence[int],
        *,
        full_covariance: bool = False,
    ) -> GPPrediction:
        """Predictive mean/variance at ``query_idx`` (eq. 15 conditional)."""
        self._require_fit()
        query_idx = np.asarray(query_idx, dtype=int)
        if query_idx.size == 0:
            return GPPrediction(np.empty(0), np.empty(0))
        if query_idx.min() < 0 or query_idx.max() >= self.n_nodes:
            raise ValueError("query index out of range")
        k_qo = self.kernel[np.ix_(query_idx, self._obs_idx)]
        mean = k_qo @ self._alpha + self._y_mean
        solved = sla.cho_solve(self._cho, k_qo.T)
        k_qq = self.kernel[np.ix_(query_idx, query_idx)]
        covariance = k_qq - k_qo @ solved
        variance = np.clip(np.diag(covariance).copy(), 0.0, None)
        return GPPrediction(
            mean=mean,
            variance=variance,
            covariance=covariance if full_covariance else None,
        )

    def log_marginal_likelihood(self, y: Sequence[float]) -> float:
        """``log P(y | X)`` of the fitted observations (model comparison)."""
        self._require_fit()
        y = np.asarray(y, dtype=float) - self._y_mean
        n = y.size
        log_det = 2.0 * np.log(np.diag(self._cho[0])).sum()
        return float(
            -0.5 * y @ sla.cho_solve(self._cho, y)
            - 0.5 * log_det
            - 0.5 * n * np.log(2.0 * np.pi)
        )


class TrafficFlowModel:
    """The traffic-modelling component: city-wide flow estimation.

    Wraps :class:`GraphGP` over a street graph with the regularized
    Laplacian kernel; sensor readings (from SCATS aggregation, and
    optionally crowd reports — the component is "general enough that
    any additional sources ... can be incorporated") come in as a
    node → flow mapping, and estimates are produced for every junction.

    Parameters
    ----------
    graph:
        The street network; nodes are junctions.
    alpha, beta:
        Kernel hyperparameters (eq. 16), typically grid-searched.
    noise:
        Observation noise standard deviation ``σ``.
    """

    def __init__(
        self,
        graph: nx.Graph,
        *,
        alpha: float = 3.0,
        beta: float = 1.0,
        noise: float = 1.0,
    ):
        if graph.number_of_nodes() == 0:
            raise ValueError("graph must have at least one node")
        self.graph = graph
        self.alpha = alpha
        self.beta = beta
        self.nodes = list(graph.nodes)
        self._index = {node: i for i, node in enumerate(self.nodes)}
        kernel = graph_kernel(graph, alpha, beta, nodes=self.nodes)
        self._gp = GraphGP(kernel, noise=noise)
        self._observations: dict = {}

    def fit(self, observations: Mapping) -> "TrafficFlowModel":
        """Condition on sensor readings: ``{node: flow_value}``."""
        unknown = [n for n in observations if n not in self._index]
        if unknown:
            raise KeyError(f"observations at unknown junctions: {unknown[:5]}")
        if not observations:
            raise ValueError("need at least one observation")
        self._observations = dict(observations)
        idx = [self._index[n] for n in self._observations]
        self._gp.fit(idx, list(self._observations.values()))
        return self

    def estimate(self, nodes: Optional[Sequence] = None) -> dict:
        """Flow estimates ``{node: mean}`` at ``nodes`` (default: all)."""
        nodes = list(nodes) if nodes is not None else self.nodes
        idx = [self._index[n] for n in nodes]
        prediction = self._gp.predict(idx)
        return dict(zip(nodes, prediction.mean.tolist()))

    def estimate_with_uncertainty(
        self, nodes: Optional[Sequence] = None
    ) -> dict:
        """Estimates ``{node: (mean, std)}`` at ``nodes`` (default: all)."""
        nodes = list(nodes) if nodes is not None else self.nodes
        idx = [self._index[n] for n in nodes]
        prediction = self._gp.predict(idx)
        stds = np.sqrt(prediction.variance)
        return {
            node: (float(m), float(s))
            for node, m, s in zip(nodes, prediction.mean, stds)
        }

    def unobserved_nodes(self) -> list:
        """Junctions without a sensor reading (the sparsity gap)."""
        return [n for n in self.nodes if n not in self._observations]

    def rmse(self, truth: Mapping) -> float:
        """Root-mean-square error of the estimates against ``truth``."""
        estimates = self.estimate(list(truth))
        errors = np.array([estimates[n] - truth[n] for n in truth], dtype=float)
        return float(np.sqrt(np.mean(errors**2)))
