"""Atomic file-write helpers.

Every artifact the system persists — metrics exports, HTML reports,
benchmark baselines, recovery checkpoints — is written through the
same discipline: serialise to a temporary file in the *destination
directory* (so the final rename never crosses a filesystem), flush and
fsync it, then ``os.replace`` it over the target.  A crash at any
point leaves either the previous complete artifact or a stray ``.tmp``
file — never a torn half-written target.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union

PathLike = Union[str, os.PathLike]


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp + ``os.replace``)."""
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(
    path: PathLike, text: str, *, encoding: str = "utf-8"
) -> None:
    """Write ``text`` to ``path`` atomically."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(
    path: PathLike,
    obj: Any,
    *,
    indent: int = 2,
    sort_keys: bool = False,
) -> None:
    """Serialise ``obj`` as JSON and write it to ``path`` atomically."""
    atomic_write_text(
        path, json.dumps(obj, indent=indent, sort_keys=sort_keys) + "\n"
    )
