"""Command-line interface for the reproduction.

Subcommands mirror the library's main entry points::

    repro-traffic generate  --out day.jsonl   # materialise an SDE stream
    repro-traffic recognise --duration 1800   # RTEC over a scenario
    repro-traffic run       --duration 1800   # the full closed loop
    repro-traffic metrics   --duration 1800   # runtime metrics report
    repro-traffic map       --at 900          # GP city flow map
    repro-traffic crowd     --queries 500     # online EM demo
    repro-traffic faults                      # list fault profiles
    repro-traffic scenarios run --matrix      # acceptance-envelope matrix

Every command is deterministic given ``--seed``.  Also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import __version__
from .core import RTEC, RecognitionLog
from .core.traffic import build_traffic_definitions, default_traffic_params
from .dublin import DublinScenario, ScenarioConfig, read_jsonl, write_jsonl
from .system import SystemConfig, UrbanTrafficSystem


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("scenario")
    group.add_argument("--seed", type=int, default=0, help="master seed")
    group.add_argument(
        "--buses", type=int, default=120, help="bus fleet size"
    )
    group.add_argument(
        "--lines", type=int, default=12, help="number of bus lines"
    )
    group.add_argument(
        "--intersections", type=int, default=60,
        help="number of SCATS intersections",
    )
    group.add_argument(
        "--grid", type=int, nargs=2, default=(14, 14),
        metavar=("ROWS", "COLS"), help="street-network grid size",
    )
    group.add_argument(
        "--unreliable", type=float, default=0.1,
        help="fraction of buses with a corrupted congestion bit",
    )
    group.add_argument(
        "--incidents", type=int, default=8, help="number of incidents"
    )
    group.add_argument(
        "--duration", type=int, default=1800,
        help="simulated seconds to run",
    )


def _scenario_from(args: argparse.Namespace) -> DublinScenario:
    rows, cols = args.grid
    return DublinScenario(
        ScenarioConfig(
            seed=args.seed,
            rows=rows,
            cols=cols,
            n_intersections=args.intersections,
            n_buses=args.buses,
            n_lines=args.lines,
            unreliable_fraction=args.unreliable,
            n_incidents=args.incidents,
            incident_window=(0, args.duration),
        )
    )


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_generate(args: argparse.Namespace) -> int:
    scenario = _scenario_from(args)
    data = scenario.generate(0, args.duration)
    written = write_jsonl(args.out, data)
    print(
        f"wrote {written} records ({data.n_sdes} SDEs, "
        f"{data.sde_rate():.1f} SDE/s) to {args.out}"
    )
    return 0


def _cmd_recognise(args: argparse.Namespace) -> int:
    scenario = _scenario_from(args)
    if args.input:
        # Replay a stream persisted by `generate`; the scenario
        # arguments must match the ones used at generation time so the
        # SCATS topology lines up with the stream's intersection ids.
        data = read_jsonl(args.input)
    else:
        data = scenario.generate(0, args.duration)
    definitions = build_traffic_definitions(
        scenario.topology,
        adaptive=args.adaptive,
        noisy_variant=args.noisy_variant,
    )
    engine = RTEC(
        definitions,
        window=args.window,
        step=args.step,
        params=default_traffic_params(),
        incremental=not args.legacy,
    )
    engine.feed(data.events, data.facts)
    log = RecognitionLog()
    occurrence_counts: dict[str, int] = {}
    episode_counts: dict[str, int] = {}
    horizon = max(args.duration, data.end)
    for snapshot in engine.run(horizon):
        fresh = log.add(snapshot)
        for occ in fresh.occurrences:
            occurrence_counts[occ.type] = occurrence_counts.get(occ.type, 0) + 1
        for name, *_ in fresh.episodes:
            episode_counts[name] = episode_counts.get(name, 0) + 1
    mode = "self-adaptive" if args.adaptive else "static"
    print(
        f"{mode} recognition over {data.n_sdes} SDEs "
        f"({len(log.snapshots)} query times, window {args.window}s, "
        f"step {args.step}s)"
    )
    print(f"mean recognition time: {log.mean_elapsed * 1000:.1f} ms/query")
    print("fluent episodes:")
    for name, count in sorted(episode_counts.items()):
        print(f"  {name:<26} {count:>6}")
    print("event occurrences:")
    for name, count in sorted(occurrence_counts.items()):
        print(f"  {name:<26} {count:>6}")
    return 0


def _system_config_from(args: argparse.Namespace) -> SystemConfig:
    """One validated mapping instead of hand-rolled kwargs."""
    mapping = {
        "window": args.window,
        "step": args.step,
        "adaptive": args.adaptive,
        "noisy_variant": args.noisy_variant,
        "n_participants": args.participants,
        "seed": args.seed,
    }
    if getattr(args, "legacy", False):
        mapping["incremental"] = False
    if getattr(args, "parallel", False):
        mapping["parallel_regions"] = True
    if getattr(args, "sharded", False):
        mapping["sharded"] = True
    if getattr(args, "shard_dir", None):
        mapping["shard_dir"] = args.shard_dir
    if getattr(args, "faults", None):
        mapping["fault_profile"] = args.faults
    if getattr(args, "checkpoint_interval", None):
        mapping["checkpoint_interval"] = args.checkpoint_interval
    return SystemConfig.from_mapping(mapping)


def _cmd_run(args: argparse.Namespace) -> int:
    from .recovery import CheckpointCoordinator

    if args.resume:
        # Everything — scenario, config, stream position — comes from
        # the checkpoint directory; the scenario arguments are ignored.
        coordinator = CheckpointCoordinator(
            args.resume, interval=args.checkpoint_interval or None
        )
        system, state = coordinator.restore_latest()
        if state is None:
            # Newest checkpoint is the pre-generation baseline: re-run
            # from the top (generation is deterministic from the
            # checkpointed RNG state).
            start, end = coordinator.restored_span
            report = system.run(start, end, recovery=coordinator)
            duration = end
        else:
            report = system.resume_from(state, coordinator)
            duration = state.end
        counters = report.metrics.get("counters", {})
        print(
            f"resumed from {args.resume} at step {coordinator.last_checkpoint.step} "
            f"(replayed {counters.get('recovery.replay.steps', 0):.0f} "
            f"journalled step(s), "
            f"{counters.get('recovery.replay.items', 0):.0f} stream item(s))"
        )
        print()
    else:
        scenario = _scenario_from(args)
        system = UrbanTrafficSystem(scenario, _system_config_from(args))
        duration = args.duration
        if args.checkpoint_dir:
            coordinator = CheckpointCoordinator(args.checkpoint_dir)
            report = system.run(0, duration, recovery=coordinator)
            counters = report.metrics.get("counters", {})
            print(
                f"checkpointed to {args.checkpoint_dir}: "
                f"{counters.get('recovery.checkpoint.writes', 0):.0f} "
                f"checkpoint(s), every "
                f"{system.config.checkpoint_interval} step(s)"
            )
            print()
        else:
            report = system.run(0, duration)
    print(report.console.render(limit=args.alerts))
    print()
    print(report.console.render_summary())
    print()
    print(
        f"crowd: {report.crowd_resolutions} resolved / "
        f"{report.crowd_unresolved} unresolved; mean recognition "
        f"{report.mean_recognition_time * 1000:.1f} ms/query"
    )
    if report.degraded:
        print()
        print("degraded intervals:")
        for line in report.degraded_timeline():
            print(f"  {line}")
    if report.shard_events:
        print()
        print("shard events:")
        for event in report.shard_events:
            what = (
                f"restarted from its checkpoint (attempt "
                f"{event.get('attempt', '?')})"
                if event["event"] == "restart"
                else "restart budget exhausted — region degraded"
            )
            print(
                f"  shard {event['region']!r} {what} at step "
                f"{event['step']} (t={event['q']}s)"
            )
    if args.map:
        print()
        print(system.render_city_map(duration))
    return 0


def _render_metrics(registry) -> str:
    """Sectioned text report of a metrics registry."""
    counters = registry.counters()
    gauges = registry.gauges()
    timings = registry.timings()

    lines: list[str] = []
    throughput = sorted(
        name for name in gauges if name.endswith(".items_per_s")
    )
    if throughput:
        lines.append("per-process throughput:")
        for name in throughput:
            process = name[: -len(".items_per_s")]
            items = counters.get(f"{process}.items", 0) or counters.get(
                f"{process}.consumed", 0
            )
            lines.append(
                f"  {process:<34} {items:>8} items  "
                f"{gauges[name]:>12.0f} items/s"
            )

    # Sharded runtime: one row per worker, aggregated from the
    # namespaced per-shard registries (``shard.<region>.*``) the merge
    # keeps side by side instead of overwriting.
    shard_regions = sorted(
        name[len("shard."):-len(".queries")]
        for name in counters
        if name.startswith("shard.") and name.endswith(".queries")
        and name.count(".") == 2
    )
    if shard_regions:
        lines.append("per-shard runtime:")
        lines.append(
            f"  {'region':<12} {'queries':>8} {'restarts':>9} "
            f"{'replayed':>9} {'ckpts':>6} {'journal':>8}"
        )
        for region in shard_regions:
            pre = f"shard.{region}."
            lines.append(
                f"  {region:<12} {counters.get(pre + 'queries', 0):>8} "
                f"{counters.get(pre + 'restarts', 0):>9} "
                f"{counters.get(pre + 'recovery.replay.steps', 0):>9} "
                f"{counters.get(pre + 'recovery.checkpoint.writes', 0):>6} "
                f"{counters.get(pre + 'recovery.journal.records', 0):>8}"
            )
        heartbeat = timings.get("shard.heartbeat_age_s")
        summary = (
            f"  total restarts {counters.get('shard.restarts', 0)}, "
            f"deaths {counters.get('shard.deaths', 0)}, "
            f"failed shards {counters.get('shard.failed', 0)}"
        )
        if heartbeat is not None and heartbeat.count:
            summary += (
                f", heartbeat age mean "
                f"{heartbeat.mean * 1000:.1f} ms"
            )
        lines.append(summary)

    evals = counters.get("rtec.compiled.evals", 0)
    fallbacks = counters.get("rtec.compiled.fallbacks", 0)
    if evals or fallbacks:
        lines.append("compiled rule evaluation:")
        lines.append(f"  {'rtec.compiled.evals':<34} {evals:>8}")
        lines.append(f"  {'rtec.compiled.fallbacks':<34} {fallbacks:>8}")
    ingested = counters.get("ingest.events", 0)
    ingest_rate = gauges.get("ingest.events_per_s")
    if ingested:
        rate = (
            f"  {ingest_rate:>12.0f} SDE/s" if ingest_rate is not None else ""
        )
        lines.append("ingest:")
        lines.append(f"  {'ingest.events':<34} {ingested:>8} SDEs{rate}")

    definition_timings = sorted(
        (
            (t.total, name, t)
            for name, t in timings.items()
            if name.startswith("rtec.definition.")
        ),
        reverse=True,
    )
    if definition_timings:
        lines.append("rtec per-definition timings (by total CPU):")
        for total, name, t in definition_timings:
            short = name[len("rtec.definition."):-len(".seconds")]
            lines.append(
                f"  {short:<34} {t.count:>6} obs  "
                f"total {total * 1000:>9.2f} ms  "
                f"mean {t.mean * 1000:>7.3f} ms"
            )

    lines.append("counters:")
    for name, value in counters.items():
        lines.append(f"  {name:<44} {value:>10}")
    lines.append("gauges:")
    for name, value in gauges.items():
        lines.append(f"  {name:<44} {value:>10.2f}")
    lines.append("timings (count / total s / mean ms):")
    for name, t in timings.items():
        lines.append(
            f"  {name:<44} {t.count:>7} {t.total:>10.4f} "
            f"{t.mean * 1000:>10.3f}"
        )
    return "\n".join(lines)


def _cmd_metrics(args: argparse.Namespace) -> int:
    scenario = _scenario_from(args)
    system = UrbanTrafficSystem(scenario, _system_config_from(args))
    system.run(0, args.duration)
    registry = system.metrics

    if args.streams:
        # Also execute the paper's Streams data-flow graph so the
        # report includes per-process middleware throughput
        # (streams.process.*), not just the per-region engines.
        from .streams import StreamRuntime
        from .system import build_paper_topology

        data = scenario.generate(0, args.duration)
        paper = build_paper_topology(
            scenario,
            data,
            window=args.window,
            step=args.step,
            noisy_variant=args.noisy_variant,
            n_participants=args.participants,
            seed=args.seed,
        )
        StreamRuntime(paper.topology, metrics=registry).run()
        paper.flush(args.duration)

    print(_render_metrics(registry))
    if args.json:
        registry.write_json(args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    scenario = _scenario_from(args)
    system = UrbanTrafficSystem(
        scenario, SystemConfig(crowd_enabled=False, seed=args.seed)
    )
    print(system.render_city_map(args.at))
    if args.svg:
        system.export_city_svg(args.at, args.svg)
        print(f"wrote {args.svg}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import json

    from .faults import PROFILES, get_profile

    if args.show:
        print(json.dumps(get_profile(args.show).to_dict(), indent=2))
        return 0
    if args.dlq_demo:
        return _faults_dlq_demo(args.seed)
    print(f"{'profile':<22}description")
    for name in sorted(PROFILES):
        print(f"{name:<22}{PROFILES[name].description}")
    return 0


def _faults_dlq_demo(seed: int) -> int:
    """Run a tiny supervised topology over a corrupted stream and dump
    the resulting dead-letter queue — a smoke demo of the supervision
    layer's skip policy."""
    import json

    from .faults import FaultInjector, StreamFaults
    from .streams import (
        ErrorPolicy,
        Process,
        Source,
        StreamRuntime,
        Supervisor,
        Topology,
        Transform,
    )

    items = [
        {"@time": t, "intersection": f"I{t % 3}", "flow": 40 + t}
        for t in range(20)
    ]
    injector = FaultInjector(
        StreamFaults(corrupt_rate=0.4, corrupt_fields=("flow",)),
        seed=seed,
    )

    def strict(item):
        if item["flow"] == 0:
            raise ValueError(f"stuck-at-zero flow at t={item['@time']}")
        return item

    topology = Topology()
    topology.add_source(Source("scats", injector.items(items)))
    topology.add_process(
        Process(
            "validate", "scats", [Transform(strict)], output="clean",
            policy=ErrorPolicy(mode="skip"),
        )
    )
    supervisor = Supervisor()
    StreamRuntime(topology, supervisor=supervisor).run()
    letters = [letter.to_dict() for letter in supervisor.dead_letters]
    print(json.dumps(letters, indent=2))
    print(
        f"{len(letters)} corrupted item(s) dead-lettered, "
        f"{20 - len(letters)} passed through",
    )
    return 0


def _cmd_crowd(args: argparse.Namespace) -> int:
    import random

    from .crowd import (
        TRAFFIC_LABELS,
        DisagreementTask,
        OnlineEM,
        Participant,
        simulate_answers,
    )

    error_probabilities = [
        0.05, 0.15, 0.2, 0.25, 0.25, 0.38, 0.4, 0.5, 0.75, 0.9,
    ]
    participants = [
        Participant(f"P{i + 1}", p)
        for i, p in enumerate(error_probabilities)
    ]
    em = OnlineEM()
    rng = random.Random(args.seed)
    for t in range(1, args.queries + 1):
        task = DisagreementTask(t, true_label=rng.choice(TRAFFIC_LABELS))
        em.process(simulate_answers(task, participants, rng))
    print(f"after {args.queries} queries:")
    print(f"{'participant':<12}{'truth':>8}{'estimate':>10}")
    for participant, truth in zip(participants, error_probabilities):
        estimate = em.estimate(participant.participant_id)
        print(
            f"{participant.participant_id:<12}{truth:>8.2f}{estimate:>10.2f}"
        )
    print(f"peaked posteriors: {em.peaked_fraction:.1%}")
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import json

    from .scenarios import (
        SCENARIO_LIBRARY,
        get_scenario,
        run_matrix,
        write_matrix_report,
    )

    if args.action == "list":
        print(f"{'scenario':<24}{'family':<14}description")
        for spec in SCENARIO_LIBRARY:
            print(
                f"{spec.name:<24}{spec.topology.family:<14}"
                f"{spec.description}"
            )
        return 0

    if args.action == "show":
        print(json.dumps(get_scenario(args.name).to_mapping(), indent=2))
        return 0

    # action == "run"
    if args.matrix and args.names:
        raise ValueError(
            "--matrix runs the whole library; drop the scenario names "
            "or the flag"
        )
    if args.names:
        specs = [get_scenario(name) for name in args.names]
    else:
        # --matrix (and the bare default): the whole library.
        specs = list(SCENARIO_LIBRARY)

    def _progress(run) -> None:
        print(run.envelope.format())

    result = run_matrix(
        specs,
        duration=args.duration,
        check_parity=not args.no_parity,
        progress=_progress,
    )
    n_pass = len(result.runs) - result.n_failed
    families = {run.spec.topology.family for run in result.runs}
    print(
        f"matrix: {n_pass}/{len(result.runs)} scenarios passed "
        f"({len(families)} topology families)"
    )
    if args.report is not None:
        path = write_matrix_report(result, args.report)
        print(f"HTML report written to {path}")
    if args.json is not None:
        payload = [
            {
                "scenario": run.spec.name,
                "family": run.spec.topology.family,
                "passed": run.passed,
                "clauses": [
                    {
                        "kind": clause.kind,
                        "subject": clause.subject,
                        "expected": clause.expected,
                        "observed": clause.observed,
                        "passed": clause.passed,
                    }
                    for clause in run.envelope.clauses
                ],
            }
            for run in result.runs
        ]
        from .ioutils import atomic_write_text

        atomic_write_text(args.json, json.dumps(payload, indent=2))
        print(f"JSON verdicts written to {args.json}")
    return 0 if result.passed else 1


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for doc generation)."""
    parser = argparse.ArgumentParser(
        prog="repro-traffic",
        description=(
            "Reproduction of 'Heterogeneous Stream Processing and "
            "Crowdsourcing for Urban Traffic Management' (EDBT 2014)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="materialise a scenario SDE stream as JSONL"
    )
    _add_scenario_arguments(generate)
    generate.add_argument("--out", required=True, help="output JSONL path")
    generate.set_defaults(fn=_cmd_generate)

    recognise = subparsers.add_parser(
        "recognise", help="run RTEC recognition over a scenario"
    )
    _add_scenario_arguments(recognise)
    recognise.add_argument(
        "--input", default=None,
        help="replay a JSONL stream written by 'generate' (scenario "
        "arguments must match) instead of regenerating",
    )
    recognise.add_argument("--window", type=int, default=600)
    recognise.add_argument("--step", type=int, default=300)
    recognise.add_argument(
        "--adaptive", action="store_true",
        help="self-adaptive recognition (rule-set 3')",
    )
    recognise.add_argument(
        "--noisy-variant", choices=("crowd", "pessimistic"),
        default="pessimistic",
    )
    recognise.add_argument(
        "--legacy", action="store_true",
        help="recompute every window from scratch instead of the "
        "incremental cross-window cache (differential testing)",
    )
    recognise.set_defaults(fn=_cmd_recognise)

    run = subparsers.add_parser(
        "run", help="run the full closed-loop system"
    )
    _add_scenario_arguments(run)
    run.add_argument("--window", type=int, default=600)
    run.add_argument("--step", type=int, default=300)
    run.add_argument("--adaptive", action="store_true", default=True)
    run.add_argument(
        "--static", dest="adaptive", action="store_false",
        help="disable self-adaptation",
    )
    run.add_argument(
        "--noisy-variant", choices=("crowd", "pessimistic"), default="crowd"
    )
    run.add_argument("--participants", type=int, default=50)
    run.add_argument(
        "--alerts", type=int, default=15, help="alert feed length"
    )
    run.add_argument(
        "--map", action="store_true", help="print the GP city map"
    )
    run.add_argument(
        "--parallel", action="store_true",
        help="fan per-region recognition out over a thread pool",
    )
    run.add_argument(
        "--sharded", action="store_true",
        help="run each region's engine in its own supervised OS "
        "process with per-shard checkpoint recovery (byte-identical "
        "output; see docs/robustness.md)",
    )
    run.add_argument(
        "--shard-dir", default=None, metavar="DIR",
        help="root for the per-shard recovery directories (default: "
        "a temporary directory removed after the run)",
    )
    run.add_argument(
        "--faults", default=None, metavar="PROFILE",
        help="inject a named fault profile (see 'faults' subcommand)",
    )
    run.add_argument(
        "--legacy", action="store_true",
        help="disable incremental recognition (recompute per window)",
    )
    run.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="checkpoint the pipeline into DIR every "
        "checkpoint-interval steps (see docs/recovery.md)",
    )
    run.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="N",
        help="recognition steps between checkpoints "
        "(default: SystemConfig.checkpoint_interval)",
    )
    run.add_argument(
        "--resume", default=None, metavar="DIR",
        help="restore the latest valid checkpoint in DIR and run to "
        "completion (scenario arguments are ignored)",
    )
    run.set_defaults(fn=_cmd_run)

    metrics = subparsers.add_parser(
        "metrics",
        help="run the closed loop and report runtime metrics "
        "(throughput, RTEC timings, crowd counters)",
    )
    _add_scenario_arguments(metrics)
    metrics.add_argument("--window", type=int, default=600)
    metrics.add_argument("--step", type=int, default=300)
    metrics.add_argument("--adaptive", action="store_true", default=True)
    metrics.add_argument(
        "--static", dest="adaptive", action="store_false",
        help="disable self-adaptation",
    )
    metrics.add_argument(
        "--noisy-variant", choices=("crowd", "pessimistic"), default="crowd"
    )
    metrics.add_argument("--participants", type=int, default=50)
    metrics.add_argument(
        "--parallel", action="store_true",
        help="fan per-region recognition out over a thread pool",
    )
    metrics.add_argument(
        "--sharded", action="store_true",
        help="run the per-region engines as supervised worker "
        "processes and report the namespaced shard.<region>.* metrics",
    )
    metrics.add_argument(
        "--streams", action="store_true",
        help="also execute the Streams data-flow graph and report "
        "per-process middleware throughput",
    )
    metrics.add_argument(
        "--faults", default=None, metavar="PROFILE",
        help="inject a named fault profile (see 'faults' subcommand)",
    )
    metrics.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the full registry export as JSON",
    )
    metrics.add_argument(
        "--legacy", action="store_true",
        help="disable incremental recognition (recompute per window)",
    )
    metrics.set_defaults(fn=_cmd_metrics)

    city_map = subparsers.add_parser(
        "map", help="print the GP flow map of the city"
    )
    _add_scenario_arguments(city_map)
    city_map.add_argument(
        "--at", type=int, default=900, help="snapshot time (s)"
    )
    city_map.add_argument(
        "--svg", default=None, help="also write the map as an SVG file"
    )
    city_map.set_defaults(fn=_cmd_map)

    crowd = subparsers.add_parser(
        "crowd", help="online EM participant-quality demo (Figure 5)"
    )
    crowd.add_argument("--seed", type=int, default=42)
    crowd.add_argument("--queries", type=int, default=500)
    crowd.set_defaults(fn=_cmd_crowd)

    faults = subparsers.add_parser(
        "faults",
        help="list fault profiles, show one as JSON, or run the "
        "dead-letter-queue demo",
    )
    faults.add_argument(
        "--show", default=None, metavar="PROFILE",
        help="dump one profile's full spec as JSON",
    )
    faults.add_argument(
        "--dlq-demo", action="store_true",
        help="run a supervised mini-topology over a corrupted stream "
        "and dump the dead-letter queue",
    )
    faults.add_argument("--seed", type=int, default=0)
    faults.set_defaults(fn=_cmd_faults)

    scenarios = subparsers.add_parser(
        "scenarios",
        help="scenario DSL: list, show or run the generator matrix "
        "with per-scenario acceptance envelopes (docs/scenarios.md)",
    )
    scenario_actions = scenarios.add_subparsers(
        dest="action", required=True
    )
    scenario_actions.add_parser(
        "list", help="list the built-in scenario library"
    ).set_defaults(fn=_cmd_scenarios)
    show = scenario_actions.add_parser(
        "show", help="dump one scenario spec as JSON"
    )
    show.add_argument("name", help="scenario name (see 'scenarios list')")
    show.set_defaults(fn=_cmd_scenarios)
    scenario_run = scenario_actions.add_parser(
        "run",
        help="run scenarios and check their acceptance envelopes "
        "(exit 1 on any envelope failure)",
    )
    scenario_run.add_argument(
        "names", nargs="*", metavar="NAME",
        help="scenarios to run (default: the whole library)",
    )
    scenario_run.add_argument(
        "--matrix", action="store_true",
        help="run the whole library (explicit form of the default)",
    )
    scenario_run.add_argument(
        "--duration", type=int, default=None, metavar="S",
        help="override every scenario's simulated duration",
    )
    scenario_run.add_argument(
        "--no-parity", action="store_true",
        help="skip the parity variant runs (their envelope clauses "
        "then fail as unchecked)",
    )
    scenario_run.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the matrix verdicts as a standalone HTML report",
    )
    scenario_run.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the matrix verdicts as JSON",
    )
    scenario_run.set_defaults(fn=_cmd_scenarios)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Configuration errors (bad window/step combinations, unreadable
    inputs, ...) are reported as one-line messages with exit code 2
    instead of tracebacks.
    """
    from .recovery import CheckpointError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ValueError, OSError, KeyError, CheckpointError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
