"""Network/engine latency model for the query execution engine.

The paper's Figure 6 measures, per connection type, the three
engine-side steps of a crowdsourcing task (averages over 10 runs):

====================  =====  =====  =====
step                   2G     3G    WiFi
====================  =====  =====  =====
trigger task          38–55 ms (no device communication)
send push notification  467    169    184
communication time      423    171    182
====================  =====  =====  =====

Human response time (opening the task, choosing the answer) is
"typically a lot higher than the other steps" and excluded from the
figure; the simulator models it separately as *think time*.

This module provides a seeded, deterministic sampler around those
calibration points so the reproduction regenerates Figure 6's rows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: Connection types known to the model.
CONNECTION_TYPES = ("2g", "3g", "wifi")


@dataclass(frozen=True)
class StepLatency:
    """Calibration of one engine step: mean and jitter (std), in ms."""

    mean_ms: float
    std_ms: float

    def sample(self, rng: random.Random) -> float:
        """One Gaussian draw, truncated at a 1 ms floor."""
        return max(1.0, rng.gauss(self.mean_ms, self.std_ms))


#: Figure 6 calibration: push notification latency per connection.
PUSH_LATENCY: dict[str, StepLatency] = {
    "2g": StepLatency(467.0, 45.0),
    "3g": StepLatency(169.0, 18.0),
    "wifi": StepLatency(184.0, 20.0),
}

#: Figure 6 calibration: task retrieve + answer round trip.
COMMUNICATION_LATENCY: dict[str, StepLatency] = {
    "2g": StepLatency(423.0, 40.0),
    "3g": StepLatency(171.0, 18.0),
    "wifi": StepLatency(182.0, 20.0),
}

#: Trigger-task latency bounds (worker selection + assignment).
TRIGGER_RANGE_MS = (38.0, 55.0)


class LatencyModel:
    """Deterministic sampler of the engine's latency steps.

    Parameters
    ----------
    seed:
        Seed of the private RNG; identical seeds reproduce identical
        latency traces.
    push, communication:
        Optional overrides of the per-connection calibrations.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        push: dict[str, StepLatency] | None = None,
        communication: dict[str, StepLatency] | None = None,
    ):
        self._rng = random.Random(seed)
        self._push = dict(push or PUSH_LATENCY)
        self._comm = dict(communication or COMMUNICATION_LATENCY)

    def _check_connection(self, connection: str) -> str:
        connection = connection.lower()
        if connection not in self._push or connection not in self._comm:
            raise ValueError(
                f"unknown connection type: {connection!r} "
                f"(known: {sorted(self._push)})"
            )
        return connection

    def trigger_ms(self) -> float:
        """Trigger-task latency: selection and assignment, engine-side."""
        lo, hi = TRIGGER_RANGE_MS
        return self._rng.uniform(lo, hi)

    def push_ms(self, connection: str) -> float:
        """Push-notification latency for a device on ``connection``."""
        return self._push[self._check_connection(connection)].sample(self._rng)

    def communication_ms(self, connection: str) -> float:
        """Task retrieval + answer upload latency."""
        return self._comm[self._check_connection(connection)].sample(self._rng)

    def think_ms(self, mean_think_s: float) -> float:
        """Human response time (excluded from Figure 6; long-tailed)."""
        mean_ms = mean_think_s * 1000.0
        return max(500.0, self._rng.gauss(mean_ms, mean_ms * 0.4))

    def expected_engine_ms(self, connection: str) -> float:
        """Expected engine-side end-to-end latency (no think time).

        Used for the deadline admission test
        ``comm_iq + comp_iq < deadline_q`` with historical means.
        """
        connection = self._check_connection(connection)
        trigger = sum(TRIGGER_RANGE_MS) / 2.0
        return (
            trigger
            + self._push[connection].mean_ms
            + self._comm[connection].mean_ms
        )
