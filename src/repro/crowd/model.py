"""The crowdsourced answer model of Section 5.1.

A source-disagreement event is an unobserved categorical variable
``X_t`` with true value ``x_t ∈ Val(X_t)``.  Each participant ``i`` has
a constant but unknown probability ``p_i`` of answering with a wrong
label; when wrong, the participant picks one of the remaining labels
uniformly at random (the paper's equations (6)–(7))::

    P(Y_i,t = x_t | X_t = x_t) = 1 - p_i
    P(Y_i,t = x   | X_t = x_t) = p_i / (|Val(X_t)| - 1)   for x ≠ x_t

Events are independent of one another, and answers are independent
across participants and events.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Optional

#: The label set used throughout the traffic deployment: the paper's
#: Fig. 5 experiment uses 4 possible answers; the first one is the
#: congestion label that the ``crowd`` CE cares about.
TRAFFIC_LABELS: tuple[str, ...] = (
    "congestion",
    "free_flow",
    "accident",
    "roadworks",
)
#: The label whose posterior decides the ``crowd(..., positive)`` event.
CONGESTION_LABEL = TRAFFIC_LABELS[0]


def uniform_prior(labels: Sequence[str]) -> dict[str, float]:
    """The uniform prior distribution over ``labels``."""
    if not labels:
        raise ValueError("label set must be non-empty")
    p = 1.0 / len(labels)
    return {label: p for label in labels}


def validate_distribution(
    prior: Mapping[str, float], labels: Sequence[str]
) -> dict[str, float]:
    """Check that ``prior`` is a distribution over exactly ``labels``."""
    if set(prior) != set(labels):
        raise ValueError(
            f"prior labels {sorted(prior)} do not match event labels "
            f"{sorted(labels)}"
        )
    total = sum(prior.values())
    if any(v < 0 for v in prior.values()) or abs(total - 1.0) > 1e-9:
        raise ValueError("prior must be a probability distribution")
    return dict(prior)


@dataclass(frozen=True)
class DisagreementTask:
    """One source-disagreement event ``X_t`` to be crowdsourced.

    Parameters
    ----------
    task_id:
        Index ``t`` of the variable.
    labels:
        ``Val(X_t)`` — all possible answers presented to participants.
    prior:
        ``P(X_t)``; provided by the CE processing component (e.g. from
        the fraction of buses reporting congestion) or uniform.
    lon, lat:
        Location of the disagreement (used for participant selection).
    time:
        Occurrence time of the disagreement.
    true_label:
        Ground truth; known only to simulations, never to estimators.
    """

    task_id: int
    labels: tuple[str, ...] = TRAFFIC_LABELS
    prior: Mapping[str, float] = None  # type: ignore[assignment]
    lon: float = 0.0
    lat: float = 0.0
    time: int = 0
    true_label: Optional[str] = None

    def __post_init__(self) -> None:
        if len(set(self.labels)) < 2:
            raise ValueError("an event needs at least two distinct labels")
        prior = (
            uniform_prior(self.labels)
            if self.prior is None
            else validate_distribution(self.prior, self.labels)
        )
        object.__setattr__(self, "prior", prior)
        if self.true_label is not None and self.true_label not in self.labels:
            raise ValueError(
                f"true label {self.true_label!r} not in {self.labels}"
            )


@dataclass
class Participant:
    """A crowd participant with error probability ``p`` (eqs. 6–7).

    ``lon``/``lat`` are the participant's current position (for the
    location-based selection policy) and ``connection`` the network the
    device is on (for the latency model).
    """

    participant_id: str
    error_probability: float
    lon: float = 0.0
    lat: float = 0.0
    connection: str = "3g"
    #: Mean seconds the participant takes to answer a map task (the
    #: human think time the paper excludes from Figure 6).
    think_time_s: float = 20.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_probability <= 1.0:
            raise ValueError("error probability must be within [0, 1]")

    def answer(self, task: DisagreementTask, rng: random.Random) -> str:
        """Draw an answer ``y_i,t`` for ``task`` per eqs. (6)–(7).

        The task must carry a ``true_label`` (this is the simulated
        participant; real deployments get answers from people).
        """
        if task.true_label is None:
            raise ValueError("cannot simulate an answer without ground truth")
        if rng.random() >= self.error_probability:
            return task.true_label
        wrong = [lb for lb in task.labels if lb != task.true_label]
        return rng.choice(wrong)


@dataclass
class AnswerSet:
    """The observed answers ``{Y_i,t}_{i ∈ u_t}`` for one task."""

    task: DisagreementTask
    answers: dict[str, str] = field(default_factory=dict)

    def add(self, participant_id: str, label: str) -> None:
        """Record one participant's answer."""
        if label not in self.task.labels:
            raise ValueError(
                f"answer {label!r} not among the task's labels"
            )
        self.answers[participant_id] = label

    def __len__(self) -> int:
        return len(self.answers)

    def __bool__(self) -> bool:
        return bool(self.answers)


def simulate_answers(
    task: DisagreementTask,
    participants: Sequence[Participant],
    rng: random.Random,
) -> AnswerSet:
    """Simulate every participant answering ``task``."""
    answer_set = AnswerSet(task)
    for participant in participants:
        answer_set.add(
            participant.participant_id, participant.answer(task, rng)
        )
    return answer_set
