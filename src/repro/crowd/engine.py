"""The crowdsourcing query execution engine (paper, Section 5.3).

Responsibilities reproduced from the paper:

* a *device registry*: each participant registers with the engine from
  a mobile device, connecting (1) to a push-notification service (the
  paper uses Google Cloud Messaging) and (2) to the crowdsourcing
  server as a *map worker*;
* *query dissemination* following the MapReduce decomposition: the
  engine retrieves the registered online participants, selects the
  worker list ``L_q`` by policy, sends each worker a push notification,
  and collects their answers (the *map* phase); *reduce* workers then
  aggregate the intermediate answers;
* *deadline admission*: for real-time queries every selected worker
  must satisfy ``comm_iq + comp_iq < deadline_q`` with both terms
  estimated from historical executions;
* *latency accounting* per step and connection type (Figure 6).

Everything is simulated deterministically: device connections, the
push service and human workers are local objects driven by seeded
RNGs, so a run is exactly reproducible.
"""

from __future__ import annotations

import random
from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from ..faults.spec import CrowdFaults
from ..obs import Registry
from .latency import LatencyModel
from .model import AnswerSet, DisagreementTask, Participant
from .selection import AllParticipants, SelectionPolicy


@dataclass(frozen=True)
class CrowdQuery:
    """``query_q = {Question_q, [answer_1, ..., answer_n]}``."""

    task: DisagreementTask
    question: str = "Is there a traffic congestion at your location?"
    deadline_ms: Optional[float] = None
    reply_window_ms: float = 120_000.0


@dataclass
class MapTaskExecution:
    """Latency breakdown of one worker's map task (all in ms)."""

    participant_id: str
    connection: str
    trigger_ms: float
    push_ms: float
    think_ms: float
    communication_ms: float
    answer: Optional[str] = None
    #: Injected fault that hit this task (``"no_response"`` /
    #: ``"timeout"``), or ``None`` for a clean execution.
    fault: Optional[str] = None

    @property
    def engine_ms(self) -> float:
        """Engine-side latency (Figure 6 excludes the think time)."""
        return self.trigger_ms + self.push_ms + self.communication_ms

    @property
    def total_ms(self) -> float:
        """Wall-clock including the human response."""
        return self.engine_ms + self.think_ms

    @property
    def answered(self) -> bool:
        return self.answer is not None


@dataclass
class QueryExecutionResult:
    """The outcome of disseminating one query."""

    query: CrowdQuery
    selected: list[str]
    executions: list[MapTaskExecution]
    answer_set: AnswerSet
    reduce_worker: Optional[str] = None
    #: Aggregated intermediate results: label -> vote count (the output
    #: of the reduce phase).
    vote_counts: dict[str, int] = field(default_factory=dict)

    @property
    def answered_count(self) -> int:
        return sum(1 for e in self.executions if e.answered)

    def mean_step_ms(self) -> dict[str, float]:
        """Mean per-step latency over the executed map tasks."""
        if not self.executions:
            return {"trigger": 0.0, "push": 0.0, "communication": 0.0}
        n = len(self.executions)
        return {
            "trigger": sum(e.trigger_ms for e in self.executions) / n,
            "push": sum(e.push_ms for e in self.executions) / n,
            "communication": sum(e.communication_ms for e in self.executions) / n,
        }


class QueryExecutionEngine:
    """Deterministic simulation of the mobile crowdsourcing engine.

    Parameters
    ----------
    latency_model:
        Source of per-step latencies (calibrated to Figure 6).
    policy:
        Worker selection policy; defaults to querying every online
        registered participant.
    seed:
        Seed for the answer-simulation RNG.
    metrics:
        Optional :class:`repro.obs.Registry`; when given, the engine
        counts queries/answers and records per-task engine latency
        under ``crowd.engine.*`` (see ``docs/observability.md``).
    faults:
        Optional :class:`repro.faults.CrowdFaults`; when given, map
        tasks suffer deterministic worker non-response and
        reply-window-timeout faults, counted under
        ``crowd.engine.faults.*`` (see ``docs/robustness.md``).
    """

    def __init__(
        self,
        latency_model: Optional[LatencyModel] = None,
        policy: Optional[SelectionPolicy] = None,
        seed: int = 0,
        metrics: Optional[Registry] = None,
        faults: Optional[CrowdFaults] = None,
    ):
        self.latency_model = latency_model or LatencyModel(seed=seed)
        self.policy = policy or AllParticipants()
        self.metrics = metrics
        self.faults = faults if faults is not None and faults.active else None
        # Fault draws come from their own stream so that enabling a
        # profile never perturbs the answer simulation RNG directly.
        self._fault_rng = random.Random(seed + 7919)
        self._rng = random.Random(seed)
        self._devices: dict[str, Participant] = {}
        self._online: dict[str, bool] = {}
        #: Historical engine-side latencies per participant (ms), the
        #: basis of the deadline estimate.
        self._history: dict[str, list[float]] = defaultdict(list)
        self.queries_executed = 0

    # -- device registry -------------------------------------------------
    def register(self, participant: Participant) -> None:
        """Register a participant's device (GCM + map-worker handshake)."""
        self._devices[participant.participant_id] = participant
        self._online[participant.participant_id] = True

    def set_online(self, participant_id: str, online: bool) -> None:
        """Toggle a device's connectivity."""
        if participant_id not in self._devices:
            raise KeyError(f"unknown participant: {participant_id!r}")
        self._online[participant_id] = online

    def update_location(
        self, participant_id: str, lon: float, lat: float
    ) -> None:
        """Track a moving participant (location-based selection uses
        the current position)."""
        device = self._devices.get(participant_id)
        if device is None:
            raise KeyError(f"unknown participant: {participant_id!r}")
        device.lon = lon
        device.lat = lat

    def update_connection(self, participant_id: str, connection: str) -> None:
        """Track a connection-type change (e.g. WiFi → 3G).

        The paper's push service "enables us to track the participant
        even if he changes his connection type"; latency estimates for
        future tasks follow the new network.
        """
        device = self._devices.get(participant_id)
        if device is None:
            raise KeyError(f"unknown participant: {participant_id!r}")
        # Validate against the latency model before committing.
        self.latency_model.expected_engine_ms(connection)
        device.connection = connection

    def online_participants(self) -> list[Participant]:
        """The currently reachable registered participants."""
        return [
            p
            for pid, p in self._devices.items()
            if self._online.get(pid, False)
        ]

    # -- latency estimation ----------------------------------------------
    def estimated_latency_ms(self, participant: Participant) -> float:
        """Expected engine-side latency for one worker.

        Mean of the worker's historical executions when available,
        otherwise the latency model's expectation for the worker's
        current connection — "estimated from the communication time of
        the tasks executed previously in the participant's current
        location" (Section 5.3).
        """
        history = self._history.get(participant.participant_id)
        if history:
            return sum(history) / len(history)
        return self.latency_model.expected_engine_ms(participant.connection)

    # -- query execution ---------------------------------------------------
    def execute(self, query: CrowdQuery) -> QueryExecutionResult:
        """Disseminate one query and collect/aggregate the answers.

        Steps (Section 5.3): (1) retrieve the registered online
        participants, (2) select ``L_q`` by policy (plus the deadline
        admission test when the query has one), (3) push the map task to
        each worker and gather answers until the reply window closes,
        then run the reduce phase on the intermediate results.
        """
        candidates = self.online_participants()
        selected = self.policy.select(query.task, candidates)
        if query.deadline_ms is not None:
            selected = [
                p
                for p in selected
                if self.estimated_latency_ms(p) < query.deadline_ms
            ]

        executions: list[MapTaskExecution] = []
        answer_set = AnswerSet(query.task)
        for participant in selected:
            execution = self._run_map_task(participant, query)
            executions.append(execution)
            if execution.answered:
                answer_set.add(participant.participant_id, execution.answer)
            self._history[participant.participant_id].append(
                execution.engine_ms
            )

        # Reduce phase: one of the answering workers aggregates the
        # intermediate results into per-label vote counts.
        vote_counts: dict[str, int] = {}
        reduce_worker: Optional[str] = None
        answered = [e for e in executions if e.answered]
        if answered:
            reduce_worker = self._rng.choice(answered).participant_id
            for execution in answered:
                vote_counts[execution.answer] = (
                    vote_counts.get(execution.answer, 0) + 1
                )

        self.queries_executed += 1
        if self.metrics is not None:
            self.metrics.counter("crowd.engine.queries").inc()
            self.metrics.counter("crowd.engine.selected").inc(len(selected))
            self.metrics.counter("crowd.engine.answers").inc(
                sum(1 for e in executions if e.answered)
            )
            latency = self.metrics.timing("crowd.engine.engine_ms")
            for execution in executions:
                latency.observe(execution.engine_ms)
        return QueryExecutionResult(
            query=query,
            selected=[p.participant_id for p in selected],
            executions=executions,
            answer_set=answer_set,
            reduce_worker=reduce_worker,
            vote_counts=vote_counts,
        )

    def _run_map_task(
        self, participant: Participant, query: CrowdQuery
    ) -> MapTaskExecution:
        """Simulate one worker's map task with its latency breakdown."""
        model = self.latency_model
        trigger = model.trigger_ms()
        push = model.push_ms(participant.connection)
        think = model.think_ms(participant.think_time_s)
        comm = model.communication_ms(participant.connection)
        execution = MapTaskExecution(
            participant_id=participant.participant_id,
            connection=participant.connection,
            trigger_ms=trigger,
            push_ms=push,
            think_ms=think,
            communication_ms=comm,
        )
        if self.faults is not None:
            # One draw per configured fault class per task, in a fixed
            # order, so the fault pattern depends only on the seed and
            # the task sequence — never on the faults' outcomes.
            faults = self.faults
            if (
                faults.no_response_rate > 0.0
                and self._fault_rng.random() < faults.no_response_rate
            ):
                execution.fault = "no_response"
            if (
                faults.timeout_rate > 0.0
                and self._fault_rng.random() < faults.timeout_rate
                and execution.fault is None
            ):
                execution.fault = "timeout"
                execution.think_ms += faults.extra_think_ms
            if execution.fault is not None and self.metrics is not None:
                self.metrics.counter(
                    f"crowd.engine.faults.{execution.fault}"
                ).inc()
        # The worker answers only if the task round trip fits in the
        # reply window (after which the server stops waiting).  A
        # non-responding worker never answers; a timed-out worker's
        # inflated think time pushes it past the window.
        if (
            execution.fault != "no_response"
            and execution.total_ms <= query.reply_window_ms
        ):
            execution.answer = participant.answer(query.task, self._rng)
        return execution
