"""The crowdsourcing component facade used by the integrated system.

Wires the query execution engine (Section 5.3) to the online EM
aggregator (Section 5.2): a ``sourceDisagreement`` CE from the event
processing component becomes a :class:`~repro.crowd.model.DisagreementTask`,
the engine queries selected participants, the online EM fuses their
answers, and a ``crowd(LonInt, LatInt, Val)`` SDE is produced for RTEC,
the traffic-modelling component and the city operators.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Optional

from ..core.events import Event
from .engine import CrowdQuery, QueryExecutionEngine, QueryExecutionResult
from .model import TRAFFIC_LABELS, DisagreementTask
from .online_em import CrowdEstimate, OnlineEM


@dataclass
class CrowdsourcingOutcome:
    """Everything produced for one source disagreement."""

    task: DisagreementTask
    execution: QueryExecutionResult
    estimate: Optional[CrowdEstimate]
    crowd_event: Optional[Event]


class CrowdsourcingComponent:
    """End-to-end crowdsourcing: select → query → aggregate → emit.

    Parameters
    ----------
    engine:
        The (simulated) query execution engine with registered devices.
    aggregator:
        The online EM estimator; shared state persists across events so
        participant reliability keeps improving.
    labels:
        ``Val(X_t)`` presented for every disagreement.
    """

    def __init__(
        self,
        engine: QueryExecutionEngine,
        aggregator: Optional[OnlineEM] = None,
        labels: Sequence[str] = TRAFFIC_LABELS,
    ):
        self.engine = engine
        self.aggregator = aggregator or OnlineEM()
        self.labels = tuple(labels)
        self._task_counter = 0
        self.outcomes: list[CrowdsourcingOutcome] = []

    def handle_disagreement(
        self,
        *,
        intersection: str,
        lon: float,
        lat: float,
        time: int,
        prior: Optional[Mapping[str, float]] = None,
        true_label: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> CrowdsourcingOutcome:
        """Crowdsource one ``sourceDisagreement`` CE.

        ``true_label`` is the simulation's ground truth driving the
        simulated participants' answers; a real deployment would omit
        it and receive human answers instead.

        Returns the outcome; ``crowd_event`` is ``None`` when no
        participant answered (the disagreement stays unresolved).
        """
        self._task_counter += 1
        task = DisagreementTask(
            task_id=self._task_counter,
            labels=self.labels,
            prior=dict(prior) if prior is not None else None,
            lon=lon,
            lat=lat,
            time=time,
            true_label=true_label,
        )
        execution = self.engine.execute(
            CrowdQuery(task=task, deadline_ms=deadline_ms)
        )

        estimate: Optional[CrowdEstimate] = None
        crowd_event: Optional[Event] = None
        if execution.answer_set:
            estimate = self.aggregator.process(execution.answer_set)
            # The crowd event occurs when the slowest answer is in.
            elapsed_s = max(
                (e.total_ms for e in execution.executions if e.answered),
                default=0.0,
            ) / 1000.0
            event_time = time + max(1, math.ceil(elapsed_s))
            crowd_event = Event(
                "crowd",
                event_time,
                {
                    "intersection": intersection,
                    "lon": lon,
                    "lat": lat,
                    "value": estimate.value,
                    "label": estimate.decided_label,
                    "confidence": estimate.posterior[estimate.decided_label],
                },
            )
        outcome = CrowdsourcingOutcome(
            task=task,
            execution=execution,
            estimate=estimate,
            crowd_event=crowd_event,
        )
        self.outcomes.append(outcome)
        return outcome
