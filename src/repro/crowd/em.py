"""Batch Expectation-Maximization for participant reliability.

The classical (Dawid-Skene-style) EM algorithm the paper reviews in
Section 5.2 (equations (8)–(11)): alternate between computing the
posterior over each event's true label given the current error-rate
estimates, and re-estimating each participant's error rate from those
posteriors.  The paper rejects batch EM for the streaming setting —
"this algorithm needs to operate in batch mode, which is not acceptable
for our large, streaming problem" — but it is the natural baseline for
the online variant (see the A2 ablation bench), so it is implemented
here in full.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from .model import AnswerSet


def answer_likelihood(
    answer: str, true_label: str, error_probability: float, n_labels: int
) -> float:
    """``P(Y_i,t = answer | X_t = true_label)`` per eqs. (6)–(7)."""
    if answer == true_label:
        return 1.0 - error_probability
    return error_probability / (n_labels - 1)


def posterior_over_labels(
    answer_set: AnswerSet,
    error_probabilities: Mapping[str, float],
    *,
    default_error: float = 0.25,
) -> dict[str, float]:
    """Posterior ``P(X_t | {Y_i,t}, Θ)`` via Bayes rule.

    ``α(x) ∝ P(X_t = x) · Π_i P(Y_i,t = y_i,t | X_t = x)`` — lines 3–8
    of the paper's Algorithm 1.  Unknown participants fall back to
    ``default_error``.
    """
    task = answer_set.task
    n = len(task.labels)
    alpha: dict[str, float] = {}
    for label in task.labels:
        weight = task.prior[label]
        for participant_id, answer in answer_set.answers.items():
            p_i = error_probabilities.get(participant_id, default_error)
            weight *= answer_likelihood(answer, label, p_i, n)
        alpha[label] = weight
    total = sum(alpha.values())
    if total <= 0.0:
        # All answers impossible under the model (e.g. p_i = 0 and a
        # contradiction): fall back to the prior.
        return dict(task.prior)
    return {label: weight / total for label, weight in alpha.items()}


@dataclass
class BatchEMResult:
    """Converged estimates of a batch EM run."""

    error_probabilities: dict[str, float]
    posteriors: list[dict[str, float]]
    iterations: int
    log_likelihood: float
    converged: bool


@dataclass
class BatchEM:
    """Batch EM over a full crowdsourced data set.

    Parameters
    ----------
    initial_error:
        Initial error-rate estimate for every participant (the paper
        biases towards trustful participants with 0.25).
    max_iterations, tolerance:
        Convergence controls on the parameter vector.
    """

    initial_error: float = 0.25
    max_iterations: int = 200
    tolerance: float = 1e-6
    clamp: float = 1e-4

    def fit(self, answer_sets: Sequence[AnswerSet]) -> BatchEMResult:
        """Run EM to convergence over ``answer_sets``."""
        if not answer_sets:
            raise ValueError("batch EM needs at least one answered event")
        participants = sorted(
            {pid for s in answer_sets for pid in s.answers}
        )
        theta = {pid: self.initial_error for pid in participants}

        posteriors: list[dict[str, float]] = []
        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # E-step: posterior over each event's label (eq. 10).
            posteriors = [
                posterior_over_labels(s, theta, default_error=self.initial_error)
                for s in answer_sets
            ]
            # M-step: expected fraction of wrong answers (eq. 11).
            new_theta: dict[str, float] = {}
            for pid in participants:
                wrong_mass = 0.0
                count = 0
                for answer_set, posterior in zip(answer_sets, posteriors):
                    answer = answer_set.answers.get(pid)
                    if answer is None:
                        continue
                    wrong_mass += 1.0 - posterior[answer]
                    count += 1
                estimate = wrong_mass / count if count else self.initial_error
                new_theta[pid] = min(max(estimate, self.clamp), 1.0 - self.clamp)
            delta = max(
                abs(new_theta[pid] - theta[pid]) for pid in participants
            )
            theta = new_theta
            if delta < self.tolerance:
                converged = True
                break

        return BatchEMResult(
            error_probabilities=theta,
            posteriors=posteriors,
            iterations=iterations,
            log_likelihood=self._log_likelihood(answer_sets, theta),
            converged=converged,
        )

    def _log_likelihood(
        self,
        answer_sets: Sequence[AnswerSet],
        theta: Mapping[str, float],
    ) -> float:
        """Observed-data log likelihood ``log P(A_1:T | Θ)`` (eq. 8)."""
        total = 0.0
        for answer_set in answer_sets:
            task = answer_set.task
            n = len(task.labels)
            marginal = 0.0
            for label in task.labels:
                weight = task.prior[label]
                for pid, answer in answer_set.answers.items():
                    p_i = theta.get(pid, self.initial_error)
                    weight *= answer_likelihood(answer, label, p_i, n)
                marginal += weight
            total += math.log(max(marginal, 1e-300))
        return total
