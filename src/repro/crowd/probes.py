"""Generic smartphone sensor probes over the MapReduce machinery.

Section 5.3 closes by motivating the MapReduce decomposition beyond
yes/no questions: "we could employ the sensors of the smartphones to
extract data, such as their current speed or local humidity, as a Map
task, and aggregate the intermediate data based on their density at
the Reduce phase."  This module implements those numeric probes: each
map worker samples a quantity from their device, and a reduce step
aggregates the readings — optionally weighting by the local density of
participants, so a cluster of ten phones in one street does not
dominate a city-wide average.
"""

from __future__ import annotations

import statistics
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Optional

from ..core.geo import distance_m
from .engine import QueryExecutionEngine
from .model import Participant

#: A map task: read one numeric quantity from a participant's device.
ProbeFunction = Callable[[Participant], float]


@dataclass(frozen=True)
class SensorProbe:
    """A numeric crowd-sensing request.

    Parameters
    ----------
    quantity:
        Human-readable name ("speed_kmh", "humidity", ...).
    read:
        The map function executed on each device.
    reducer:
        ``"mean"``, ``"median"`` or ``"density_weighted"`` — the last
        one weights each reading by the inverse local participant
        density (readings from crowded spots count less individually).
    density_radius_m:
        Neighbourhood radius for the density weighting.
    reply_window_ms:
        Devices slower than this (engine latency; probes need no human
        think time) do not contribute.
    """

    quantity: str
    read: ProbeFunction
    reducer: str = "mean"
    density_radius_m: float = 500.0
    reply_window_ms: float = 10_000.0

    def __post_init__(self) -> None:
        if self.reducer not in ("mean", "median", "density_weighted"):
            raise ValueError(f"unknown reducer: {self.reducer!r}")
        if self.density_radius_m <= 0:
            raise ValueError("density radius must be positive")


@dataclass
class ProbeReading:
    """One device's contribution."""

    participant_id: str
    value: float
    lon: float
    lat: float
    latency_ms: float
    weight: float = 1.0


@dataclass
class ProbeResult:
    """Outcome of one sensor probe."""

    probe: SensorProbe
    readings: list[ProbeReading] = field(default_factory=list)
    aggregate: Optional[float] = None

    @property
    def n_readings(self) -> int:
        return len(self.readings)


def execute_probe(
    engine: QueryExecutionEngine, probe: SensorProbe
) -> ProbeResult:
    """Run a sensor probe over an engine's online devices.

    Map phase: every online participant's device is pushed the probe,
    executes ``probe.read`` and uploads the value; devices whose engine
    latency exceeds the reply window are dropped.  Reduce phase: the
    selected reducer aggregates the readings.
    """
    model = engine.latency_model
    result = ProbeResult(probe=probe)
    for participant in engine.online_participants():
        latency = (
            model.trigger_ms()
            + model.push_ms(participant.connection)
            + model.communication_ms(participant.connection)
        )
        if latency > probe.reply_window_ms:
            continue
        result.readings.append(
            ProbeReading(
                participant_id=participant.participant_id,
                value=float(probe.read(participant)),
                lon=participant.lon,
                lat=participant.lat,
                latency_ms=latency,
            )
        )
    if not result.readings:
        return result

    if probe.reducer == "mean":
        result.aggregate = statistics.fmean(
            r.value for r in result.readings
        )
    elif probe.reducer == "median":
        result.aggregate = statistics.median(
            r.value for r in result.readings
        )
    else:  # density_weighted
        for reading in result.readings:
            neighbours = sum(
                1
                for other in result.readings
                if distance_m(
                    reading.lon, reading.lat, other.lon, other.lat
                )
                <= probe.density_radius_m
            )
            reading.weight = 1.0 / neighbours
        total_weight = sum(r.weight for r in result.readings)
        result.aggregate = (
            sum(r.value * r.weight for r in result.readings) / total_weight
        )
    return result
