"""Crowdsourcing for veracity resolution (the paper's Section 5).

* :mod:`repro.crowd.model` — the participant/answer model (eqs. 6–7);
* :mod:`repro.crowd.em` — batch EM baseline (eqs. 8–11);
* :mod:`repro.crowd.online_em` — streaming EM (Algorithm 1);
* :mod:`repro.crowd.selection` — worker selection policies;
* :mod:`repro.crowd.latency` — Figure 6 latency calibration;
* :mod:`repro.crowd.engine` — MapReduce-style query execution engine;
* :mod:`repro.crowd.component` — the integrated facade.
"""

from .baselines import MajorityVote, SequentialBayes
from .component import CrowdsourcingComponent, CrowdsourcingOutcome
from .em import BatchEM, BatchEMResult, answer_likelihood, posterior_over_labels
from .engine import (
    CrowdQuery,
    MapTaskExecution,
    QueryExecutionEngine,
    QueryExecutionResult,
)
from .latency import (
    COMMUNICATION_LATENCY,
    CONNECTION_TYPES,
    PUSH_LATENCY,
    TRIGGER_RANGE_MS,
    LatencyModel,
    StepLatency,
)
from .model import (
    CONGESTION_LABEL,
    TRAFFIC_LABELS,
    AnswerSet,
    DisagreementTask,
    Participant,
    simulate_answers,
    uniform_prior,
    validate_distribution,
)
from .online_em import (
    CrowdEstimate,
    OnlineEM,
    harmonic_gamma,
    paper_printed_gamma,
)
from .priors import bus_report_prior
from .probes import (
    ProbeReading,
    ProbeResult,
    SensorProbe,
    execute_probe,
)
from .rewards import RewardLedger, RewardPolicy
from .selection import (
    AllParticipants,
    ChainedPolicy,
    DeadlinePolicy,
    LocationPolicy,
    ReliabilityPolicy,
    SelectionPolicy,
)

__all__ = [
    "TRAFFIC_LABELS",
    "CONGESTION_LABEL",
    "DisagreementTask",
    "Participant",
    "AnswerSet",
    "simulate_answers",
    "uniform_prior",
    "validate_distribution",
    "answer_likelihood",
    "posterior_over_labels",
    "BatchEM",
    "BatchEMResult",
    "OnlineEM",
    "CrowdEstimate",
    "harmonic_gamma",
    "paper_printed_gamma",
    "SelectionPolicy",
    "AllParticipants",
    "LocationPolicy",
    "ReliabilityPolicy",
    "DeadlinePolicy",
    "ChainedPolicy",
    "LatencyModel",
    "StepLatency",
    "PUSH_LATENCY",
    "COMMUNICATION_LATENCY",
    "TRIGGER_RANGE_MS",
    "CONNECTION_TYPES",
    "CrowdQuery",
    "QueryExecutionEngine",
    "QueryExecutionResult",
    "MapTaskExecution",
    "CrowdsourcingComponent",
    "CrowdsourcingOutcome",
    "bus_report_prior",
    "RewardPolicy",
    "RewardLedger",
    "SensorProbe",
    "ProbeReading",
    "ProbeResult",
    "execute_probe",
    "MajorityVote",
    "SequentialBayes",
]
