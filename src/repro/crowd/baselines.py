"""Answer-aggregation baselines for comparison with online EM.

Section 5 motivates modelling participant reliability by contrasting
with simpler aggregation: "the error of the average answer is usually
smaller than the average error of each individual answer" (Galton's
vox populi), and cites reliability-aware alternatives — EM (Raykar et
al.), Bayesian uncertainty scores (Sheng et al.) and *sequential
Bayesian estimation* (Donmez et al.).  Two baselines are implemented
for the A6 ablation:

* :class:`MajorityVote` — reliability-blind: the most frequent answer
  wins (ties broken towards the prior);
* :class:`SequentialBayes` — per-participant Beta posterior over the
  probability of answering correctly, updated sequentially against the
  consensus of each event (a light-weight stand-in for Donmez et al.'s
  time-varying estimator).

Both expose the same ``process(answer_set) -> CrowdEstimate`` surface
as :class:`repro.crowd.online_em.OnlineEM`, so they are drop-in
replacements in the crowdsourcing component.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .em import answer_likelihood
from .model import AnswerSet, CONGESTION_LABEL
from .online_em import CrowdEstimate


@dataclass
class MajorityVote:
    """Reliability-blind aggregation: plurality of the answers.

    The posterior reported is the normalised vote histogram blended
    with the task prior, so downstream confidence fields stay
    meaningful; ``peaked`` uses the same threshold as online EM.
    """

    peak_threshold: float = 0.99
    congestion_label: str = CONGESTION_LABEL
    peaked_events: int = 0
    total_events: int = 0

    def process(self, answer_set: AnswerSet) -> CrowdEstimate:
        """Aggregate one event's answers by plurality."""
        task = answer_set.task
        counts = Counter(answer_set.answers.values())
        total = sum(counts.values())
        posterior = {
            label: (counts.get(label, 0) / total) if total else task.prior[label]
            for label in task.labels
        }
        decided = max(
            task.labels,
            key=lambda lb: (posterior[lb], task.prior[lb]),
        )
        peaked = posterior[decided] > self.peak_threshold
        self.total_events += 1
        if peaked:
            self.peaked_events += 1
        return CrowdEstimate(
            posterior=posterior,
            decided_label=decided,
            value=(
                "positive" if decided == self.congestion_label else "negative"
            ),
            peaked=peaked,
        )


@dataclass
class SequentialBayes:
    """Sequential Beta-posterior reliability estimation.

    Each participant ``i`` carries a Beta(α_i, β_i) posterior over
    their probability of answering *correctly*.  For each event the
    label posterior is computed with the current mean reliabilities
    (same likelihood as eqs. 6–7), the MAP label is taken as the
    event's consensus, and each answering participant's Beta counters
    are updated by whether they matched it.  Unlike online EM the
    update is hard (match / no match), which is simpler but noisier —
    exactly the trade-off the A6 ablation quantifies.
    """

    prior_alpha: float = 3.0
    prior_beta: float = 1.0
    peak_threshold: float = 0.99
    congestion_label: str = CONGESTION_LABEL
    #: Per-participant Beta counters over answering correctly.
    counters: dict[str, tuple[float, float]] = field(default_factory=dict)
    peaked_events: int = 0
    total_events: int = 0

    def __post_init__(self) -> None:
        if self.prior_alpha <= 0 or self.prior_beta <= 0:
            raise ValueError("Beta prior parameters must be positive")

    def reliability(self, participant_id: str) -> float:
        """Posterior-mean probability of answering correctly."""
        alpha, beta = self.counters.get(
            participant_id, (self.prior_alpha, self.prior_beta)
        )
        return alpha / (alpha + beta)

    def estimate(self, participant_id: str) -> float:
        """Error-probability view (1 − reliability), mirroring OnlineEM."""
        return 1.0 - self.reliability(participant_id)

    def process(self, answer_set: AnswerSet) -> CrowdEstimate:
        """Aggregate one event and update the Beta counters."""
        task = answer_set.task
        n = len(task.labels)
        weights = {}
        for label in task.labels:
            weight = task.prior[label]
            for pid, answer in answer_set.answers.items():
                error = self.estimate(pid)
                weight *= answer_likelihood(answer, label, error, n)
            weights[label] = weight
        total = sum(weights.values())
        if total <= 0:
            posterior = dict(task.prior)
        else:
            posterior = {lb: w / total for lb, w in weights.items()}
        decided = max(posterior, key=posterior.get)  # type: ignore[arg-type]

        for pid, answer in answer_set.answers.items():
            alpha, beta = self.counters.get(
                pid, (self.prior_alpha, self.prior_beta)
            )
            if answer == decided:
                alpha += 1.0
            else:
                beta += 1.0
            self.counters[pid] = (alpha, beta)

        peaked = posterior[decided] > self.peak_threshold
        self.total_events += 1
        if peaked:
            self.peaked_events += 1
        return CrowdEstimate(
            posterior=posterior,
            decided_label=decided,
            value=(
                "positive" if decided == self.congestion_label else "negative"
            ),
            peaked=peaked,
        )
