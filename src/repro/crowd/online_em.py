"""Online Expectation-Maximization — the paper's Algorithm 1.

The batch EM of :mod:`repro.crowd.em` rescans the full data set, which
"is not acceptable for our large, streaming problem" (Section 5.2).
The online variant (after Cappé & Moulines) processes one source
disagreement at a time, updates each answering participant's error-rate
estimate with a stochastic-approximation step, and then forgets both
the event and the answers.

Per-participant step sizes: because not every participant answers every
event, the update for participant ``i`` uses ``γ_{t_i}`` where ``t_i``
counts how many times that participant has been queried so far.

Step-size sequence
------------------
The paper prints ``γ_t = t/(t+1)``, but also requires
``Σ γ_t = ∞`` and ``Σ γ_t² < ∞`` — conditions ``t/(t+1)`` violates
(it converges to 1, so the estimate would forever chase the last
answer and never converge, contradicting the reported Figure 5).  We
default to the standard Robbins-Monro choice ``γ_t = 1/(t+1)``, which
satisfies both conditions and reproduces Figure 5; the sequence is
injectable so the literal printed variant can be compared (see the A2
ablation bench and DESIGN.md).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from .em import posterior_over_labels
from .model import AnswerSet, CONGESTION_LABEL

GammaSchedule = Callable[[int], float]


def harmonic_gamma(t: int) -> float:
    """``γ_t = 1/(t+1)`` — the convergent default (running average)."""
    return 1.0 / (t + 1)


def paper_printed_gamma(t: int) -> float:
    """``γ_t = t/(t+1)`` — as literally printed in the paper.

    Kept for the ablation study: this sequence approaches 1, so the
    estimate tracks the most recent posterior instead of converging.
    """
    return t / (t + 1.0)


@dataclass
class CrowdEstimate:
    """The outcome of processing one disagreement event.

    Attributes
    ----------
    posterior:
        ``α̂(x) = P(X_t = x | A_t, Θ)`` over the task's labels.
    decided_label:
        ``argmax_x α̂(x)``.
    value:
        The paper's line 9: ``positive`` when the congestion label wins,
        ``negative`` otherwise.
    peaked:
        Whether the posterior is "very peaked" (max prob > 0.99), the
        statistic reported in Section 7.2 (94% of events).
    """

    posterior: dict[str, float]
    decided_label: str
    value: str
    peaked: bool


@dataclass
class OnlineEM:
    """Streaming reliability estimation (Algorithm 1).

    Parameters
    ----------
    initial_error:
        Initial estimate ``p_i`` for a newly seen participant.  The
        paper initialises to 0.25 to bias towards trustful participants
        (an unbiased 0.75 start would never update under uniform
        priors).
    gamma:
        The stochastic-approximation step-size schedule ``γ_t``.
    peak_threshold:
        Posterior mass that counts as a "very peaked" distribution.
    congestion_label:
        The label whose victory produces a ``positive`` crowd value.
    """

    initial_error: float = 0.25
    gamma: GammaSchedule = harmonic_gamma
    peak_threshold: float = 0.99
    congestion_label: str = CONGESTION_LABEL
    #: Current error-rate estimates ``p_i``.
    error_probabilities: dict[str, float] = field(default_factory=dict)
    #: Query counts ``t_i`` per participant.
    query_counts: dict[str, int] = field(default_factory=dict)
    #: Running count of processed events with a peaked posterior.
    peaked_events: int = 0
    #: Total processed events.
    total_events: int = 0

    def estimate(self, participant_id: str) -> float:
        """Current ``p_i`` estimate (initial value if never queried)."""
        return self.error_probabilities.get(participant_id, self.initial_error)

    # -- durability ----------------------------------------------------
    # The estimator is also pickled wholesale inside pipeline
    # checkpoints (``repro.recovery``); these JSON-able dicts are the
    # *explicit* contract for what must survive a restart: the ``p_i``
    # estimates, the per-participant step counts ``t_i`` that drive the
    # γ schedule, and the peaked-posterior statistics.  The schedule
    # itself is configuration, not state.
    def state_dict(self) -> dict:
        """The estimator's durable state as plain JSON-able data."""
        return {
            "error_probabilities": dict(self.error_probabilities),
            "query_counts": dict(self.query_counts),
            "peaked_events": self.peaked_events,
            "total_events": self.total_events,
        }

    def load_state_dict(self, state: Mapping) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.error_probabilities = {
            str(k): float(v)
            for k, v in state["error_probabilities"].items()
        }
        self.query_counts = {
            str(k): int(v) for k, v in state["query_counts"].items()
        }
        self.peaked_events = int(state["peaked_events"])
        self.total_events = int(state["total_events"])

    def process(self, answer_set: AnswerSet) -> CrowdEstimate:
        """Process one disagreement event (one loop body of Algorithm 1).

        Lines 3–8: compute the posterior ``α̂`` given the current
        parameters.  Line 9–10: derive the crowd value.  Lines 11–14:
        stochastic-approximation update of every answering participant's
        error estimate; the event and answers can then be forgotten.
        """
        posterior = posterior_over_labels(
            answer_set,
            self.error_probabilities,
            default_error=self.initial_error,
        )

        # Parameter update: the posterior probability that participant
        # i's answer was wrong is 1 - α̂(y_i,t).
        for participant_id, answer in answer_set.answers.items():
            t_i = self.query_counts.get(participant_id, 1)
            step = self.gamma(t_i)
            current = self.estimate(participant_id)
            wrong = 1.0 - posterior[answer]
            self.error_probabilities[participant_id] = (
                (1.0 - step) * current + step * wrong
            )
            self.query_counts[participant_id] = t_i + 1

        decided = max(posterior, key=posterior.get)  # type: ignore[arg-type]
        peaked = posterior[decided] > self.peak_threshold
        self.total_events += 1
        if peaked:
            self.peaked_events += 1
        return CrowdEstimate(
            posterior=posterior,
            decided_label=decided,
            value="positive" if decided == self.congestion_label else "negative",
            peaked=peaked,
        )

    @property
    def peaked_fraction(self) -> float:
        """Fraction of processed events with a peaked posterior
        (Section 7.2 reports ~94%)."""
        if self.total_events == 0:
            return 0.0
        return self.peaked_events / self.total_events

    def reliability_ranking(self) -> list[str]:
        """Participants ordered most reliable first (smallest ``p_i``).

        Used both for worker selection and for reward computation (the
        paper notes a participant's quality "may be a factor in the
        computation of the reward").
        """
        return sorted(self.error_probabilities, key=self.estimate)

    def relative_errors(
        self, true_probabilities: Mapping[str, float]
    ) -> dict[str, float]:
        """Relative estimation error per participant (Figure 5 bottom).

        ``(p̂_i - p_i) / p_i`` for every participant with known ground
        truth.
        """
        out = {}
        for pid, true_p in true_probabilities.items():
            if true_p <= 0:
                continue
            out[pid] = (self.estimate(pid) - true_p) / true_p
        return out
