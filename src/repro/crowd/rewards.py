"""Participant rewards from estimated quality.

Section 7.2: "Correctly estimating the quality of participants leads
to a better assessment of the sensor disagreement, but it is also
important for rewarding a participant.  Indeed, a participant's
quality may be a factor in the computation of the reward he receives
for his contribution."  This module implements that reward scheme:
per-answer base pay plus a quality bonus driven by the online EM's
error-rate estimates.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from .online_em import OnlineEM


@dataclass(frozen=True)
class RewardPolicy:
    """Linear pay-per-answer with a quality multiplier.

    ``reward(i) = answers_i · base · (1 + bonus · quality_i)`` where
    ``quality_i = max(0, 1 - p̂_i / quality_cutoff)`` — participants
    estimated at or beyond ``quality_cutoff`` error rate earn no bonus
    (a uniformly-guessing participant provides no information).
    """

    base_per_answer: float = 0.05
    quality_bonus: float = 1.0
    quality_cutoff: float = 0.75

    def __post_init__(self) -> None:
        if self.base_per_answer < 0:
            raise ValueError("base pay must be non-negative")
        if self.quality_bonus < 0:
            raise ValueError("quality bonus must be non-negative")
        if not 0.0 < self.quality_cutoff <= 1.0:
            raise ValueError("quality cutoff must be within (0, 1]")

    def quality(self, error_probability: float) -> float:
        """Quality score in [0, 1] from an error-rate estimate."""
        return max(0.0, 1.0 - error_probability / self.quality_cutoff)

    def reward(self, answers: int, error_probability: float) -> float:
        """Reward for one participant."""
        if answers < 0:
            raise ValueError("answer count must be non-negative")
        multiplier = 1.0 + self.quality_bonus * self.quality(
            error_probability
        )
        return answers * self.base_per_answer * multiplier


@dataclass
class RewardLedger:
    """Accumulates per-participant answer counts and settles rewards."""

    policy: RewardPolicy = field(default_factory=RewardPolicy)
    answer_counts: dict[str, int] = field(default_factory=dict)

    def record_answers(self, participant_ids) -> None:
        """Credit one answered query to each participant."""
        for pid in participant_ids:
            self.answer_counts[pid] = self.answer_counts.get(pid, 0) + 1

    def settle(self, estimator: OnlineEM) -> dict[str, float]:
        """Compute every participant's reward from current estimates."""
        return {
            pid: self.policy.reward(count, estimator.estimate(pid))
            for pid, count in self.answer_counts.items()
        }

    def settle_from(
        self, error_probabilities: Mapping[str, float],
        default_error: float = 0.25,
    ) -> dict[str, float]:
        """Settle against an explicit error-probability mapping."""
        return {
            pid: self.policy.reward(
                count, error_probabilities.get(pid, default_error)
            )
            for pid, count in self.answer_counts.items()
        }
