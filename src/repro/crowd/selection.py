"""Worker selection policies (the crowdsourcing *query modelling* part).

"The crowdsourcing component has two independent parts: the query
modelling part whose objective is to select the humans that will be
answering a question, and a query execution engine" (paper, Section 2).
The engine "selects the list of workers L_q to be queried based on the
selected policy (e.g. location, reliability, etc)" (Section 5.3).

A policy is a callable narrowing a candidate list for a task; policies
compose by chaining.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping, Sequence

from ..core.geo import distance_m
from .model import DisagreementTask, Participant


class SelectionPolicy(abc.ABC):
    """Narrow the candidate participants for one task."""

    @abc.abstractmethod
    def select(
        self,
        task: DisagreementTask,
        candidates: Sequence[Participant],
    ) -> list[Participant]:
        """Return the selected subset, preserving preference order."""

    def __or__(self, other: "SelectionPolicy") -> "ChainedPolicy":
        """Compose: ``location | reliability`` filters sequentially."""
        return ChainedPolicy([self, other])


class AllParticipants(SelectionPolicy):
    """Query everyone (the Fig. 5 experiment queries all 10)."""

    def select(self, task, candidates):
        return list(candidates)


class LocationPolicy(SelectionPolicy):
    """Participants within ``radius_m`` metres of the disagreement.

    The paper "queries volunteers close to the sensors that disagree".
    """

    def __init__(self, radius_m: float = 500.0):
        if radius_m <= 0:
            raise ValueError("radius must be positive")
        self.radius_m = radius_m

    def select(self, task, candidates):
        return [
            p
            for p in candidates
            if distance_m(task.lon, task.lat, p.lon, p.lat) <= self.radius_m
        ]


class ReliabilityPolicy(SelectionPolicy):
    """The ``k`` most reliable participants by estimated error rate.

    ``estimates`` is typically the live
    :attr:`repro.crowd.online_em.OnlineEM.error_probabilities` mapping;
    unknown participants are ranked with ``default_error``.
    """

    def __init__(
        self,
        estimates: Mapping[str, float],
        k: int = 5,
        default_error: float = 0.25,
    ):
        if k <= 0:
            raise ValueError("k must be positive")
        self.estimates = estimates
        self.k = k
        self.default_error = default_error

    def select(self, task, candidates):
        ranked = sorted(
            candidates,
            key=lambda p: self.estimates.get(
                p.participant_id, self.default_error
            ),
        )
        return ranked[: self.k]


class DeadlinePolicy(SelectionPolicy):
    """Admission control: only workers expected to meet the deadline.

    The paper requires ``comm_iq + comp_iq < deadline_q`` for every
    selected participant, with both terms estimated from historical
    data; ``estimate_ms`` provides that estimate (e.g.
    ``QueryExecutionEngine.estimated_latency_ms``).
    """

    def __init__(self, deadline_ms: float, estimate_ms):
        if deadline_ms <= 0:
            raise ValueError("deadline must be positive")
        self.deadline_ms = deadline_ms
        self.estimate_ms = estimate_ms

    def select(self, task, candidates):
        return [
            p
            for p in candidates
            if self.estimate_ms(p) < self.deadline_ms
        ]


class ChainedPolicy(SelectionPolicy):
    """Apply several policies in sequence (set intersection, ordered)."""

    def __init__(self, policies: Sequence[SelectionPolicy]):
        if not policies:
            raise ValueError("a chain needs at least one policy")
        self.policies = list(policies)

    def select(self, task, candidates):
        current = list(candidates)
        for policy in self.policies:
            current = policy.select(task, current)
            if not current:
                break
        return current
