"""Event priors supplied by the CE processing component.

Section 5.1: the prior ``P(X_t)`` over a disagreement's labels "can
either be provided by the CE processing component, or be the uniform
distribution.  E.g. if only 1 out of 4 buses at a given location
indicates a congestion, the prior distribution could assign a lower
prior probability to the congestion than if 3 out of 4 buses reported
a congestion."  This module implements that construction: a smoothed
Bernoulli vote over the congestion label, with the remaining mass
spread uniformly over the other labels.
"""

from __future__ import annotations

from collections.abc import Sequence

from .model import CONGESTION_LABEL, TRAFFIC_LABELS, uniform_prior


def bus_report_prior(
    positive_reports: int,
    total_reports: int,
    *,
    labels: Sequence[str] = TRAFFIC_LABELS,
    congestion_label: str = CONGESTION_LABEL,
    strength: float = 1.0,
    pseudo_count: float = 1.0,
) -> dict[str, float]:
    """Prior over a disagreement's labels from nearby bus reports.

    Parameters
    ----------
    positive_reports:
        Buses near the location that reported congestion.
    total_reports:
        All bus reports near the location.
    labels:
        The label set ``Val(X_t)``; must contain ``congestion_label``.
    strength:
        How far the prior may deviate from uniform: 0 keeps it uniform,
        1 lets the congestion mass range over the full smoothed vote.
    pseudo_count:
        Laplace smoothing added to each side of the vote, so a single
        report never produces a degenerate prior.

    Returns a distribution assigning ``congestion_label`` a probability
    that grows with the fraction of positive reports, and splitting the
    rest uniformly over the remaining labels.
    """
    if congestion_label not in labels:
        raise ValueError(
            f"congestion label {congestion_label!r} not in {tuple(labels)}"
        )
    if total_reports < 0 or positive_reports < 0:
        raise ValueError("report counts must be non-negative")
    if positive_reports > total_reports:
        raise ValueError("positive reports cannot exceed total reports")
    if not 0.0 <= strength <= 1.0:
        raise ValueError("strength must be within [0, 1]")
    if pseudo_count <= 0:
        raise ValueError("pseudo count must be positive")

    base = uniform_prior(labels)
    if total_reports == 0 or strength == 0.0:
        return base

    vote = (positive_reports + pseudo_count) / (
        total_reports + 2.0 * pseudo_count
    )
    uniform_mass = base[congestion_label]
    congestion_mass = (1.0 - strength) * uniform_mass + strength * vote
    remaining = 1.0 - congestion_mass
    others = [label for label in labels if label != congestion_label]
    prior = {label: remaining / len(others) for label in others}
    prior[congestion_label] = congestion_mass
    return prior
