"""Per-shard durability: one worker's checkpoint + write-ahead journal.

Each shard worker owns a private recovery directory
(``shard-<region>/``) holding the same on-disk artifacts as the PR-4
single-process layer — checksummed ``checkpoint-%08d.ckpt`` files
(:class:`~repro.recovery.checkpoint.CheckpointManager`) and one
``journal-%08d.wal`` segment per checkpoint
(:class:`~repro.recovery.journal.WriteAheadJournal`) — but scoped to
that worker's engine only.  A restarted worker restores from *its own*
newest valid checkpoint and replays at most the one journal segment
that follows it, while sibling shards keep flowing untouched.

The journal records three kinds::

    {"kind": "feed",   "step": n, "events": [<dataset items>]}  # crowd SDEs
    {"kind": "step",   "step": n, "q": t}                       # query begins
    {"kind": "commit", "step": n}                               # query done

written write-ahead (feed before the engine ingests, step before the
query runs).  A ``step`` without its ``commit`` marks the in-flight
query the worker died inside — replay does not re-execute it, the
coordinator re-requests it.  Unlike the single-process coordinator
there is no streamless mode: a shard checkpoint pickles the fed engine
wholesale (a quarter-city engine is small enough), so ``restore`` never
needs the scenario generator.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable, Optional

from ..obs import Registry
from ..recovery.checkpoint import CheckpointManager
from ..recovery.journal import WriteAheadJournal

__all__ = ["ShardCheckpointCoordinator"]


class ShardCheckpointCoordinator:
    """Checkpoint/journal protocol for one shard worker.

    Parameters
    ----------
    directory:
        The shard's private recovery directory.
    interval:
        Checkpoint every ``interval`` recognition steps.
    retain:
        Checkpoints kept on disk (the step-0 baseline is never pruned).
    crash:
        Optional :class:`~repro.faults.crash.CrashInjector` wired into
        the same two seams as the single-process coordinator:
        ``before_step`` at the start of each step and
        ``on_checkpoint_write`` just before the atomic replace.
    metrics:
        Registry for the ``recovery.*`` series (attached after restore,
        since the restored registry lives inside the checkpoint).
    """

    def __init__(
        self,
        directory,
        *,
        interval: int = 10,
        retain: int = 3,
        crash=None,
        metrics: Optional[Registry] = None,
    ):
        if interval < 1:
            raise ValueError(f"interval must be at least 1, got {interval}")
        self.directory = Path(directory)
        self.interval = interval
        self.crash = crash
        self.metrics = metrics
        self.manager = CheckpointManager(self.directory, retain=retain)
        self.journal = WriteAheadJournal(self.directory)
        self.base_step = 0

    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _journal(self, record: dict[str, Any]) -> None:
        started = time.perf_counter()
        self.journal.append(record)
        if self.metrics is not None:
            self.metrics.timing("recovery.journal.seconds").observe(
                time.perf_counter() - started
            )
        self._count("recovery.journal.records")

    # -- forward path --------------------------------------------------
    def write_baseline(self, payload: Any) -> None:
        """Write the step-0 checkpoint (the freshly fed engine) and
        open segment 0."""
        self._write(0, payload)

    def begin_step(self, step: int, q: int) -> None:
        """Journal the write-ahead record for ``step`` (and give the
        crash injector its mid-step shot)."""
        if self.crash is not None:
            self.crash.before_step(step)
        self._journal({"kind": "step", "step": step, "q": q})

    def journal_feed(self, step: int, events: list[dict]) -> None:
        """Journal admitted SDEs (as dataset items) before they are fed."""
        self._journal({"kind": "feed", "step": step, "events": events})
        self._count("recovery.journal.feed_events", len(events))

    def commit_step(self, step: int) -> None:
        """Journal that ``step``'s query completed."""
        self._journal({"kind": "commit", "step": step})

    def after_step(
        self, step: int, payload_fn: Callable[[], Any]
    ) -> bool:
        """Checkpoint when the interval since the last one has passed.

        ``payload_fn`` builds the (potentially large) state payload
        lazily, so non-checkpoint steps pay nothing.  Returns whether a
        checkpoint was written.
        """
        if step - self.base_step < self.interval:
            return False
        self._write(step, payload_fn())
        return True

    def complete(self, step: int) -> None:
        """Journal a clean end of run and close the segment."""
        self._journal({"kind": "complete", "step": step})
        self.journal.close()

    def _write(self, step: int, payload: Any) -> None:
        started = time.perf_counter()
        pre_replace = (
            self.crash.on_checkpoint_write
            if self.crash is not None
            else None
        )
        if pre_replace is not None:
            info = self.manager.save(
                step,
                payload,
                pre_replace=lambda path, data: pre_replace(step, path, data),
            )
        else:
            info = self.manager.save(step, payload)
        self.base_step = step
        self.journal.open(step)
        oldest = self.manager.list()[0].step if self.manager.list() else step
        self.journal.prune(oldest)
        self._count("recovery.checkpoint.writes")
        self._count("recovery.checkpoint.bytes", info.size)
        if self.metrics is not None:
            self.metrics.timing("recovery.checkpoint.seconds").observe(
                time.perf_counter() - started
            )

    # -- restore path --------------------------------------------------
    def restore_latest(self) -> tuple[Any, list[dict[str, Any]], int]:
        """Load the newest valid checkpoint and its trailing segment.

        Returns ``(payload, records, fallbacks)``: the checkpointed
        state, the intact journal records written after it (the ≤1
        segment to replay), and how many newer-but-invalid checkpoints
        (torn mid-write files) were skipped.  The segment is archived
        and reopened fresh — replayed work re-journals itself as it
        re-executes, so a second crash before the next checkpoint
        still loses nothing.

        Raises :class:`~repro.recovery.checkpoint.NoValidCheckpoint`
        when the directory holds no restorable state.
        """
        payload, info, fallbacks = self.manager.load_latest()
        records = self.journal.read_segment(info.step)
        self.base_step = info.step
        self.journal.open(info.step, fresh=True)
        return payload, records, fallbacks
