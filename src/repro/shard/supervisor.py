"""Cross-process supervision of shard workers.

Extends the PR-2 supervision vocabulary (:class:`CircuitBreaker`,
restart budgets, capped exponential backoff) across process
boundaries.  The runtime reports worker deaths and heartbeats here;
the supervisor decides whether a dead shard may restart (budget not
yet exhausted), how long to back off first, and when to give up — at
which point the shard's breaker latches open, the region is declared
failed, and the :class:`~repro.system.degradation.DegradationManager`
is told to treat ``shard:<region>`` as a forced outage so the region's
alerts are suppressed while sibling shards keep flowing.

Unlike the in-process stream breakers (event time, half-open retrial)
a shard breaker is terminal: ``reset_after_s`` is effectively infinite
because a worker that exhausted its restart budget inside one run has
no independent recovery path within that run.

Everything is counted through the coordinator's registry under the
``shard.*`` namespace — see ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..obs import Registry
from ..streams.supervision import CircuitBreaker

__all__ = ["ShardSupervisor"]

#: Event-time seconds after which an open shard breaker would retry —
#: longer than any run, i.e. never: a failed shard stays failed.
_NEVER_S = 10**12

#: Gauge encoding of breaker states (same scheme as the PR-2
#: stream supervisor's ``streams.breaker.<input>.state`` gauges).
_BREAKER_LEVELS = {
    CircuitBreaker.CLOSED: 0.0,
    CircuitBreaker.HALF_OPEN: 0.5,
    CircuitBreaker.OPEN: 1.0,
}


@dataclass
class ShardSupervisor:
    """Liveness, restart budgets and breakers for all shard workers.

    Parameters
    ----------
    max_restarts:
        Restarts allowed per shard within one run; the death after the
        budget is spent latches the shard's breaker open.
    backoff_base_s / backoff_cap_s:
        Capped exponential backoff actually slept before restart ``k``:
        ``min(cap, base * 2**(k-1))`` — real seconds here, not
        event-time accounting, because a worker restart is a real
        wall-clock affair.
    liveness_timeout_s:
        Seconds without any message (heartbeats included) before a
        live-looking worker is declared dead.
    metrics:
        Registry for the ``shard.*`` series.
    degradation:
        Optional :class:`~repro.system.degradation.DegradationManager`;
        a failed region is forced into its outage timeline as feed
        ``shard:<region>``.
    """

    max_restarts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    liveness_timeout_s: float = 30.0
    metrics: Optional[Registry] = None
    degradation: Optional[object] = None
    breakers: dict[str, CircuitBreaker] = field(default_factory=dict)
    deaths: dict[str, int] = field(default_factory=dict)
    restarts: dict[str, int] = field(default_factory=dict)
    #: Chronological restart/failure events, surfaced as
    #: ``SystemReport.shard_events`` and in the HTML outage timeline.
    events: list[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must not be negative")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff values must not be negative")
        if self.liveness_timeout_s <= 0:
            raise ValueError("liveness_timeout_s must be positive")

    # ------------------------------------------------------------------
    def breaker_for(self, region: str) -> CircuitBreaker:
        """The shard's breaker (created on first use)."""
        breaker = self.breakers.get(region)
        if breaker is None:
            breaker = self.breakers[region] = CircuitBreaker(
                threshold=self.max_restarts + 1, reset_after_s=_NEVER_S
            )
        return breaker

    def is_failed(self, region: str) -> bool:
        """Whether ``region``'s breaker has latched open."""
        breaker = self.breakers.get(region)
        return breaker is not None and breaker.is_open

    def failed_regions(self) -> list[str]:
        """Regions whose restart budget is exhausted, sorted."""
        return sorted(r for r in self.breakers if self.is_failed(r))

    # ------------------------------------------------------------------
    def record_death(
        self, region: str, step: int, q: int, reason: str
    ) -> bool:
        """Account one worker death; returns whether a restart is
        allowed (budget not exhausted)."""
        self.deaths[region] = self.deaths.get(region, 0) + 1
        self._count("shard.deaths")
        self._count(f"shard.{region}.deaths")
        breaker = self.breaker_for(region)
        breaker.record_failure(q)
        if breaker.is_open:
            self.events.append(
                {
                    "event": "failed",
                    "region": region,
                    "step": step,
                    "q": q,
                    "reason": reason,
                    "deaths": self.deaths[region],
                }
            )
            self._count("shard.failed")
            if self.degradation is not None:
                self.degradation.force_outage(f"shard:{region}", q)
            self._record_breaker(region)
            return False
        return True

    def backoff_s(self, region: str) -> float:
        """Seconds to sleep before this shard's next restart."""
        attempt = max(1, self.deaths.get(region, 1))
        seconds = min(
            self.backoff_cap_s, self.backoff_base_s * (2 ** (attempt - 1))
        )
        if self.metrics is not None:
            self.metrics.timing("shard.restart.backoff_s").observe(seconds)
        return seconds

    def record_restart(self, region: str, step: int, q: int) -> None:
        """Account one successful restart-from-checkpoint."""
        self.restarts[region] = self.restarts.get(region, 0) + 1
        self._count("shard.restarts")
        self._count(f"shard.{region}.restarts")
        self.events.append(
            {
                "event": "restart",
                "region": region,
                "step": step,
                "q": q,
                "attempt": self.restarts[region],
            }
        )

    def observe_heartbeat_age(self, region: str, age_s: float) -> None:
        """Track how stale each worker's last sign of life is."""
        if self.metrics is not None:
            self.metrics.gauge(f"shard.{region}.heartbeat_age_s").set(age_s)
            self.metrics.timing("shard.heartbeat_age_s").observe(age_s)

    def record_breaker_states(self) -> None:
        """Export every shard breaker's state as a gauge."""
        for region in self.breakers:
            self._record_breaker(region)

    # ------------------------------------------------------------------
    def _record_breaker(self, region: str) -> None:
        if self.metrics is not None:
            self.metrics.gauge(f"shard.breaker.{region}.state").set(
                _BREAKER_LEVELS[self.breakers[region].state]
            )

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()
