"""Message bus between the coordinator and its shard workers.

The sharded runtime talks to each per-region recognition worker over a
duplex channel carrying ``(kind, payload)`` tuples — ``"init"`` /
``"restore"`` / ``"feed"`` / ``"query"`` / ``"shutdown"`` downstream,
``"ready"`` / ``"snapshot"`` / ``"heartbeat"`` / ``"error"`` / ``"bye"``
upstream.  :class:`ShardBus` adds the PUB/SUB-style fan-out on top:
``publish`` broadcasts one message to every attached shard (the feed
path), ``send`` addresses a single shard (the query path).

The wire itself is abstracted behind :class:`Transport` /
:class:`Endpoint` so the stdlib :class:`PipeTransport`
(``multiprocessing.Pipe``) can later be swapped for a ZeroMQ
PUB/SUB + PUSH/PULL transport (the `Mundolel__Distribuidos` /DSCEP
deployment shape) without touching the runtime, the workers or the
supervisor.  Transport failures — a dead peer, a closed pipe — are
normalised to :class:`ShardConnectionLost` so the supervisor has a
single signal for "this worker is gone".
"""

from __future__ import annotations

import abc
import multiprocessing
from typing import Any, Optional

__all__ = [
    "ShardConnectionLost",
    "Message",
    "Endpoint",
    "Transport",
    "PipeEndpoint",
    "PipeTransport",
    "ShardBus",
]

#: One bus message: a kind tag plus a JSON-able/picklable payload dict.
Message = tuple[str, dict]


class ShardConnectionLost(RuntimeError):
    """The transport to a peer died (EOF, broken pipe, closed fd)."""


class Endpoint(abc.ABC):
    """One end of a duplex shard channel."""

    @abc.abstractmethod
    def send(self, message: Message) -> None:
        """Send one message; raises :class:`ShardConnectionLost` when
        the peer is gone."""

    @abc.abstractmethod
    def recv(self) -> Message:
        """Block for the next message; raises
        :class:`ShardConnectionLost` on EOF."""

    @abc.abstractmethod
    def poll(self, timeout: float = 0.0) -> bool:
        """Whether a message is ready within ``timeout`` seconds."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the endpoint (idempotent)."""


class Transport(abc.ABC):
    """Factory for duplex channels; the ZeroMQ seam."""

    @abc.abstractmethod
    def pair(self) -> tuple[Endpoint, Endpoint]:
        """A fresh ``(coordinator_end, worker_end)`` channel pair.

        The worker end must survive being shipped to a child process
        (for :class:`PipeTransport`, via the multiprocessing pickler).
        """


class PipeEndpoint(Endpoint):
    """An :class:`Endpoint` over one ``multiprocessing.Connection``."""

    def __init__(self, connection):
        self._connection = connection

    def send(self, message: Message) -> None:
        try:
            self._connection.send(message)
        except (BrokenPipeError, OSError) as error:
            raise ShardConnectionLost(f"send failed: {error}") from error

    def recv(self) -> Message:
        try:
            return self._connection.recv()
        except EOFError as error:
            raise ShardConnectionLost("peer closed the channel") from error
        except (BrokenPipeError, OSError) as error:
            raise ShardConnectionLost(f"recv failed: {error}") from error

    def poll(self, timeout: float = 0.0) -> bool:
        try:
            return self._connection.poll(timeout)
        except (BrokenPipeError, EOFError, OSError) as error:
            raise ShardConnectionLost(f"poll failed: {error}") from error

    def close(self) -> None:
        try:
            self._connection.close()
        except OSError:
            pass


class PipeTransport(Transport):
    """Stdlib transport: duplex ``multiprocessing.Pipe`` channels.

    Parameters
    ----------
    context:
        The multiprocessing context the worker processes are spawned
        from (``fork`` / ``spawn`` / ``forkserver``); defaults to the
        interpreter's default context.
    """

    def __init__(self, context=None):
        self._context = context or multiprocessing.get_context()

    def pair(self) -> tuple[Endpoint, Endpoint]:
        ours, theirs = self._context.Pipe(duplex=True)
        return PipeEndpoint(ours), PipeEndpoint(theirs)


class ShardBus:
    """The coordinator's view of all shard channels.

    Holds the coordinator-side endpoint per shard and layers the two
    messaging patterns over them: :meth:`send` (per-shard request) and
    :meth:`publish` (PUB/SUB-style fan-out of one message to every
    attached shard).
    """

    def __init__(self, transport: Transport):
        self.transport = transport
        self._endpoints: dict[str, Endpoint] = {}

    def open_channel(self, shard: str) -> Endpoint:
        """Create a channel for ``shard``; returns the *worker* end to
        hand to the new process (the coordinator end is attached)."""
        ours, theirs = self.transport.pair()
        old = self._endpoints.get(shard)
        if old is not None:
            old.close()
        self._endpoints[shard] = ours
        return theirs

    def endpoint(self, shard: str) -> Endpoint:
        """The coordinator-side endpoint for ``shard``."""
        return self._endpoints[shard]

    def detach(self, shard: str) -> None:
        """Close and forget the channel for ``shard`` (idempotent)."""
        endpoint = self._endpoints.pop(shard, None)
        if endpoint is not None:
            endpoint.close()

    def shards(self) -> list[str]:
        """Attached shard names, sorted."""
        return sorted(self._endpoints)

    # ------------------------------------------------------------------
    def send(self, shard: str, kind: str, **payload: Any) -> None:
        """Send one message to one shard."""
        self._endpoints[shard].send((kind, payload))

    def publish(self, kind: str, **payload: Any) -> dict[str, ShardConnectionLost]:
        """Fan one message out to every attached shard.

        Returns the shards whose channel was already dead, mapped to
        the error — the caller (the runtime) decides whether that is a
        restartable death or ignorable (the ready handshake re-sends
        missed feeds after a restart, so a dropped publish is safe).
        """
        failures: dict[str, ShardConnectionLost] = {}
        for shard in sorted(self._endpoints):
            try:
                self.send(shard, kind, **payload)
            except ShardConnectionLost as error:
                failures[shard] = error
        return failures

    def close(self) -> None:
        """Close every channel."""
        for shard in list(self._endpoints):
            self.detach(shard)
