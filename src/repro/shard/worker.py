"""The shard worker: one region's recognition engine in its own process.

:func:`shard_worker_main` is the child-process entry point.  It serves
the bus protocol in a loop — ``init`` (adopt a freshly fed engine and
write the step-0 baseline checkpoint), ``restore`` (come back from this
shard's own checkpoint directory, replaying at most one journal
segment), ``feed`` (journal then ingest crowd SDEs), ``query`` (run one
recognition step under the begin/commit journal protocol) and
``shutdown`` (journal a clean end and return the worker's metrics).  A
daemon thread heartbeats over the same channel so the supervisor can
tell a slow worker from a dead one.

Determinism contract: the engine is fed and queried in exactly the
order the single-process pipeline would use, and a replayed query
re-executes ``engine.query(q)`` on the restored engine — the RTEC
engine is deterministic, so the re-derived snapshot (and the
re-incremented counters, which resume from the checkpointed registry)
are identical to the lost originals.  The latest snapshot is kept in
``_last`` so the coordinator's re-request of an in-flight step is
served from cache instead of executing twice.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Optional

from ..core.events import Event, FluentFact
from ..core.rtec import RTEC, RecognitionSnapshot
from ..dublin.dataset import (
    event_to_item,
    fact_to_item,
    item_to_event,
    item_to_fact,
)
from ..obs import Registry
from .bus import Endpoint, ShardConnectionLost
from .recovery import ShardCheckpointCoordinator

__all__ = ["ShardWorker", "shard_worker_main", "encode_sdes", "decode_sdes"]


def encode_sdes(sdes) -> list[dict]:
    """SDEs (events or fluent facts) as JSON-able dataset items."""
    return [
        fact_to_item(sde) if isinstance(sde, FluentFact)
        else event_to_item(sde)
        for sde in sdes
    ]


def decode_sdes(items) -> tuple[list[Event], list[FluentFact]]:
    """Dataset items back to ``(events, facts)``."""
    events: list[Event] = []
    facts: list[FluentFact] = []
    for item in items:
        if str(item.get("@type", "")).startswith("fluent:"):
            facts.append(item_to_fact(item))
        else:
            events.append(item_to_event(item))
    return events, facts


class ShardWorker:
    """One region's engine plus its private recovery coordinator."""

    def __init__(
        self,
        region: str,
        coordinator: ShardCheckpointCoordinator,
        engine: RTEC,
        metrics: Registry,
        *,
        step_index: int = 0,
        feed_step: int = 0,
    ):
        self.region = region
        self.coordinator = coordinator
        self.engine = engine
        self.metrics = metrics
        #: Last completed recognition step (0 before the first query).
        self.step_index = step_index
        #: Step of the newest feed batch journalled and ingested.
        self.feed_step = feed_step
        self.replayed_steps = 0
        self.fallbacks = 0
        self._last: Optional[tuple[int, RecognitionSnapshot]] = None
        #: Step whose write-ahead record is already journalled (guards
        #: against double-journalling when the coordinator re-requests
        #: the in-flight step a replay already re-began).
        self._begun: Optional[int] = None

    # ------------------------------------------------------------------
    @classmethod
    def fresh(
        cls,
        region: str,
        directory,
        engine: RTEC,
        *,
        interval: int = 10,
        crash=None,
    ) -> "ShardWorker":
        """Adopt a freshly fed engine and write the baseline checkpoint."""
        metrics = Registry()
        coordinator = ShardCheckpointCoordinator(
            directory, interval=interval, crash=crash, metrics=metrics
        )
        worker = cls(region, coordinator, engine, metrics)
        coordinator.write_baseline(worker.state_payload())
        return worker

    @classmethod
    def restore(
        cls, region: str, directory, *, interval: int = 10, crash=None
    ) -> "ShardWorker":
        """Restore from this shard's newest valid checkpoint and replay
        its trailing journal segment (at most one)."""
        coordinator = ShardCheckpointCoordinator(
            directory, interval=interval, crash=crash
        )
        payload, records, fallbacks = coordinator.restore_latest()
        state = payload["worker"]
        metrics = Registry.from_dict(state["metrics"])
        coordinator.metrics = metrics
        worker = cls(
            region,
            coordinator,
            state["engine"],
            metrics,
            step_index=int(state["step_index"]),
            feed_step=int(state["feed_step"]),
        )
        worker.fallbacks = fallbacks
        worker.metrics.counter("recovery.restore.count").inc()
        worker.metrics.counter("recovery.restore.fallbacks").inc(fallbacks)
        worker._replay(records)
        return worker

    def state_payload(self) -> dict:
        """The checkpoint payload: the whole worker state, pickled as-is
        (no streamless rebuild — a quarter-city engine is small)."""
        return {
            "worker": {
                "region": self.region,
                "engine": self.engine,
                "metrics": self.metrics.to_dict(),
                "step_index": self.step_index,
                "feed_step": self.feed_step,
            }
        }

    def ready_info(self) -> dict:
        """The handshake payload the coordinator resyncs from."""
        return {
            "region": self.region,
            "step": self.step_index,
            "feed_step": self.feed_step,
            "replayed_steps": self.replayed_steps,
            "fallbacks": self.fallbacks,
        }

    # ------------------------------------------------------------------
    def query(self, step: int, q: int) -> RecognitionSnapshot:
        """Run recognition step ``step`` at query time ``q``.

        A re-request of the newest completed step (the coordinator
        re-asks after restarting this worker) is served from cache.
        """
        if self._last is not None and self._last[0] == step:
            return self._last[1]
        if self._begun != step:
            self.coordinator.begin_step(step, q)
            self._begun = step
        snapshot = self.engine.query(q)
        self._record(snapshot)
        self.coordinator.commit_step(step)
        self.step_index = step
        self._last = (step, snapshot)
        self.coordinator.after_step(step, self.state_payload)
        return snapshot

    def apply_feed(self, step: int, sdes) -> None:
        """Journal (write-ahead) then ingest one feed batch."""
        self.coordinator.journal_feed(step, encode_sdes(sdes))
        self._ingest(sdes)
        self.feed_step = step

    def _ingest(self, sdes) -> None:
        events = [s for s in sdes if not isinstance(s, FluentFact)]
        facts = [s for s in sdes if isinstance(s, FluentFact)]
        self.engine.feed(events=events, facts=facts)
        self.metrics.counter("feed.events").inc(len(events) + len(facts))

    def _record(self, snapshot: RecognitionSnapshot) -> None:
        self.metrics.counter("queries").inc()
        self.metrics.counter("items").inc(snapshot.n_new_events)
        self.metrics.timing("query.seconds").observe(snapshot.elapsed)
        self.metrics.counter("rtec.cache.hits").inc(snapshot.cache_hits)
        self.metrics.counter("rtec.cache.misses").inc(snapshot.cache_misses)
        self.metrics.counter("rtec.cache.invalidations").inc(
            snapshot.cache_invalidations
        )
        self.metrics.counter("rtec.compiled.evals").inc(
            snapshot.compiled_evals
        )
        self.metrics.counter("rtec.compiled.fallbacks").inc(
            snapshot.compiled_fallbacks
        )

    def _replay(self, records) -> None:
        """Re-drive the journalled work since the restored checkpoint.

        Feeds re-ingest, committed steps re-execute (re-journalling
        themselves into the fresh segment so a second crash still
        replays cleanly); a trailing uncommitted ``step`` record is
        re-begun but not executed — the coordinator re-requests it.
        """
        pending: Optional[tuple[int, int]] = None
        for record in records:
            kind = record.get("kind")
            if kind == "feed":
                events, facts = decode_sdes(record["events"])
                self.coordinator.journal_feed(
                    record["step"], record["events"]
                )
                self.engine.feed(events=events, facts=facts)
                self.feed_step = int(record["step"])
            elif kind == "step":
                step, q = int(record["step"]), int(record["q"])
                self.coordinator.begin_step(step, q)
                self._begun = step
                pending = (step, q)
            elif kind == "commit":
                if pending is None:
                    continue  # commit without step: skip defensively
                step, q = pending
                snapshot = self.engine.query(q)
                self._record(snapshot)
                self.coordinator.commit_step(step)
                self.step_index = step
                self._last = (step, snapshot)
                self.coordinator.after_step(step, self.state_payload)
                self.replayed_steps += 1
                pending = None
            # "complete" cannot trail a crash — ignore anything else.
        self.metrics.counter("recovery.replay.steps").inc(
            self.replayed_steps
        )

    def close(self, *, final_step: Optional[int] = None) -> None:
        """Journal a clean end of run."""
        self.coordinator.complete(
            self.step_index if final_step is None else final_step
        )


def shard_worker_main(
    region: str,
    directory: str,
    endpoint: Endpoint,
    heartbeat_s: float = 0.25,
) -> int:
    """Child-process entry point: serve the bus protocol until EOF.

    Unexpected exceptions are reported upstream as an ``error`` message
    before exiting, so the supervisor sees the cause instead of a bare
    dead pipe; a SIGKILL (real or injected) skips all of this, which is
    exactly the signal path the liveness timeout and EOF detection
    cover.
    """
    send_lock = threading.Lock()

    def send(kind: str, payload: dict) -> None:
        with send_lock:
            endpoint.send((kind, payload))

    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_s):
            try:
                send("heartbeat", {"at": time.monotonic()})
            except ShardConnectionLost:
                return

    heartbeat = threading.Thread(
        target=beat, name=f"shard-{region}-heartbeat", daemon=True
    )
    heartbeat.start()

    worker: Optional[ShardWorker] = None
    try:
        while True:
            kind, payload = endpoint.recv()
            if kind == "init":
                worker = ShardWorker.fresh(
                    region,
                    directory,
                    payload["engine"],
                    interval=payload.get("interval") or 10,
                    crash=payload.get("crash"),
                )
                send("ready", worker.ready_info())
            elif kind == "restore":
                worker = ShardWorker.restore(
                    region,
                    directory,
                    interval=payload.get("interval") or 10,
                    crash=payload.get("crash"),
                )
                send("ready", worker.ready_info())
            elif kind == "feed":
                assert worker is not None, "feed before init"
                worker.apply_feed(payload["step"], payload["sdes"])
            elif kind == "query":
                assert worker is not None, "query before init"
                snapshot = worker.query(payload["step"], payload["q"])
                send(
                    "snapshot",
                    {"step": payload["step"], "snapshot": snapshot},
                )
            elif kind == "shutdown":
                if worker is not None:
                    worker.close(final_step=payload.get("step"))
                    send("bye", {"metrics": worker.metrics.to_dict()})
                else:
                    send("bye", {"metrics": {}})
                return 0
            else:
                raise ValueError(f"unknown bus message kind {kind!r}")
    except ShardConnectionLost:
        return 1  # coordinator went away; nothing to report to
    except BaseException as error:  # noqa: BLE001 — forwarded upstream
        try:
            send(
                "error",
                {
                    "error": f"{type(error).__name__}: {error}",
                    "traceback": traceback.format_exc(),
                },
            )
        except ShardConnectionLost:
            pass
        return 1
    finally:
        stop.set()
        endpoint.close()
