"""The sharded recognition runtime: per-region workers, supervised.

:class:`ShardedRuntime` is the coordinator side of the deployment the
paper runs on heterogeneous CVM/CNO nodes: each region's engine lives
in its own OS process (:mod:`repro.shard.worker`), fed over the bus
(:mod:`repro.shard.bus`) and supervised across the process boundary
(:mod:`repro.shard.supervisor`).  The pipeline drives it with three
calls per run — :meth:`start` (ship the fed engines out),
:meth:`query_step` once per recognition step, :meth:`publish_feed` for
crowd-sourced SDEs — plus :meth:`shutdown`, which drains the workers
and folds their registries into the run's metrics under
``shard.<region>.*``.

Determinism: results are merged in canonical region order
(:func:`merge_in_region_order`) regardless of which worker finished
first, so an N-shard run is byte-identical to the single-process run.
A worker death at any point — detected by EOF, dead pipe, exit code or
heartbeat silence — triggers restart-from-its-own-checkpoint: the
respawned worker replays at most one journal segment, is re-sent any
feed batches newer than its restored ``feed_step`` (the ready
handshake carries the high-water marks), and is re-asked the in-flight
query, while sibling shards keep flowing untouched.
"""

from __future__ import annotations

import multiprocessing
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence, TypeVar

from ..obs import Registry
from .bus import Endpoint, PipeTransport, ShardBus, ShardConnectionLost
from .supervisor import ShardSupervisor
from .worker import shard_worker_main

__all__ = ["ShardedRuntime", "merge_in_region_order"]

T = TypeVar("T")


def merge_in_region_order(
    results: Mapping[str, T], regions: Sequence[str]
) -> list[tuple[str, T]]:
    """Deterministic merge: per-shard results in canonical region order.

    Workers complete in arbitrary order; downstream consumers (alert
    surfacing, crowd arbitration, the report) must see one fixed order
    for byte-identical output.  Regions absent from ``results`` (failed
    shards) are skipped, not filled.
    """
    return [
        (region, results[region]) for region in regions if region in results
    ]


@dataclass
class ShardHandle:
    """Liveness bookkeeping for one worker process."""

    region: str
    process: Any
    endpoint: Endpoint
    last_seen: float = field(default_factory=time.monotonic)


class ShardedRuntime:
    """Spawns, feeds, queries and supervises the per-region workers.

    Parameters
    ----------
    regions:
        Canonical region order (the merge order).
    metrics:
        The run's registry (supervisor counters land here directly;
        worker registries merge in at shutdown under
        ``shard.<region>.*``).
    checkpoint_interval:
        Per-shard checkpoint cadence in recognition steps.
    directory:
        Root for the per-shard recovery directories
        (``shard-<region>/``); a temporary directory (cleaned up at
        shutdown) when ``None``.
    start_method:
        ``multiprocessing`` start method for the workers.
    heartbeat_s / liveness_timeout_s / max_restarts / backoff_base_s:
        Supervision tuning (see :class:`ShardSupervisor`).
    degradation:
        Optional degradation manager told about failed regions.
    crash_plans:
        ``region -> [CrashInjector, ...]`` — consumed one per process
        spawn (first injector arms the initial worker, the next arms
        its first restart, ...), letting chaos tests script SIGKILLs
        across restarts.
    """

    def __init__(
        self,
        regions: Sequence[str],
        *,
        metrics: Registry,
        checkpoint_interval: int = 10,
        directory=None,
        start_method: str = "fork",
        heartbeat_s: float = 0.25,
        liveness_timeout_s: float = 30.0,
        max_restarts: int = 3,
        backoff_base_s: float = 0.05,
        degradation=None,
        crash_plans: Optional[Mapping[str, Iterable]] = None,
    ):
        self.regions = list(regions)
        self.metrics = metrics
        self.checkpoint_interval = checkpoint_interval
        self.heartbeat_s = heartbeat_s
        self._context = multiprocessing.get_context(start_method)
        self.bus = ShardBus(PipeTransport(self._context))
        self.supervisor = ShardSupervisor(
            max_restarts=max_restarts,
            backoff_base_s=backoff_base_s,
            liveness_timeout_s=liveness_timeout_s,
            metrics=metrics,
            degradation=degradation,
        )
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if directory is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-shards-")
            directory = self._tmp.name
        self.directory = Path(directory)
        self.handles: dict[str, ShardHandle] = {}
        self._crash_plans = {
            region: list(plans)
            for region, plans in (crash_plans or {}).items()
        }
        #: Every published feed batch, retained so a restarted worker
        #: can be caught up past its restored ``feed_step``.
        self._feed_history: list[tuple[int, list]] = []
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def start(self, engines: Mapping[str, Any]) -> None:
        """Spawn one worker per region and ship it its fed engine.

        Startup is fail-fast: a worker that cannot initialise aborts
        the run (there is no checkpoint to restart it from yet).
        """
        for region in self.regions:
            self._spawn(region, engine=engines[region])
        for region in self.regions:
            try:
                self._await_ready(region)
            except ShardConnectionLost as error:
                raise RuntimeError(
                    f"shard {region!r} failed to start: {error}"
                ) from error

    def _spawn(self, region: str, *, engine: Any = None) -> None:
        """Start a worker process and send ``init`` or ``restore``."""
        crash = None
        plans = self._crash_plans.get(region)
        if plans:
            crash = plans.pop(0)
        worker_end = self.bus.open_channel(region)
        process = self._context.Process(
            target=shard_worker_main,
            args=(
                region,
                str(self.directory / f"shard-{region}"),
                worker_end,
                self.heartbeat_s,
            ),
            name=f"repro-shard-{region}",
            daemon=True,
        )
        process.start()
        worker_end.close()
        self.handles[region] = ShardHandle(
            region, process, self.bus.endpoint(region)
        )
        if engine is not None:
            self.bus.send(
                region,
                "init",
                engine=engine,
                interval=self.checkpoint_interval,
                crash=crash,
            )
        else:
            self.bus.send(
                region,
                "restore",
                interval=self.checkpoint_interval,
                crash=crash,
            )

    def _reap(self, region: str) -> None:
        """Tear down a (presumed dead) worker process and its channel."""
        handle = self.handles.pop(region, None)
        if handle is None:
            return
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(timeout=5.0)
        self.bus.detach(region)

    # -- receive loop --------------------------------------------------
    def _await(self, region: str, *, timeout: Optional[float] = None):
        """Next non-heartbeat message from ``region``.

        Raises :class:`ShardConnectionLost` when the worker reports an
        error, hits EOF, or stays silent past the liveness timeout —
        one signal for every flavour of death.
        """
        handle = self.handles[region]
        deadline = self.supervisor.liveness_timeout_s
        if timeout is not None:
            deadline = timeout
        while True:
            if handle.endpoint.poll(min(self.heartbeat_s, 0.05)):
                kind, payload = handle.endpoint.recv()
                age = time.monotonic() - handle.last_seen
                handle.last_seen = time.monotonic()
                if kind == "heartbeat":
                    continue
                self.supervisor.observe_heartbeat_age(region, age)
                if kind == "error":
                    raise ShardConnectionLost(
                        f"worker error: {payload['error']}"
                    )
                return kind, payload
            silent_for = time.monotonic() - handle.last_seen
            if silent_for > deadline:
                raise ShardConnectionLost(
                    f"no heartbeat for {silent_for:.1f}s "
                    f"(liveness timeout {deadline:g}s)"
                )
            exitcode = handle.process.exitcode
            if exitcode is not None and not handle.endpoint.poll(0):
                raise ShardConnectionLost(
                    f"worker exited with code {exitcode}"
                )

    def _await_ready(self, region: str) -> dict:
        kind, payload = self._await(region)
        if kind != "ready":
            raise ShardConnectionLost(
                f"expected ready from shard {region!r}, got {kind!r}"
            )
        return payload

    # -- feed path -----------------------------------------------------
    def publish_feed(self, step: int, sdes: Sequence[Any]) -> None:
        """Fan one batch of SDEs (crowd feedback) out to all live
        shards; the batch is retained for restart catch-up.

        A send to an already-dead worker is dropped silently here: the
        death is handled at the next query, and the restart handshake
        re-sends everything past the restored ``feed_step``.
        """
        batch = list(sdes)
        if not batch:
            return
        self._feed_history.append((step, batch))
        for region in self.regions:
            if self.supervisor.is_failed(region) or region not in self.handles:
                continue
            try:
                self.bus.send(region, "feed", step=step, sdes=batch)
            except ShardConnectionLost:
                pass

    def _resend_feeds(self, region: str, after_step: int) -> None:
        for step, batch in self._feed_history:
            if step > after_step:
                self.bus.send(region, "feed", step=step, sdes=batch)

    # -- query path ----------------------------------------------------
    def query_step(self, step: int, q: int) -> dict[str, Any]:
        """Run recognition step ``step`` on every live shard.

        Returns region -> snapshot in canonical region order; regions
        whose restart budget is exhausted are absent.  A worker death
        mid-step triggers restart-from-checkpoint and a re-request of
        this same step, so one step's results are always complete for
        every non-failed region.
        """
        live = [
            region
            for region in self.regions
            if not self.supervisor.is_failed(region)
        ]
        send_failures: dict[str, ShardConnectionLost] = {}
        for region in live:
            try:
                self.bus.send(region, "query", step=step, q=q)
            except ShardConnectionLost as error:
                send_failures[region] = error
        snapshots: dict[str, Any] = {}
        for region in live:
            snapshot = self._collect(
                region, step, q, initial_failure=send_failures.get(region)
            )
            if snapshot is not None:
                snapshots[region] = snapshot
        return dict(merge_in_region_order(snapshots, self.regions))

    def _collect(
        self,
        region: str,
        step: int,
        q: int,
        *,
        initial_failure: Optional[ShardConnectionLost] = None,
    ):
        """One region's snapshot for ``step``, restarting through
        worker deaths until it arrives or the budget is spent."""
        failure = initial_failure
        while True:
            if failure is not None:
                if not self._restart(region, step, q, str(failure)):
                    return None
                failure = None
                try:
                    self.bus.send(region, "query", step=step, q=q)
                except ShardConnectionLost as error:
                    failure = error
                    continue
            try:
                kind, payload = self._await(region)
                if kind != "snapshot":
                    failure = ShardConnectionLost(
                        f"expected snapshot, got {kind!r}"
                    )
                    continue
                return payload["snapshot"]
            except ShardConnectionLost as error:
                failure = error

    def _restart(
        self, region: str, step: int, q: int, reason: str
    ) -> bool:
        """Restart a dead worker from its own checkpoint.

        Returns ``False`` once the restart budget is exhausted (the
        supervisor has latched the breaker and forced the region into
        the degradation timeline).
        """
        while True:
            self._reap(region)
            if not self.supervisor.record_death(region, step, q, reason):
                return False
            time.sleep(self.supervisor.backoff_s(region))
            try:
                self._spawn(region)
                ready = self._await_ready(region)
                self._resend_feeds(region, int(ready["feed_step"]))
            except ShardConnectionLost as error:
                reason = str(error)
                continue
            self.supervisor.record_restart(region, step, q)
            return True

    # -- teardown ------------------------------------------------------
    def shutdown(self) -> list[dict]:
        """Drain the workers, fold their metrics in, release resources.

        Robust by construction: a worker that will not answer the
        shutdown handshake is killed, so this doubles as the abort path
        after an exception.  Returns the supervisor's restart/failure
        event list (chronological).
        """
        if self._closed:
            return list(self.supervisor.events)
        self._closed = True
        summaries: dict[str, dict] = {}
        for region in self.regions:
            if region not in self.handles:
                continue
            if not self.supervisor.is_failed(region):
                try:
                    self.bus.send(region, "shutdown")
                    while True:
                        kind, payload = self._await(region, timeout=10.0)
                        if kind == "bye":
                            summaries[region] = payload["metrics"]
                            break
                except ShardConnectionLost:
                    pass
            self._reap(region)
        self.bus.close()
        self.supervisor.record_breaker_states()
        for region, exported in summaries.items():
            self.metrics.merge(
                Registry.from_dict(exported), prefix=f"shard.{region}."
            )
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None
        return list(self.supervisor.events)
