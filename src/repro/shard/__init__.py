"""Sharded multi-process recognition runtime.

Per-region recognition workers as separate OS processes
(:mod:`~repro.shard.worker`) fed over an abstracted message bus
(:mod:`~repro.shard.bus`), each owning per-shard checkpoint + journal
recovery (:mod:`~repro.shard.recovery`), supervised across process
boundaries with heartbeats, liveness timeouts and restart budgets
(:mod:`~repro.shard.supervisor`), coordinated deterministically so an
N-worker run is byte-identical to single-process output
(:mod:`~repro.shard.runtime`).
"""

from .bus import (
    Endpoint,
    PipeEndpoint,
    PipeTransport,
    ShardBus,
    ShardConnectionLost,
    Transport,
)
from .recovery import ShardCheckpointCoordinator
from .runtime import ShardedRuntime, merge_in_region_order
from .supervisor import ShardSupervisor
from .worker import ShardWorker, shard_worker_main

__all__ = [
    "Endpoint",
    "PipeEndpoint",
    "PipeTransport",
    "ShardBus",
    "ShardConnectionLost",
    "Transport",
    "ShardCheckpointCoordinator",
    "ShardedRuntime",
    "merge_in_region_order",
    "ShardSupervisor",
    "ShardWorker",
    "shard_worker_main",
]
