"""Operator console: the system's output surface.

"The system helps an operator manage the traffic situation, by
integrating available traffic information from the different sources,
which can then be used to issue alerts ... An important requirement is
to have a simple, intuitive interactive map to present all traffic
information and alerts" (paper, Section 2).  In a terminal
reproduction the console is an alert log plus the ASCII city map of
:func:`repro.traffic_model.render_flow_map`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Alert:
    """One operator alert."""

    time: int
    kind: str
    location: str
    message: str
    region: Optional[str] = None

    def format(self) -> str:
        """Render the alert as a console line."""
        hh, rem = divmod(self.time, 3600)
        mm, ss = divmod(rem, 60)
        region = f" [{self.region}]" if self.region else ""
        return (
            f"{hh:02d}:{mm:02d}:{ss:02d}{region} "
            f"{self.kind.upper():<22} {self.location}: {self.message}"
        )


class OperatorConsole:
    """Collects, counts and formats the alerts shown to city operators."""

    def __init__(self) -> None:
        self.alerts: list[Alert] = []

    def notify(
        self,
        time: int,
        kind: str,
        location: str,
        message: str,
        region: Optional[str] = None,
    ) -> Alert:
        """Record one alert and return it."""
        alert = Alert(
            time=time, kind=kind, location=location, message=message,
            region=region,
        )
        self.alerts.append(alert)
        return alert

    def of_kind(self, kind: str) -> list[Alert]:
        """All alerts of one kind."""
        return [a for a in self.alerts if a.kind == kind]

    def counts(self) -> dict[str, int]:
        """Number of alerts per kind."""
        return dict(Counter(a.kind for a in self.alerts))

    def render(self, limit: Optional[int] = None) -> str:
        """The alert feed, newest last, optionally truncated to the
        ``limit`` most recent entries."""
        ordered = sorted(self.alerts, key=lambda a: a.time)
        if limit is not None:
            ordered = ordered[-limit:]
        return "\n".join(a.format() for a in ordered)

    def render_summary(self) -> str:
        """A per-kind summary block."""
        lines = ["operator console summary", "-" * 36]
        for kind, count in sorted(self.counts().items()):
            lines.append(f"{kind:<28} {count:>6}")
        lines.append(f"{'total':<28} {len(self.alerts):>6}")
        return "\n".join(lines)
