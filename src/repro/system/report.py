"""Self-contained HTML report of a system run.

The paper's output requirement is operator-facing: "a simple,
intuitive interactive map to present all traffic information and
alerts" (Section 2).  This module renders a system run as a single
HTML file — run summary, per-kind alert counts, the alert feed, the
crowd outcomes and the SVG city map inline — with no external assets
or scripts, so the file can be archived next to the benchmark outputs
and opened anywhere.
"""

from __future__ import annotations

import html
from pathlib import Path

from ..ioutils import atomic_write_text
from ..traffic_model.svg import render_city_svg
from .pipeline import SystemReport, UrbanTrafficSystem

_STYLE = """
body { font-family: sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; }
td, th { border: 1px solid #ccc; padding: 4px 10px; text-align: left; }
th { background: #f0f0f0; }
pre { background: #f7f7f7; padding: 1em; overflow-x: auto; }
.num { text-align: right; }
"""


def _breaker_label(level: float) -> str:
    """Map the 0/0.5/1 breaker-state gauge back to its name."""
    if level >= 1.0:
        return "open"
    if level >= 0.5:
        return "half-open"
    return "closed"


def _outage_section(report: SystemReport, counters, gauges) -> str:
    """The reliability story of the run in one place: degraded-feed
    intervals interleaved with shard supervisor events on the
    simulation clock, final breaker states, and dead-letter pressure
    (``dlq.dropped`` means the bounded queue evicted evidence)."""
    timeline: list[tuple[int, str, str]] = []
    for feed in sorted(report.degraded):
        for start, end in report.degraded[feed]:
            span = (
                f"recovered at t={end}s"
                if end is not None
                else "until end of run"
            )
            timeline.append((start, f"feed {feed}", f"degraded ({span})"))
    for event in report.shard_events:
        region = event.get("region", "?")
        if event.get("event") == "restart":
            what = (
                f"worker restarted from its checkpoint (attempt "
                f"{event.get('attempt', '?')}, step {event.get('step', '?')})"
            )
        else:
            what = (
                f"restart budget exhausted after {event.get('deaths', '?')} "
                "worker deaths — region degraded for the rest of the run"
            )
        timeline.append((int(event.get("q", 0)), f"shard {region}", what))
    timeline.sort(key=lambda entry: entry[0])
    timeline_rows = "".join(
        f'<tr><td class="num">{t}</td><td>{html.escape(source)}</td>'
        f"<td>{html.escape(what)}</td></tr>"
        for t, source, what in timeline
    )

    breaker_rows = []
    for name in sorted(gauges):
        if name.startswith("streams.breaker.") and name.endswith(".state"):
            target = name[len("streams.breaker."):-len(".state")]
            breaker_rows.append(
                (f"stream input {target}", _breaker_label(gauges[name]))
            )
        elif name.startswith("shard.breaker.") and name.endswith(".state"):
            region = name[len("shard.breaker."):-len(".state")]
            breaker_rows.append(
                (f"shard {region}", _breaker_label(gauges[name]))
            )
        elif name.startswith("system.feed.") and name.endswith(".degraded"):
            feed = name[len("system.feed."):-len(".degraded")]
            breaker_rows.append(
                (
                    f"feed {feed}",
                    "degraded" if gauges[name] >= 1.0 else "healthy",
                )
            )
    breaker_table = "".join(
        f"<tr><td>{html.escape(target)}</td>"
        f"<td>{html.escape(state)}</td></tr>"
        for target, state in breaker_rows
    )

    dead_letters = int(counters.get("streams.supervision.dead_letters", 0))
    dlq_dropped = int(counters.get("streams.supervision.dlq.dropped", 0))
    dlq_line = ""
    if dead_letters or dlq_dropped:
        dlq_line = (
            f"<p>dead letters filed: {dead_letters} · evicted from the "
            f"bounded queue (<code>dlq.dropped</code>): {dlq_dropped}</p>"
        )

    if not (timeline_rows or breaker_table or dlq_line):
        return ""
    parts = [
        "<h2>outage timeline</h2>",
        "<p>feed outages and shard supervisor events on the simulation "
        "clock; alerts derived from a degraded feed or failed shard "
        "were suppressed.</p>",
    ]
    if timeline_rows:
        parts.append(
            "<table><tr><th>t (s)</th><th>source</th><th>event</th></tr>"
            f"{timeline_rows}</table>"
        )
    else:
        parts.append("<p>no outages during this run.</p>")
    if breaker_table:
        parts.append(
            "<h2>breakers at end of run</h2>"
            "<table><tr><th>target</th><th>state</th></tr>"
            f"{breaker_table}</table>"
        )
    if dlq_line:
        parts.append("<h2>dead letters</h2>" + dlq_line)
    return "".join(parts)


def render_html_report(
    system: UrbanTrafficSystem,
    report: SystemReport,
    *,
    at: int,
    max_alerts: int = 40,
) -> str:
    """Render one run as a standalone HTML document string."""
    console = report.console
    rows = []
    for kind, count in sorted(console.counts().items()):
        rows.append(
            f"<tr><td>{html.escape(kind)}</td>"
            f'<td class="num">{count}</td></tr>'
        )
    counts_table = (
        "<table><tr><th>alert kind</th><th>count</th></tr>"
        + "".join(rows)
        + "</table>"
    )

    feed = html.escape(console.render(limit=max_alerts))

    estimates = system.estimate_citywide(at)
    peak = max(estimates.values(), default=0.0)
    congestion = {n: peak - v for n, v in estimates.items()}
    svg = render_city_svg(
        system.scenario.network.positions(),
        system.scenario.network.graph.edges,
        values=congestion,
        sensors=system.scenario.node_of.values(),
        title=f"estimated congestion at t={at}s (red = congested)",
    )

    reward_rows = "".join(
        f"<tr><td>{html.escape(pid)}</td>"
        f'<td class="num">{value:.2f}</td></tr>'
        for pid, value in sorted(report.rewards.items())
    )
    rewards_section = (
        "<h2>participant rewards</h2><table>"
        "<tr><th>participant</th><th>reward</th></tr>"
        f"{reward_rows}</table>"
        if report.rewards
        else ""
    )

    metrics = report.metrics or {}
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    engine_rows = []
    for label, value in (
        ("SDEs ingested", counters.get("ingest.events")),
        ("ingest throughput (SDE/s)", gauges.get("ingest.events_per_s")),
        ("compiled rule evaluations", counters.get("rtec.compiled.evals")),
        (
            "interpreter fallbacks",
            counters.get("rtec.compiled.fallbacks"),
        ),
    ):
        if not value:
            continue
        shown = f"{value:.0f}" if isinstance(value, float) else str(value)
        engine_rows.append(
            f"<tr><td>{html.escape(label)}</td>"
            f'<td class="num">{shown}</td></tr>'
        )
    engine_section = (
        "<h2>engine</h2><table>"
        "<tr><th>metric</th><th>value</th></tr>"
        + "".join(engine_rows)
        + "</table>"
        if engine_rows
        else ""
    )

    degraded_section = _outage_section(report, counters, gauges)

    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>urban traffic management — run report</title>
<style>{_STYLE}</style></head><body>
<h1>Urban traffic management — run report</h1>
<p>mean CE recognition time:
{report.mean_recognition_time * 1000:.1f}&nbsp;ms/query ·
crowd disagreements resolved: {report.crowd_resolutions}
(unresolved: {report.crowd_unresolved})</p>
<h2>alerts</h2>
{counts_table}
<h2>alert feed (last {max_alerts})</h2>
<pre>{feed}</pre>
{engine_section}
{degraded_section}
{rewards_section}
<h2>city map</h2>
{svg}
</body></html>
"""


def write_html_report(
    system: UrbanTrafficSystem,
    report: SystemReport,
    path: str | Path,
    *,
    at: int,
    max_alerts: int = 40,
) -> Path:
    """Render with :func:`render_html_report` and write to ``path``."""
    path = Path(path)
    atomic_write_text(
        path,
        render_html_report(system, report, at=at, max_alerts=max_alerts),
    )
    return path
