"""Self-contained HTML report of a system run.

The paper's output requirement is operator-facing: "a simple,
intuitive interactive map to present all traffic information and
alerts" (Section 2).  This module renders a system run as a single
HTML file — run summary, per-kind alert counts, the alert feed, the
crowd outcomes and the SVG city map inline — with no external assets
or scripts, so the file can be archived next to the benchmark outputs
and opened anywhere.
"""

from __future__ import annotations

import html
from pathlib import Path

from ..ioutils import atomic_write_text
from ..traffic_model.svg import render_city_svg
from .pipeline import SystemReport, UrbanTrafficSystem

_STYLE = """
body { font-family: sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; }
td, th { border: 1px solid #ccc; padding: 4px 10px; text-align: left; }
th { background: #f0f0f0; }
pre { background: #f7f7f7; padding: 1em; overflow-x: auto; }
.num { text-align: right; }
"""


def render_html_report(
    system: UrbanTrafficSystem,
    report: SystemReport,
    *,
    at: int,
    max_alerts: int = 40,
) -> str:
    """Render one run as a standalone HTML document string."""
    console = report.console
    rows = []
    for kind, count in sorted(console.counts().items()):
        rows.append(
            f"<tr><td>{html.escape(kind)}</td>"
            f'<td class="num">{count}</td></tr>'
        )
    counts_table = (
        "<table><tr><th>alert kind</th><th>count</th></tr>"
        + "".join(rows)
        + "</table>"
    )

    feed = html.escape(console.render(limit=max_alerts))

    estimates = system.estimate_citywide(at)
    peak = max(estimates.values(), default=0.0)
    congestion = {n: peak - v for n, v in estimates.items()}
    svg = render_city_svg(
        system.scenario.network.positions(),
        system.scenario.network.graph.edges,
        values=congestion,
        sensors=system.scenario.node_of.values(),
        title=f"estimated congestion at t={at}s (red = congested)",
    )

    reward_rows = "".join(
        f"<tr><td>{html.escape(pid)}</td>"
        f'<td class="num">{value:.2f}</td></tr>'
        for pid, value in sorted(report.rewards.items())
    )
    rewards_section = (
        "<h2>participant rewards</h2><table>"
        "<tr><th>participant</th><th>reward</th></tr>"
        f"{reward_rows}</table>"
        if report.rewards
        else ""
    )

    metrics = report.metrics or {}
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    engine_rows = []
    for label, value in (
        ("SDEs ingested", counters.get("ingest.events")),
        ("ingest throughput (SDE/s)", gauges.get("ingest.events_per_s")),
        ("compiled rule evaluations", counters.get("rtec.compiled.evals")),
        (
            "interpreter fallbacks",
            counters.get("rtec.compiled.fallbacks"),
        ),
    ):
        if not value:
            continue
        shown = f"{value:.0f}" if isinstance(value, float) else str(value)
        engine_rows.append(
            f"<tr><td>{html.escape(label)}</td>"
            f'<td class="num">{shown}</td></tr>'
        )
    engine_section = (
        "<h2>engine</h2><table>"
        "<tr><th>metric</th><th>value</th></tr>"
        + "".join(engine_rows)
        + "</table>"
        if engine_rows
        else ""
    )

    degraded_rows = "".join(
        f"<tr><td>{html.escape(line)}</td></tr>"
        for line in report.degraded_timeline()
    )
    degraded_section = (
        "<h2>degraded intervals</h2>"
        "<p>feeds whose breaker opened during the run; alerts derived "
        "from a degraded feed were suppressed.</p>"
        f"<table>{degraded_rows}</table>"
        if degraded_rows
        else ""
    )

    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>urban traffic management — run report</title>
<style>{_STYLE}</style></head><body>
<h1>Urban traffic management — run report</h1>
<p>mean CE recognition time:
{report.mean_recognition_time * 1000:.1f}&nbsp;ms/query ·
crowd disagreements resolved: {report.crowd_resolutions}
(unresolved: {report.crowd_unresolved})</p>
<h2>alerts</h2>
{counts_table}
<h2>alert feed (last {max_alerts})</h2>
<pre>{feed}</pre>
{engine_section}
{degraded_section}
{rewards_section}
<h2>city map</h2>
{svg}
</body></html>
"""


def write_html_report(
    system: UrbanTrafficSystem,
    report: SystemReport,
    path: str | Path,
    *,
    at: int,
    max_alerts: int = 40,
) -> Path:
    """Render with :func:`render_html_report` and write to ``path``."""
    path = Path(path)
    atomic_write_text(
        path,
        render_html_report(system, report, at=at, max_alerts=max_alerts),
    )
    return path
