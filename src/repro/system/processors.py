"""Streams-middleware embeddings of the analysis components.

The paper integrates RTEC "by a dedicated processor in Streams that
would forward the received SDEs to an RTEC instance ... Then, the
actual event processing is triggered asynchronously and the derived
CEs are emitted to a queue in the Streams framework" (Section 3), and
implements the crowdsourcing steps as dedicated processors likewise.
These classes reproduce that embedding so the whole loop can be wired
as an XML data-flow graph.
"""

from __future__ import annotations

from typing import Optional

from ..core.columns import SDEColumns
from ..core.rtec import RTEC, RecognitionLog
from ..crowd import CrowdsourcingComponent
from ..dublin.dataset import event_to_item, item_to_event, item_to_fact
from ..streams.items import TIME_KEY, DataItem
from ..streams.processors import Processor, ProcessorResult


class RtecProcessor(Processor):
    """Embeds an RTEC engine in a Streams process.

    Consumes SDE/fluent data items, buffers them into the engine, and
    triggers a recognition step whenever an item's arrival time crosses
    the next query-time boundary.  Fresh CE occurrences and fluent
    episodes are emitted as data items (``@type`` = CE name, episodes
    flagged with ``episode=True``).
    """

    def __init__(self, engine: RTEC, *, start: int = 0):
        self.engine = engine
        self.log = RecognitionLog()
        self._next_query = start + engine.step

    def _recognise_until(self, t: int) -> list[DataItem]:
        out: list[DataItem] = []
        while self._next_query <= t:
            snapshot = self.engine.query(self._next_query)
            fresh = self.log.add(snapshot)
            for occ in fresh.occurrences:
                item = dict(occ.payload)
                item["@type"] = occ.type
                item[TIME_KEY] = occ.time
                item["key"] = occ.key
                out.append(item)
            for name, key, start, end in fresh.episodes:
                out.append(
                    {
                        "@type": name,
                        TIME_KEY: start,
                        "key": key,
                        "episode": True,
                        "end": end,
                    }
                )
            self._next_query += self.engine.step
        return out

    def process(self, item: DataItem) -> ProcessorResult:
        arrival = item.get("@arrival", item[TIME_KEY])
        type_tag = item.get("@type", "")
        if type_tag.startswith("fluent:"):
            self.engine.feed(facts=[item_to_fact(item)])
        else:
            self.engine.feed(events=[item_to_event(item)])
        return self._recognise_until(arrival)

    def process_batch(self, batch: SDEColumns) -> ProcessorResult:
        """Columnar fast path: admit a whole struct-of-arrays batch.

        Array-native producers (the scheduler's per-step hand-off, the
        throughput benchmark) skip the per-item ``DataItem`` round-trip
        entirely: the batch is fed once and recognition advances to the
        newest arrival it carries.  Emits the same items
        :meth:`process` would for the equivalent item sequence.
        """
        self.engine.feed_columns(batch)
        newest = batch.max_arrival()
        if newest is None:
            return []
        return self._recognise_until(newest)

    def advance(self, now: int) -> ProcessorResult:
        """Clock hook: run query times that fell strictly before ``now``.

        Keeps recognition flowing while this region's own input is
        silent but the merged stream's clock advances.  Only queries
        ``< now`` run here — a query at exactly ``now`` must wait for
        the items arriving at ``now`` to be fed first (the runtime
        fires the hook before delivering them), and :meth:`process`
        runs it afterwards.  The recognised output is identical either
        way: an SDE arriving at ``now`` is never admitted to a query
        time before ``now``.
        """
        return self._recognise_until(now - 1)

    def flush(self, until: int) -> list[DataItem]:
        """Run any outstanding query times up to ``until`` (end of
        stream)."""
        return self._recognise_until(until)


class CrowdsourcingProcessor(Processor):
    """Embeds the crowdsourcing component in a Streams process.

    Consumes ``sourceDisagreement`` episode items emitted by
    :class:`RtecProcessor` and produces ``crowd`` SDE items carrying the
    fused answer.  The ``truth_lookup`` callable supplies the simulated
    ground truth (intersection id, time → label); a real deployment
    would instead wait for human answers.
    """

    def __init__(
        self,
        component: CrowdsourcingComponent,
        locate,
        truth_lookup,
    ):
        self.component = component
        self._locate = locate
        self._truth = truth_lookup

    def process(self, item: DataItem) -> ProcessorResult:
        if item.get("@type") != "sourceDisagreement":
            return None
        int_id = item["key"][0]
        lon, lat = self._locate(int_id)
        t = item[TIME_KEY]
        outcome = self.component.handle_disagreement(
            intersection=int_id,
            lon=lon,
            lat=lat,
            time=t,
            true_label=self._truth(int_id, t),
        )
        if outcome.crowd_event is None:
            return None
        return event_to_item(outcome.crowd_event)


class FluentFeedbackProcessor(Processor):
    """Feeds ``crowd`` SDE items back into an RTEC engine.

    Closes the loop in a Streams wiring: the crowd queue is consumed by
    this processor, which injects the events so rule-sets (4)/(5) can
    evaluate them at the next query time.
    """

    def __init__(self, engine: RTEC):
        self.engine = engine

    def process(self, item: DataItem) -> ProcessorResult:
        self.engine.feed(events=[item_to_event(item)])
        return item
