"""The paper's exact Streams wiring, built programmatically.

Section 3 describes the deployed data-flow graph:

* *input handling processes*: "all SDEs emitted by buses form one
  stream, while the SDE emitted by vehicle detectors of a SCATS system
  are referenced by four streams, one per region of Dublin city";
* *event processing processes*: CE definitions wrapped by processors
  embedding RTEC;
* *crowdsourcing processes*: participant selection/query generation and
  response processing as dedicated processors;
* *traffic modelling processes*: the congestion-estimation procedure
  wrapped as a Streams *service*.

:func:`build_paper_topology` reproduces that graph over a synthetic
scenario: one bus source, four per-region SCATS sources, one RTEC
process per region (each consuming the merged region traffic), the
crowdsourcing process fed from the CE queues, and the feedback process
closing the loop — with the rolling flow estimator registered as the
``traffic-model`` service.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.rtec import RTEC
from ..core.traffic import build_traffic_definitions, default_traffic_params
from ..crowd import (
    CrowdsourcingComponent,
    OnlineEM,
    Participant,
    QueryExecutionEngine,
)
from ..dublin import REGIONS, DublinScenario
from ..dublin.dataset import event_to_item, fact_to_item
from ..streams import Processor, Topology
from ..streams.items import TIME_KEY
from ..traffic_model import RollingFlowEstimator
from .processors import (
    CrowdsourcingProcessor,
    FluentFeedbackProcessor,
    RtecProcessor,
)


@dataclass
class PaperTopology:
    """The constructed graph plus handles to its live components."""

    topology: Topology
    rtec_processors: dict[str, RtecProcessor]
    engines: dict[str, RTEC]
    crowd: CrowdsourcingComponent
    flow_estimator: RollingFlowEstimator

    def flush(self, until: int) -> None:
        """Run the outstanding RTEC query times of every region."""
        for processor in self.rtec_processors.values():
            processor.flush(until)


def build_paper_topology(
    scenario: DublinScenario,
    data,
    *,
    window: int = 600,
    step: int = 300,
    noisy_variant: str = "crowd",
    n_participants: int = 40,
    seed: int = 0,
    incremental: bool = True,
) -> PaperTopology:
    """Assemble the Section 3 data-flow graph for a generated stream.

    Sources: ``buses`` (one stream, ``move`` SDEs + ``gps`` facts
    interleaved) and ``scats-<region>`` (four streams of ``traffic``
    SDEs).  Processes: ``cep-<region>`` (RTEC per region, consuming the
    bus stream and its region's SCATS stream via a merge queue),
    ``crowdsourcing`` and ``adaptation-feedback``.  Service:
    ``traffic-model`` (a rolling GP estimator fed by a tap on the SCATS
    streams).
    """
    split = scenario.split_by_region(data)
    topology = Topology()

    # --- input handling ---------------------------------------------------
    bus_items = []
    for event in data.events:
        if event.type == "move":
            bus_items.append(event_to_item(event))
    for fact in data.facts:
        bus_items.append(fact_to_item(fact))
    topology.source("buses", bus_items)

    for region in REGIONS:
        events, _ = split[region]
        items = [
            event_to_item(e) for e in events if e.type == "traffic"
        ]
        topology.source(f"scats-{region}", items)

    # Region of every bus emission, from its gps position.
    region_index = {
        (fact.key[0], fact.time): scenario.network.region_of(
            fact.value["lon"], fact.value["lat"]
        )
        for fact in data.facts
        if fact.name == "gps"
    }

    # --- traffic-model service ---------------------------------------------
    flow_estimator = RollingFlowEstimator(scenario.network.graph)
    topology.service("traffic-model", flow_estimator)

    # --- event processing processes -----------------------------------------
    params = default_traffic_params()
    engines: dict[str, RTEC] = {}
    rtec_processors: dict[str, RtecProcessor] = {}
    node_of = scenario.node_of

    class _FeedTrafficModel(Processor):
        """Tap: forward SCATS readings into the traffic-model service."""

        def process(self, item):
            node = node_of.get(item.get("intersection"))
            if node is not None:
                flow_estimator.observe(node, item["flow"], item[TIME_KEY])
            return item

    for region in REGIONS:
        engine = RTEC(
            build_traffic_definitions(
                scenario.topology, adaptive=True, noisy_variant=noisy_variant
            ),
            window=window,
            step=step,
            params=params,
            incremental=incremental,
        )
        engines[region] = engine
        rtec_processors[region] = RtecProcessor(engine)
        # Region merge: buses + this region's SCATS into one queue.
        topology.process(
            f"scats-intake-{region}",
            input=f"scats-{region}",
            processors=[_FeedTrafficModel()],
            output=f"region-{region}",
        ).process(
            f"bus-intake-{region}",
            input="buses",
            processors=[_RegionFilter(region, region_index)],
            output=f"region-{region}",
        ).process(
            f"cep-{region}",
            input=f"region-{region}",
            processors=[rtec_processors[region]],
            output="complex-events",
        )

    # --- crowdsourcing processes ---------------------------------------------
    crowd_engine = QueryExecutionEngine(seed=seed)
    rng = random.Random(seed)
    intersections = scenario.topology.ids()
    for i in range(n_participants):
        int_id = rng.choice(intersections)
        lon, lat = scenario.topology.location(int_id)
        crowd_engine.register(
            Participant(
                f"C{i:03d}",
                rng.uniform(0.05, 0.4),
                lon=lon,
                lat=lat,
                connection=rng.choice(("2g", "3g", "wifi")),
            )
        )
    crowd = CrowdsourcingComponent(crowd_engine, aggregator=OnlineEM())

    def _truth(int_id, t):
        return scenario.ground_truth.congestion_label(
            scenario.node_of[int_id], t
        )

    topology.process(
        "crowdsourcing",
        input="complex-events",
        processors=[
            CrowdsourcingProcessor(
                crowd,
                locate=scenario.topology.location,
                truth_lookup=_truth,
            )
        ],
        output="crowd-answers",
    )
    for region in REGIONS:
        topology.process(
            f"feedback-{region}",
            input="crowd-answers",
            processors=[FluentFeedbackProcessor(engines[region])],
        )

    return PaperTopology(
        topology=topology,
        rtec_processors=rtec_processors,
        engines=engines,
        crowd=crowd,
        flow_estimator=flow_estimator,
    )


class _RegionFilter(Processor):
    """Processor passing only the bus items of one region.

    The region of a bus emission is decided by its gps position; a
    precomputed ``(bus, time) -> region`` index (built from the gps
    facts when the topology is assembled) resolves both the ``move``
    item and its paired ``fluent:gps`` item.
    """

    def __init__(self, region: str, region_index: dict):
        self._region = region
        self._index = region_index

    def process(self, item):
        type_tag = item.get("@type", "")
        if type_tag == "move":
            key = (item["bus"], item[TIME_KEY])
        elif type_tag == "fluent:gps":
            key = (item["@key"][0], item[TIME_KEY])
        else:
            return None
        if self._index.get(key) == self._region:
            return item
        return None
