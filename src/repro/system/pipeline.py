"""The integrated urban-traffic-management system (paper, Figure 1).

Wires all four components into the closed loop the paper describes:

1. the Dublin SDE streams (bus + SCATS, four city regions) feed
2. per-region RTEC engines performing (static or self-adaptive)
   complex event recognition; recognised ``sourceDisagreement`` CEs go
   to
3. the crowdsourcing component, which queries participants near the
   disagreement, fuses their answers with online EM, and feeds the
   resulting ``crowd`` SDEs *back* into RTEC (closing the adaptation
   loop of rule-sets (4)/(5)) while also labelling the CE for
4. the city operators (alert console) and the traffic-modelling
   component, which fills the sensor-coverage gaps with GP regression.
"""

from __future__ import annotations

import bisect
import difflib
import pickle
import random
import time
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field, fields
from typing import Literal, Mapping, Optional

from ..core.columns import SDEColumns
from ..core.events import Event
from ..core.rtec import RTEC, RecognitionLog, RecognitionSnapshot
from ..faults import FaultProfile, get_profile, inject_scenario
from ..obs import Registry
from ..core.traffic import (
    build_traffic_definitions,
    default_traffic_params,
    feeds_of_definition,
)
from ..crowd import (
    CrowdsourcingComponent,
    LocationPolicy,
    OnlineEM,
    Participant,
    QueryExecutionEngine,
    RewardLedger,
    bus_report_prior,
)
from ..dublin import REGIONS, DublinScenario, greenshields_flow
from ..traffic_model import (
    CONGESTED_FLOW,
    FREE_FLOW,
    RollingFlowEstimator,
    TrafficFlowModel,
    render_flow_map,
    write_city_svg,
)
from .console import OperatorConsole
from .degradation import DegradationManager, describe_timeline


@dataclass(frozen=True)
class SystemConfig:
    """Configuration of the integrated system."""

    #: RTEC working memory and step (seconds).  Window > step tolerates
    #: delayed SDEs (paper, Figure 2).
    window: int = 600
    step: int = 300
    #: Incremental recognition (cross-window caching): when overlapping
    #: windows share data, only the newest ``step`` of each window is
    #: re-derived.  ``False`` pins the legacy recompute-per-query path
    #: (same output — the golden-trace tests assert it — useful for
    #: differential testing and micro-benchmarks).
    incremental: bool = True
    #: Compiled (vectorised) evaluation of the hot rule bodies over the
    #: columnar working-memory mirrors.  ``False`` pins the pure
    #: interpreter for every definition — same recognised CEs (the
    #: parity suite asserts it), useful for differential testing and
    #: as an escape hatch.  See ``docs/performance.md``.
    compiled_rules: bool = True
    #: Static vs self-adaptive recognition, and the noisy-rule variant.
    adaptive: bool = True
    noisy_variant: Literal["crowd", "pessimistic"] = "crowd"
    #: Structured intersection definition (sensor -> approach ->
    #: intersection) and crowd-based SCATS reliability evaluation
    #: (requires ``adaptive``).
    structured_intersections: bool = False
    scats_reliability: bool = False
    #: Distribute recognition across the four city regions (Section 7.1)
    #: or run a single engine.
    distribute_by_region: bool = True
    #: Pack the four city regions onto fewer recognition engines: each
    #: inner tuple is one engine's set of regions, and together they
    #: must partition ``REGIONS`` exactly.  ``(("central", "north"),
    #: ("west", "south"))`` runs two engines — and two workers under
    #: ``sharded`` — instead of four.  The region *assignment* of every
    #: SDE is unchanged, so recognition output is a pure function of
    #: the grouping, not of how many processes execute it (the
    #: scenario parity matrix pins this).  ``None`` keeps one engine
    #: per region.
    region_groups: Optional[tuple[tuple[str, ...], ...]] = None
    #: Fan the per-region recognition queries out over an executor
    #: (Section 7.1's parallel deployment).  The merge is deterministic:
    #: results are applied in region order, so recognised CEs, operator
    #: alerts and crowd handling are identical to the sequential path.
    parallel_regions: bool = False
    #: Executor backend for ``parallel_regions``: threads by default;
    #: ``"process"`` uses a process pool when the engines are
    #: pickle-safe and falls back to threads otherwise.
    parallel_backend: Literal["thread", "process"] = "thread"
    #: Worker count for the executor (``None``: one per region).
    parallel_workers: Optional[int] = None
    #: Sharded runtime (:mod:`repro.shard`): each region's engine runs
    #: in its own supervised OS process with per-shard
    #: checkpoint/journal recovery, fed over the message bus.  Output
    #: is byte-identical to the single-process run; mutually exclusive
    #: with ``parallel_regions`` (the sharded runtime *is* the parallel
    #: deployment) and with a pipeline-level recovery coordinator
    #: (each shard owns its recovery).
    sharded: bool = False
    #: Root directory for the per-shard recovery directories
    #: (``shard-<region>/``); ``None`` uses a temporary directory that
    #: is removed at the end of the run.
    shard_dir: Optional[str] = None
    #: Worker heartbeat cadence (seconds, wall clock).
    shard_heartbeat_s: float = 0.25
    #: Seconds without any worker message before the supervisor
    #: declares it dead (must exceed the heartbeat cadence).
    shard_liveness_timeout_s: float = 30.0
    #: Restarts allowed per shard within one run before its breaker
    #: latches open and the region degrades.
    shard_max_restarts: int = 3
    #: Base of the capped exponential restart backoff (seconds,
    #: actually slept — worker restarts are wall-clock affairs).
    shard_restart_backoff_s: float = 0.05
    #: ``multiprocessing`` start method for the shard workers.
    shard_start_method: Literal["fork", "spawn", "forkserver"] = "fork"
    #: Crowdsourcing: number of simulated participants and their
    #: error-probability range; participants are scattered near SCATS
    #: intersections.
    crowd_enabled: bool = True
    n_participants: int = 60
    participant_error_range: tuple[float, float] = (0.05, 0.5)
    participant_radius_m: float = 800.0
    #: Real-time requirement forwarded to the query engine: workers
    #: whose expected engine latency exceeds this are not queried
    #: (None disables the admission test).
    crowd_deadline_ms: Optional[float] = None
    #: "To minimise the impact on the participants" (Section 5) the
    #: same intersection is not re-queried within this cooldown, and a
    #: disagreement is only deemed *significant* when at least
    #: ``crowd_min_support`` distinct buses disagreed in the window.
    crowd_cooldown_s: int = 600
    crowd_min_support: int = 1
    #: Build disagreement priors from nearby bus reports (Section 5.1's
    #: "1 out of 4 buses" example) instead of uniform priors.
    ce_priors: bool = True
    #: Window (seconds) of bus reports feeding those priors.
    prior_window: int = 600
    #: Settle participant rewards at the end of the run.
    rewards: bool = True
    #: GP hyperparameters for the traffic-model snapshot.
    gp_alpha: float = 5.0
    gp_beta: float = 0.05
    gp_noise: float = 40.0
    #: Flow-field estimation source: ``True`` fits the GP on the
    #: *measured* SCATS flows (plus crowd pseudo-observations) kept by
    #: a rolling estimator; ``False`` reads the ground truth directly
    #: (useful for substrate debugging).
    use_measured_flows: bool = True
    flow_staleness_s: int = 1800
    #: Named fault profile (see :mod:`repro.faults.profiles`) injected
    #: into the generated SDE streams and the crowd engine; ``None``
    #: (or ``"none"``) runs fault-free.  The profile's RNG seed is
    #: offset by :attr:`seed`, so chaos runs are exactly reproducible.
    fault_profile: Optional[str] = None
    #: Consecutive silent recognition steps before a feed's breaker
    #: opens and the system degrades to the surviving feed's CEs.
    feed_outage_steps: int = 2
    #: Recognition steps between pipeline checkpoints when a
    #: :class:`repro.recovery.CheckpointCoordinator` is attached to the
    #: run (``run(..., recovery=...)`` or ``repro run --checkpoint-dir``).
    #: Ignored — zero overhead — when no coordinator is attached.
    checkpoint_interval: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window <= 0 or self.step <= 0:
            raise ValueError("window and step must be positive")
        if self.step > self.window:
            raise ValueError(
                "step must not exceed the window: SDEs occurring between "
                "windows would never be considered"
            )
        if self.noisy_variant not in ("crowd", "pessimistic"):
            raise ValueError(
                f"noisy_variant must be 'crowd' or 'pessimistic', "
                f"got {self.noisy_variant!r}"
            )
        if self.parallel_backend not in ("thread", "process"):
            raise ValueError(
                f"parallel_backend must be 'thread' or 'process', "
                f"got {self.parallel_backend!r}"
            )
        if self.n_participants < 0:
            raise ValueError("n_participants must not be negative")
        lo, hi = self.participant_error_range
        if not (0.0 <= lo <= hi <= 1.0):
            raise ValueError(
                "participant_error_range must satisfy 0 <= lo <= hi <= 1, "
                f"got {self.participant_error_range!r}"
            )
        if self.parallel_workers is not None and self.parallel_workers < 1:
            raise ValueError("parallel_workers must be at least 1")
        if self.crowd_cooldown_s < 0 or self.prior_window <= 0:
            raise ValueError(
                "crowd_cooldown_s must be >= 0 and prior_window > 0"
            )
        if self.feed_outage_steps < 1:
            raise ValueError("feed_outage_steps must be at least 1")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be at least 1")
        if self.sharded and self.parallel_regions:
            raise ValueError(
                "sharded and parallel_regions are mutually exclusive: "
                "the sharded runtime already runs one process per region"
            )
        if self.shard_heartbeat_s <= 0:
            raise ValueError("shard_heartbeat_s must be positive")
        if self.shard_liveness_timeout_s <= self.shard_heartbeat_s:
            raise ValueError(
                "shard_liveness_timeout_s must exceed shard_heartbeat_s "
                "(a worker is only dead after missing heartbeats)"
            )
        if self.shard_max_restarts < 0:
            raise ValueError("shard_max_restarts must not be negative")
        if self.shard_restart_backoff_s < 0:
            raise ValueError("shard_restart_backoff_s must not be negative")
        if self.shard_start_method not in ("fork", "spawn", "forkserver"):
            raise ValueError(
                f"shard_start_method must be 'fork', 'spawn' or "
                f"'forkserver', got {self.shard_start_method!r}"
            )
        if self.region_groups is not None:
            if not self.distribute_by_region:
                raise ValueError(
                    "region_groups requires distribute_by_region: a "
                    "single city-wide engine has nothing to group"
                )
            groups = tuple(
                tuple(group) for group in self.region_groups
            )
            object.__setattr__(self, "region_groups", groups)
            flat = [region for group in groups for region in group]
            if not groups or any(not group for group in groups):
                raise ValueError("region_groups must not contain an "
                                 "empty group")
            if sorted(flat) != sorted(REGIONS):
                raise ValueError(
                    f"region_groups must partition the city regions "
                    f"{sorted(REGIONS)} exactly, got {sorted(flat)}"
                )
        if self.fault_profile is not None:
            # Fail fast on unknown profile names (with the same
            # closest-match hint get_profile gives everywhere else).
            get_profile(self.fault_profile)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, object]) -> "SystemConfig":
        """Build a validated config from a plain mapping.

        The single entry point for CLI arguments, benchmark overrides
        and example scripts: unknown keys are rejected (with a
        closest-match hint) instead of silently ignored, list values
        for tuple-typed fields are coerced, and the resulting config
        goes through the same ``__post_init__`` validation as direct
        construction.
        """
        known = {f.name: f for f in fields(cls)}
        unknown = sorted(set(mapping) - set(known))
        if unknown:
            hints = []
            for key in unknown:
                close = difflib.get_close_matches(key, known, n=1)
                hint = f" (did you mean {close[0]!r}?)" if close else ""
                hints.append(f"{key!r}{hint}")
            raise ValueError(
                f"unknown SystemConfig key(s): {', '.join(hints)}; "
                f"valid keys: {', '.join(sorted(known))}"
            )
        kwargs = {}
        for key, value in mapping.items():
            if isinstance(value, list):
                value = tuple(value)
            kwargs[key] = value
        return cls(**kwargs)


@dataclass
class SystemReport:
    """Everything one system run produced."""

    logs: dict[str, RecognitionLog]
    console: OperatorConsole
    crowd_resolutions: int = 0
    crowd_unresolved: int = 0
    #: Disagreements skipped by the cooldown / significance filters.
    crowd_suppressed: int = 0
    flow_estimates: dict = field(default_factory=dict)
    #: Participant rewards settled at the end of the run.
    rewards: dict = field(default_factory=dict)
    #: Runtime metrics export (``repro.obs.Registry.to_dict()``):
    #: per-region throughput, per-definition RTEC timings, crowd query
    #: counters, flow-estimator gauges.  See ``docs/observability.md``.
    metrics: dict = field(default_factory=dict)
    #: Degraded-mode intervals per feed: ``{"scats": [(start, end)]}``
    #: with ``end=None`` for an outage still open at the end of the
    #: run.  Empty when every feed stayed alive.
    degraded: dict = field(default_factory=dict)
    #: Chronological shard supervisor events (worker restarts and
    #: budget-exhausted failures) from a sharded run; empty otherwise.
    #: Each entry carries ``event`` (``"restart"``/``"failed"``),
    #: ``region``, ``step`` and ``q``.
    shard_events: list = field(default_factory=list)

    def degraded_timeline(self) -> list[str]:
        """Human-readable outage timeline (one line per interval)."""
        return describe_timeline(self.degraded)

    @property
    def mean_recognition_time(self) -> float:
        """Mean per-query CPU time across regions (Figure 4's metric)."""
        logs = [log for log in self.logs.values() if log.snapshots]
        if not logs:
            return 0.0
        return sum(log.mean_elapsed for log in logs) / len(logs)

    def per_definition_profile(self) -> dict[str, float]:
        """Mean CPU seconds per definition per query, across regions.

        The operations view behind Figure 4: which rule suites carry
        the recognition cost.
        """
        sums: dict[str, float] = {}
        counts: dict[str, int] = {}
        for log in self.logs.values():
            for snapshot in log.snapshots:
                for name, elapsed in snapshot.per_definition.items():
                    sums[name] = sums.get(name, 0.0) + elapsed
                    counts[name] = counts.get(name, 0) + 1
        return {
            name: sums[name] / counts[name] for name in sums
        }

    def total_occurrences(self, name: str) -> int:
        """Distinct occurrences of CE ``name`` across all regions."""
        total = 0
        for log in self.logs.values():
            seen = set()
            for snapshot in log.snapshots:
                for occ in snapshot.all_occurrences(name):
                    seen.add((occ.key, occ.time))
            total += len(seen)
        return total


def _query_engine_remote(
    engine: RTEC, q: int
) -> tuple[RecognitionSnapshot, RTEC]:
    """Process-pool worker: query and ship the mutated engine back."""
    return engine.query(q), engine


@dataclass
class RunState:
    """Where one run is in its recognition loop.

    Checkpointed alongside the system by :mod:`repro.recovery`; a
    restored ``RunState`` is everything :meth:`UrbanTrafficSystem
    .resume_from` needs to continue the loop — the input stream itself
    is *not* re-generated on resume, because the engines' working
    memories already buffer every pending (not-yet-arrived) SDE and
    re-running generation/injection/indexing would double-count fault
    metrics and flow observations.
    """

    #: Run bounds as passed to :meth:`UrbanTrafficSystem.run`.
    start: int
    end: int
    #: The next query time the loop will evaluate.
    next_q: int
    #: 1-based count of completed recognition steps.
    step_index: int
    #: Sorted per-feed SDE arrival times (the degradation breaker's
    #: liveness signal), precomputed for the whole run.
    feed_arrivals: dict[str, list[int]]
    #: The report under construction (logs, console, crowd counters).
    report: SystemReport


class UrbanTrafficSystem:
    """Orchestrates a full scenario run with the feedback loop closed."""

    def __init__(
        self,
        scenario: DublinScenario,
        config: Optional[SystemConfig] = None,
    ):
        self.scenario = scenario
        self.config = config or SystemConfig()
        cfg = self.config
        #: Runtime metrics shared by every component of this system;
        #: exported into :attr:`SystemReport.metrics` after each run.
        self.metrics = Registry()
        #: Resolved fault profile, or ``None`` when the configured
        #: profile injects nothing; re-seeded from the system seed so
        #: the whole chaos run hangs off one number.
        self.fault_profile: Optional[FaultProfile] = None
        if cfg.fault_profile is not None:
            profile = get_profile(cfg.fault_profile)
            if profile.active:
                self.fault_profile = profile.with_seed(
                    profile.seed + cfg.seed
                )
        #: Feed-liveness breaker driving graceful degradation.
        self.degradation = DegradationManager(
            threshold=cfg.feed_outage_steps, metrics=self.metrics
        )

        params = default_traffic_params()
        #: Region -> engine-key mapping when the four regions are
        #: packed onto fewer engines; ``None`` means one engine per
        #: region (or the single "city" engine).
        self._region_to_group: Optional[dict[str, str]] = None
        if not cfg.distribute_by_region:
            regions = ["city"]
        elif cfg.region_groups is not None:
            regions = ["+".join(group) for group in cfg.region_groups]
            self._region_to_group = {
                region: "+".join(group)
                for group in cfg.region_groups
                for region in group
            }
        else:
            regions = list(REGIONS)
        self.engines: dict[str, RTEC] = {}
        for region in regions:
            definitions = build_traffic_definitions(
                scenario.topology,
                adaptive=cfg.adaptive,
                noisy_variant=cfg.noisy_variant,
                structured_intersections=cfg.structured_intersections,
                scats_reliability=cfg.scats_reliability,
            )
            self.engines[region] = RTEC(
                definitions,
                window=cfg.window,
                step=cfg.step,
                params=params,
                incremental=cfg.incremental,
                compiled=cfg.compiled_rules,
            )

        self.console = OperatorConsole()
        self.crowd: Optional[CrowdsourcingComponent] = None
        self.reward_ledger: Optional[RewardLedger] = None
        if cfg.crowd_enabled:
            self.crowd = self._build_crowd_component()
            if cfg.rewards:
                self.reward_ledger = RewardLedger()
        #: Rolling city-wide flow field fed by measured SCATS readings
        #: and crowd pseudo-observations ("this step is repeated
        #: continuously", Section 7.3).
        self.flow_estimator = RollingFlowEstimator(
            scenario.network.graph,
            alpha=cfg.gp_alpha,
            beta=cfg.gp_beta,
            noise=cfg.gp_noise,
            staleness_s=cfg.flow_staleness_s,
            metrics=self.metrics,
        )
        #: Recent bus congestion reports per intersection, feeding the
        #: Section 5.1 priors; populated during run().
        self._bus_reports: dict[str, list[tuple[int, int]]] = {}
        #: Last crowd query time per intersection (cooldown filter).
        self._last_query_at: dict[str, int] = {}
        #: Scripted per-region :class:`~repro.faults.crash.CrashInjector`
        #: plans for the sharded runtime, consumed one per worker spawn
        #: (the first arms the initial worker, the next its first
        #: restart, ...).  Set by chaos tests before :meth:`run`.
        self.shard_crash_plans: dict[str, list] = {}
        self._shard_runtime = None
        #: Crowd feedback produced while handling one step's results,
        #: published to the shard workers in a single end-of-step batch.
        self._crowd_feed_buffer: list[Event] = []

    # ------------------------------------------------------------------
    def _build_crowd_component(self) -> CrowdsourcingComponent:
        """Scatter simulated participants around SCATS intersections."""
        cfg = self.config
        rng = random.Random(cfg.seed + 100)
        engine = QueryExecutionEngine(
            policy=LocationPolicy(radius_m=cfg.participant_radius_m),
            seed=cfg.seed + 101,
            metrics=self.metrics,
            faults=(
                self.fault_profile.crowd
                if self.fault_profile is not None
                else None
            ),
        )
        intersections = self.scenario.topology.ids()
        lo, hi = cfg.participant_error_range
        for i in range(cfg.n_participants):
            int_id = rng.choice(intersections)
            lon, lat = self.scenario.topology.location(int_id)
            engine.register(
                Participant(
                    participant_id=f"C{i:03d}",
                    error_probability=rng.uniform(lo, hi),
                    lon=lon + rng.uniform(-0.002, 0.002),
                    lat=lat + rng.uniform(-0.002, 0.002),
                    connection=rng.choice(("2g", "3g", "wifi")),
                )
            )
        return CrowdsourcingComponent(engine, aggregator=OnlineEM())

    # ------------------------------------------------------------------
    def _index_inputs(self, data) -> None:
        """Feed the flow estimator and the prior index from the raw
        SDE stream (one pass; both are O(stream))."""
        for event in data.events:
            if event.type != "traffic":
                continue
            node = self.scenario.node_of.get(event["intersection"])
            if node is not None:
                self.flow_estimator.observe(node, event["flow"], event.time)
        if self.config.ce_priors:
            topology = self.scenario.topology
            for fact in data.facts:
                if fact.name != "gps":
                    continue
                gps = fact.value
                for int_id in topology.intersections_close_to(
                    gps["lon"], gps["lat"]
                ):
                    self._bus_reports.setdefault(int_id, []).append(
                        (fact.time, gps["congestion"])
                    )

    def _disagreement_prior(self, int_id: str, q: int):
        """Section 5.1 prior from nearby bus reports, or None."""
        if not self.config.ce_priors:
            return None
        reports = self._bus_reports.get(int_id)
        if not reports:
            return None
        window_start = q - self.config.prior_window
        recent = [bit for t, bit in reports if window_start < t <= q]
        if not recent:
            return None
        return bus_report_prior(sum(recent), len(recent))

    @staticmethod
    def _feed_arrivals(data) -> dict[str, list[int]]:
        """Sorted SDE *arrival* times per feed — the liveness signal
        the degradation breaker watches.  Arrival, not occurrence:
        a delayed record keeps its feed alive only once it shows up."""
        arrivals: dict[str, list[int]] = {"scats": [], "bus": []}
        for event in data.events:
            if event.type == "traffic":
                arrivals["scats"].append(event.arrival)
            elif event.type == "move":
                arrivals["bus"].append(event.arrival)
        for fact in data.facts:
            if fact.name == "gps":
                arrivals["bus"].append(fact.arrival)
        for times in arrivals.values():
            times.sort()
        return arrivals

    def _step_arrival_counts(
        self, feed_arrivals: dict[str, list[int]], q: int
    ) -> dict[str, int]:
        """How many SDEs per feed arrived in the step ``(q-step, q]``."""
        lo = q - self.config.step
        return {
            feed: bisect.bisect_right(times, q)
            - bisect.bisect_right(times, lo)
            for feed, times in feed_arrivals.items()
        }

    def run(
        self, start: int, end: int, *, recovery=None
    ) -> SystemReport:
        """Run the full loop over ``[start, end)`` and report.

        With ``config.parallel_regions`` the per-region recognition
        queries of each step run concurrently on an executor; the
        results are then *applied* strictly in region order.  Because a
        crowd SDE produced while handling one region's results carries
        an occurrence time after the current query time, it can never
        enter another region's window at the same step — so the
        parallel schedule recognises exactly what the sequential one
        does (the parity test in ``tests/system/test_parallel.py``
        asserts this end to end).

        ``recovery`` accepts a
        :class:`repro.recovery.CheckpointCoordinator`: the loop then
        journals each step write-ahead and checkpoints the whole
        pipeline every ``config.checkpoint_interval`` steps.  The
        coordinator only observes — a run with checkpointing enabled
        produces exactly the output of one without.
        """
        if recovery is not None and self.config.sharded:
            raise ValueError(
                "sharded runs use per-shard recovery (each worker owns "
                "its checkpoint directory); a pipeline-level "
                "CheckpointCoordinator cannot be attached as well"
            )
        if recovery is not None:
            # The baseline checkpoint is written *before* the stream is
            # generated and fed: the snapshot then holds no pending
            # SDEs, and a baseline restore re-runs this method so the
            # deterministic generation (and its metrics) happens
            # exactly once, from the checkpointed RNG state.
            recovery.on_run_start(self, (start, end))
        data = self.scenario.generate(start, end)
        if self.fault_profile is not None:
            data = inject_scenario(
                data, self.fault_profile, metrics=self.metrics
            )
        self._index_inputs(data)
        feed_arrivals = self._feed_arrivals(data)
        if self.config.distribute_by_region:
            split = self.scenario.split_by_region(
                data, groups=self._region_to_group
            )
        else:
            split = {"city": (data.events, data.facts)}
        for region, (events, facts) in split.items():
            # Columnar hand-off: the engine receives one
            # struct-of-arrays batch per region instead of a list of
            # objects, so admission and the working-memory mirrors can
            # work on arrays.
            batch = SDEColumns.from_sdes(events, facts)
            self.metrics.counter("ingest.events").inc(batch.n)
            self.engines[region].feed_columns(batch)
            # Everything up to here is deterministically regenerable
            # from the baseline checkpoint; later feeds (crowd
            # feedback) are not.  The boundary lets interval
            # checkpoints drop the pending stream instead of
            # re-serialising the whole future at every write.
            self.engines[region].mark_stream_fed()

        if self.config.sharded:
            # Ship the fully fed engines out to one worker process per
            # region; from here on the workers own engine evolution and
            # the parent only merges snapshots (and records the same
            # metrics from them as the in-process path would).
            from ..shard import ShardedRuntime

            cfg = self.config
            self._shard_runtime = ShardedRuntime(
                list(self.engines),
                metrics=self.metrics,
                checkpoint_interval=cfg.checkpoint_interval,
                directory=cfg.shard_dir,
                start_method=cfg.shard_start_method,
                heartbeat_s=cfg.shard_heartbeat_s,
                liveness_timeout_s=cfg.shard_liveness_timeout_s,
                max_restarts=cfg.shard_max_restarts,
                backoff_base_s=cfg.shard_restart_backoff_s,
                degradation=self.degradation,
                crash_plans=self.shard_crash_plans,
            )
            self._shard_runtime.start(self.engines)

        logs = {region: RecognitionLog() for region in self.engines}
        state = RunState(
            start=start,
            end=end,
            next_q=start + self.config.step,
            step_index=0,
            feed_arrivals=feed_arrivals,
            report=SystemReport(logs=logs, console=self.console),
        )
        return self._run_loop(state, recovery)

    def resume_from(self, state: RunState, recovery) -> SystemReport:
        """Continue a checkpointed run restored by
        :meth:`repro.recovery.CheckpointCoordinator.restore_latest`.

        Must be called on the *restored* system object (the one
        unpickled from the checkpoint together with ``state``), with
        the pending stream already present — either carried by the
        checkpoint itself or refilled by :meth:`rebuild_pending` for a
        streamless checkpoint.  No input is re-generated or re-fed
        here.
        """
        return self._run_loop(state, recovery)

    def rebuild_pending(self, pristine, state: RunState) -> None:
        """Refill the engines' pending buffers after restoring a
        *streamless* checkpoint.

        ``pristine`` is the pre-generation twin of this system,
        unpickled from the baseline checkpoint: regenerating the input
        stream on it reproduces byte-for-byte the sequence the crashed
        run fed, because generation is a pure function of the
        checkpointed RNG states.  The stream is regenerated, split and
        filtered exactly as :meth:`run` fed it; everything already
        admitted by the last completed query is dropped, and the
        engines merge the remainder under the pending entries the
        snapshot retained (crowd feedback SDEs).  All side channels of
        generation — fault counters, flow-estimator observations, the
        prior index — already live in the restored state, so the
        regeneration here deliberately touches only ``pristine``'s
        metrics (discarded with it).
        """
        data = pristine.scenario.generate(state.start, state.end)
        if pristine.fault_profile is not None:
            data = inject_scenario(
                data, pristine.fault_profile, metrics=pristine.metrics
            )
        if self.config.distribute_by_region:
            split = pristine.scenario.split_by_region(
                data, groups=self._region_to_group
            )
        else:
            split = {"city": (data.events, data.facts)}
        admitted_through = state.next_q - self.config.step
        for region, (events, facts) in split.items():
            self.engines[region].refill_columns(
                SDEColumns.from_sdes(events, facts), admitted_through
            )

    def _run_loop(self, state: RunState, recovery) -> SystemReport:
        """The recognition loop and end-of-run finalisation."""
        report = state.report
        logs = report.logs
        executor = self._make_executor()
        loop_started = time.perf_counter()
        try:
            q = state.next_q
            while q <= state.end:
                step = state.step_index + 1
                arrivals = self._step_arrival_counts(
                    state.feed_arrivals, q
                )
                if recovery is not None:
                    recovery.begin_step(step, q, arrivals)
                state.step_index = step
                degraded = self.degradation.observe(q, arrivals)
                if self._shard_runtime is not None:
                    snapshots = self._shard_runtime.query_step(step, q)
                    # A shard whose restart budget was exhausted inside
                    # query_step entered the degraded set mid-step.
                    degraded = self.degradation.degraded_feeds
                else:
                    snapshots = self._query_regions(q, executor)
                crowd_before = report.crowd_resolutions
                for region, snapshot in snapshots.items():
                    self._record_query_metrics(region, snapshot)
                    fresh = logs[region].add(snapshot)
                    self._surface_alerts(region, fresh, degraded)
                    self._handle_disagreements(
                        region, q, snapshot, fresh, report, degraded
                    )
                if (
                    self._shard_runtime is not None
                    and self._crowd_feed_buffer
                ):
                    self._shard_runtime.publish_feed(
                        step, self._crowd_feed_buffer
                    )
                    self._crowd_feed_buffer = []
                q += self.config.step
                state.next_q = q
                if recovery is not None:
                    recovery.commit_step(
                        step, report.crowd_resolutions - crowd_before
                    )
                    recovery.after_step(self, state)
        except BaseException:
            # Abort path: kill what will not drain, release channels.
            if self._shard_runtime is not None:
                self._shard_runtime.shutdown()
                self._shard_runtime = None
            raise
        finally:
            self.metrics.timing("ingest.loop_seconds").observe(
                time.perf_counter() - loop_started
            )
            if executor is not None:
                executor.shutdown()

        # Drain the shard workers *outside* the timed loop (spawn and
        # shutdown are deployment cost, not steady-state recognition
        # cost — the sharded-overhead bench gates the loop time) but
        # *before* the metrics export, so the per-worker registries
        # merge into the report under ``shard.<region>.*``.
        if self._shard_runtime is not None:
            report.shard_events = self._shard_runtime.shutdown()
            self._shard_runtime = None

        report.degraded = self.degradation.finish()
        report.flow_estimates = self.estimate_citywide(state.end)
        if self.reward_ledger is not None and self.crowd is not None:
            report.rewards = self.reward_ledger.settle(
                self.crowd.aggregator
            )
        self._finalise_metrics(state.end)
        report.metrics = self.metrics.to_dict()
        if recovery is not None:
            recovery.on_run_complete(self, state)
        return report

    # ------------------------------------------------------------------
    def _make_executor(self) -> Optional[Executor]:
        """The executor for parallel per-region queries, or ``None``.

        ``"process"`` requires pickle-safe engines (the query mutates
        engine state, so workers ship the engine back); when pickling
        fails the system degrades to threads and says so in the
        ``system.parallel.pickle_fallback`` gauge.
        """
        cfg = self.config
        if self._shard_runtime is not None:
            return None  # the workers are the parallelism
        if not cfg.parallel_regions or len(self.engines) < 2:
            return None
        workers = cfg.parallel_workers or len(self.engines)
        if cfg.parallel_backend == "process":
            try:
                pickle.dumps(self.engines)
            except (TypeError, AttributeError, pickle.PicklingError):
                # The three ways pickling engine state actually fails
                # (lambdas/local classes, lost attributes, explicit
                # refusals).  Anything else is a real bug and should
                # surface, not silently degrade to threads.
                self.metrics.counter("system.parallel.pickle_errors").inc()
                self.metrics.gauge("system.parallel.pickle_fallback").set(1)
            else:
                return ProcessPoolExecutor(max_workers=workers)
        return ThreadPoolExecutor(max_workers=workers)

    def _query_regions(
        self, q: int, executor: Optional[Executor]
    ) -> dict[str, RecognitionSnapshot]:
        """One recognition step over all regions, in region order."""
        if executor is None:
            return {
                region: engine.query(q)
                for region, engine in self.engines.items()
            }
        if isinstance(executor, ProcessPoolExecutor):
            futures = {
                region: executor.submit(_query_engine_remote, engine, q)
                for region, engine in self.engines.items()
            }
            snapshots: dict[str, RecognitionSnapshot] = {}
            for region, future in futures.items():
                snapshot, engine = future.result()
                # The worker mutated a copy; adopt it so window caches
                # and pruning carry over to the next step.
                self.engines[region] = engine
                snapshots[region] = snapshot
            return snapshots
        futures = {
            region: executor.submit(engine.query, q)
            for region, engine in self.engines.items()
        }
        return {region: f.result() for region, f in futures.items()}

    # ------------------------------------------------------------------
    def _record_query_metrics(
        self, region: str, snapshot: RecognitionSnapshot
    ) -> None:
        """Per-region throughput and per-definition RTEC timings.

        ``.items`` counts each SDE exactly once — the snapshot's
        *newly arrived* events — so overlapping windows (window > step)
        no longer inflate the throughput numbers by re-counting the
        shared overlap at every query.
        """
        prefix = f"process.cep-{region}"
        self.metrics.counter(f"{prefix}.queries").inc()
        self.metrics.counter(f"{prefix}.items").inc(snapshot.n_new_events)
        self.metrics.timing(f"{prefix}.seconds").observe(snapshot.elapsed)
        self.metrics.counter("rtec.cache.hits").inc(snapshot.cache_hits)
        self.metrics.counter("rtec.cache.misses").inc(snapshot.cache_misses)
        self.metrics.counter("rtec.cache.invalidations").inc(
            snapshot.cache_invalidations
        )
        self.metrics.counter("rtec.compiled.evals").inc(
            snapshot.compiled_evals
        )
        self.metrics.counter("rtec.compiled.fallbacks").inc(
            snapshot.compiled_fallbacks
        )
        for name, elapsed in snapshot.per_definition.items():
            self.metrics.timing(
                f"rtec.definition.{name}.seconds"
            ).observe(elapsed)

    def _finalise_metrics(self, end: int) -> None:
        """Derived gauges computed once per run."""
        for region in self.engines:
            prefix = f"process.cep-{region}"
            items = self.metrics.counter(f"{prefix}.items").value
            seconds = self.metrics.timing(f"{prefix}.seconds").total
            if seconds > 0.0:
                self.metrics.gauge(f"{prefix}.items_per_s").set(
                    items / seconds
                )
        ingested = self.metrics.counter("ingest.events").value
        loop_seconds = self.metrics.timing("ingest.loop_seconds").total
        if ingested and loop_seconds > 0.0:
            # End-to-end ingest throughput: every SDE the scheduler
            # handed the engines over the wall-clock time of the
            # recognition loop(s).  The throughput gate benchmarks this
            # against the Dublin arrival rate (~0.5 SDE/s fleet-wide).
            self.metrics.gauge("ingest.events_per_s").set(
                ingested / loop_seconds
            )
        self.metrics.gauge("flow.coverage").set(
            self.flow_estimator.coverage(end)
        )

    # ------------------------------------------------------------------
    def _suppressed(self, name: str, degraded: frozenset[str]) -> bool:
        """Whether a CE's alert is untrustworthy under the current
        outages (it reads a degraded feed) — if so, count and drop."""
        if degraded and any(
            feed in degraded for feed in feeds_of_definition(name)
        ):
            self.metrics.counter("system.degraded.alerts_suppressed").inc()
            return True
        return False

    def _surface_alerts(
        self, region: str, fresh, degraded: frozenset[str] = frozenset()
    ) -> None:
        """Turn fresh CE episodes/occurrences into operator alerts.

        Alerts derived from a degraded feed are suppressed: with SCATS
        silent the sensor-side CEs are stale inertia, not news — only
        the surviving feed's alerts keep flowing (graceful degradation).
        """
        for name, key, start, _ in fresh.episodes:
            if self._suppressed(name, degraded):
                continue
            if name == "scatsIntCongestion":
                self.console.notify(
                    start, "scats congestion", str(key[0]),
                    "intersection sensors report congestion", region,
                )
            elif name == "busCongestion":
                self.console.notify(
                    start, "bus congestion", str(key[0]),
                    "buses report congestion", region,
                )
            elif name == "noisyScats":
                self.console.notify(
                    start, "scats unreliable", str(key[0]),
                    "crowd evidence contradicts the intersection sensors",
                    region,
                )
            elif name == "densityTrend" and key[-1] == "rising":
                # Proactive signal (Section 4.3's trend CEs): density
                # building up before the congestion threshold trips.
                self.console.notify(
                    start, "density rising", str(key[0]),
                    f"sensor {key[2]} approach {key[1]} trending up",
                    region,
                )
        for occ in fresh.occurrences:
            if occ.type == "congestionInTheMake" and not self._suppressed(
                occ.type, degraded
            ):
                self.console.notify(
                    occ.time, "congestion in-the-make",
                    f"({occ['lon']:.4f},{occ['lat']:.4f})",
                    f"delay increases from {occ['support']} buses", region,
                )

    def _disagreement_support(self, snapshot, int_id: str) -> int:
        """Distinct buses that disagreed at this intersection in the
        window (the significance measure for querying the crowd)."""
        buses = {
            occ["bus"]
            for occ in snapshot.all_occurrences("disagree")
            if occ["intersection"] == int_id
        }
        return len(buses)

    def _handle_disagreements(
        self,
        region: str,
        q: int,
        snapshot,
        fresh,
        report: SystemReport,
        degraded: frozenset[str] = frozenset(),
    ) -> None:
        """Crowdsource fresh source disagreements; feed answers back.

        "To minimise the impact on the participants, the crowdsourcing
        component is invoked ... when a significant disagreement in the
        data sources is detected" (Section 5): an intersection is only
        queried when enough distinct buses disagreed and it was not
        already queried within the cooldown.  While either feed is
        degraded a "disagreement" is an artifact of the outage, so the
        crowd is not bothered at all.
        """
        cfg = self.config
        disagreements = fresh.episodes_of("sourceDisagreement")
        if disagreements and degraded and any(
            feed in degraded
            for feed in feeds_of_definition("sourceDisagreement")
        ):
            report.crowd_suppressed += len(disagreements)
            self.metrics.counter("system.degraded.crowd_suppressed").inc(
                len(disagreements)
            )
            return
        for _, key, start, _ in disagreements:
            int_id = key[0]
            lon, lat = self.scenario.topology.location(int_id)
            self.console.notify(
                start, "source disagreement", str(int_id),
                "buses and SCATS sensors disagree on congestion", region,
            )
            self.metrics.counter("crowd.disagreements").inc()
            if self.crowd is None:
                report.crowd_unresolved += 1
                self.metrics.counter("crowd.unresolved").inc()
                continue
            last = self._last_query_at.get(int_id)
            if last is not None and q - last < cfg.crowd_cooldown_s:
                report.crowd_suppressed += 1
                self.metrics.counter("crowd.suppressed").inc()
                continue
            if cfg.adaptive and cfg.crowd_min_support > 1:
                support = self._disagreement_support(snapshot, int_id)
                if support < cfg.crowd_min_support:
                    report.crowd_suppressed += 1
                    self.metrics.counter("crowd.suppressed").inc()
                    continue
            self._last_query_at[int_id] = q
            node = self.scenario.node_of[int_id]
            truth = self.scenario.ground_truth.congestion_label(node, q)
            outcome = self.crowd.handle_disagreement(
                intersection=int_id,
                lon=lon,
                lat=lat,
                time=q,
                prior=self._disagreement_prior(int_id, q),
                true_label=truth,
                deadline_ms=self.config.crowd_deadline_ms,
            )
            if outcome.crowd_event is None:
                report.crowd_unresolved += 1
                self.metrics.counter("crowd.unresolved").inc()
                continue
            report.crowd_resolutions += 1
            self.metrics.counter("crowd.resolved").inc()
            if self.reward_ledger is not None:
                self.reward_ledger.record_answers(
                    outcome.execution.answer_set.answers
                )
            # Crowd pseudo-observation for the flow field: a confirmed
            # congestion pins the junction to the congested branch.
            crowd_flow = (
                CONGESTED_FLOW
                if outcome.crowd_event["value"] == "positive"
                else FREE_FLOW
            )
            self.flow_estimator.observe(
                node, crowd_flow, outcome.crowd_event.time
            )
            # Feedback: the crowd SDE re-enters every engine so the
            # noisy-bus rules can use it at the next query time.
            self._feed_crowd_event(outcome.crowd_event)
            self.console.notify(
                outcome.crowd_event.time, "crowd resolution", str(int_id),
                f"crowd says {outcome.crowd_event['value']} "
                f"(confidence {outcome.crowd_event['confidence']:.2f})",
                region,
            )

    def _feed_crowd_event(self, event: Event) -> None:
        """Crowd feedback re-enters recognition.

        In-process: straight into every engine.  Sharded: buffered for
        one end-of-step publish over the bus — same recognition output,
        because a crowd SDE occurs after the current query time and is
        only ever visible from the next step onward, and the buffer
        preserves the in-process feed order.
        """
        if self._shard_runtime is not None:
            self._crowd_feed_buffer.append(event)
            return
        for engine in self.engines.values():
            engine.feed([event])

    # ------------------------------------------------------------------
    def estimate_citywide(self, t: int) -> dict:
        """Traffic-model snapshot: flow estimates for every junction.

        With ``use_measured_flows`` (the default) the GP is fitted on
        the rolling estimator's fresh *measured* SCATS flows plus the
        crowd pseudo-observations accumulated so far; the GP fills in
        the unsensed junctions — the sparsity answer of Section 6.
        Without it (or before any reading arrived) the true flows at
        the SCATS junctions are used instead, which is useful when
        debugging the substrate itself.
        """
        scenario = self.scenario
        if self.config.use_measured_flows:
            estimates = self.flow_estimator.estimate(t)
            if estimates is not None:
                return estimates
        observations = {
            node: greenshields_flow(
                scenario.ground_truth.density(node, t)
            )
            for node in scenario.node_of.values()
        }
        model = TrafficFlowModel(
            scenario.network.graph,
            alpha=self.config.gp_alpha,
            beta=self.config.gp_beta,
            noise=self.config.gp_noise,
        )
        model.fit(observations)
        return model.estimate()

    def render_city_map(self, t: int) -> str:
        """The operator's ASCII city map of estimated flows at ``t``."""
        estimates = self.estimate_citywide(t)
        return render_flow_map(self.scenario.network.positions(), estimates)

    def export_city_svg(self, t: int, path) -> None:
        """Write the operator map as an SVG image (Figure 9 analog).

        Junction dots are shaded by *congestion* (low flow = red), the
        street network is drawn underneath and SCATS junctions carry a
        ring marker (Figures 7-8).
        """
        estimates = self.estimate_citywide(t)
        peak = max(estimates.values(), default=0.0)
        congestion = {n: peak - v for n, v in estimates.items()}
        write_city_svg(
            path,
            self.scenario.network.positions(),
            self.scenario.network.graph.edges,
            values=congestion,
            sensors=self.scenario.node_of.values(),
            title=f"estimated congestion at t={t}s (red = congested)",
        )
