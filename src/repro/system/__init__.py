"""The integrated system: pipeline, console and Streams embeddings."""

from .console import Alert, OperatorConsole
from .degradation import DegradationManager, describe_timeline
from .pipeline import RunState, SystemConfig, SystemReport, UrbanTrafficSystem
from .processors import (
    CrowdsourcingProcessor,
    FluentFeedbackProcessor,
    RtecProcessor,
)
from .report import render_html_report, write_html_report
from .topology import PaperTopology, build_paper_topology

__all__ = [
    "Alert",
    "OperatorConsole",
    "SystemConfig",
    "RunState",
    "SystemReport",
    "UrbanTrafficSystem",
    "DegradationManager",
    "describe_timeline",
    "RtecProcessor",
    "CrowdsourcingProcessor",
    "FluentFeedbackProcessor",
    "PaperTopology",
    "build_paper_topology",
    "render_html_report",
    "write_html_report",
]
