"""Graceful degradation under feed outages.

The integrated system reads two SDE feeds — the SCATS sensor stream
and the bus stream.  When one of them goes silent (a mediator crash, a
``blackout_scats`` fault profile, a real outage) the honest move is
*not* to keep recognising cross-source CEs as if both feeds were
healthy: ``sourceDisagreement`` against a dead feed is an artifact,
and crowdsourcing on top of it wastes participant goodwill.

:class:`DegradationManager` is the per-run breaker for this: the
pipeline reports each feed's arrival count once per recognition step,
and a feed whose count stays at zero for ``threshold`` consecutive
steps trips into *degraded* mode.  While degraded:

* alerts derived from CE definitions that read the dead feed are
  suppressed (see :func:`repro.core.traffic.feeds_of_definition` for
  the CE -> feed map) — the bus-derived CEs keep flowing when SCATS is
  out, and vice versa;
* crowd queries for source disagreements are suppressed (they need
  both feeds to mean anything).

The first arrival after an outage closes the breaker again; every
open/close transition is recorded as a degraded interval so the
:class:`~repro.system.pipeline.SystemReport` can show the outage
timeline, and counted through ``system.feed.<feed>.*`` metrics.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Optional

from ..obs import Registry


class DegradationManager:
    """Tracks per-feed liveness and the degraded-mode intervals.

    Parameters
    ----------
    feeds:
        The feed names to supervise (default: the two city feeds).
    threshold:
        Consecutive silent recognition steps before a feed is declared
        degraded (>= 1; 1 means a single empty step trips the breaker).
    metrics:
        Optional :class:`repro.obs.Registry` for the
        ``system.feed.<feed>.{silent_steps,outages,degraded}`` series.
    """

    def __init__(
        self,
        feeds: Iterable[str] = ("scats", "bus"),
        *,
        threshold: int = 2,
        metrics: Optional[Registry] = None,
    ):
        if threshold < 1:
            raise ValueError(
                f"threshold must be at least 1, got {threshold}"
            )
        self.feeds = tuple(feeds)
        self.threshold = threshold
        self.metrics = metrics
        self._silent: dict[str, int] = {feed: 0 for feed in self.feeds}
        self._degraded: set[str] = set()
        #: Feeds forced into degraded mode from outside the arrival
        #: accounting (a shard whose restart budget is exhausted);
        #: excluded from per-step liveness tracking since no arrival
        #: can ever close them.
        self._forced: set[str] = set()
        #: feed -> [(start, end-or-None), ...]; ``None`` means the
        #: outage was still open when the run finished.
        self.intervals: dict[str, list[tuple[int, Optional[int]]]] = {
            feed: [] for feed in self.feeds
        }

    # ------------------------------------------------------------------
    @property
    def degraded_feeds(self) -> frozenset[str]:
        """The feeds currently in degraded mode."""
        return frozenset(self._degraded)

    def is_degraded(self, feed: str) -> bool:
        """Whether ``feed`` is currently in degraded mode."""
        return feed in self._degraded

    def suppresses(self, definition_feeds: Iterable[str]) -> bool:
        """Whether a CE reading ``definition_feeds`` is untrustworthy
        right now (any of its feeds is degraded)."""
        return any(feed in self._degraded for feed in definition_feeds)

    # ------------------------------------------------------------------
    def observe(self, q: int, arrivals: Mapping[str, int]) -> frozenset[str]:
        """Account one recognition step's per-feed arrival counts.

        ``arrivals`` maps feed name to the number of SDEs that *arrived*
        in the step ending at ``q``; missing feeds count as silent.
        Returns the degraded set after the update.
        """
        for feed in self.feeds:
            if feed in self._forced:
                continue
            count = arrivals.get(feed, 0)
            if count > 0:
                if feed in self._degraded:
                    self._degraded.discard(feed)
                    start, _ = self.intervals[feed][-1]
                    self.intervals[feed][-1] = (start, q)
                    self._count(feed, "recoveries")
                self._silent[feed] = 0
            else:
                self._silent[feed] += 1
                self._count(feed, "silent_steps")
                if (
                    feed not in self._degraded
                    and self._silent[feed] >= self.threshold
                ):
                    self._degraded.add(feed)
                    self.intervals[feed].append((q, None))
                    self._count(feed, "outages")
            if self.metrics is not None:
                self.metrics.gauge(f"system.feed.{feed}.degraded").set(
                    1.0 if feed in self._degraded else 0.0
                )
        return self.degraded_feeds

    def force_outage(self, feed: str, q: int) -> None:
        """Declare ``feed`` degraded from outside the arrival
        accounting, permanently for this run.

        Used by the shard supervisor when a region's worker exhausts
        its restart budget: the pseudo-feed ``shard:<region>`` enters
        the outage timeline at ``q`` and never recovers (no arrival
        count is tracked for it), so the region's alerts stay
        suppressed while the surviving feeds keep their own breaker
        semantics.  Idempotent.
        """
        if feed not in self.feeds:
            self.feeds = self.feeds + (feed,)
            self._silent[feed] = 0
            self.intervals[feed] = []
        self._forced.add(feed)
        if feed in self._degraded:
            return
        self._degraded.add(feed)
        self.intervals[feed].append((q, None))
        self._count(feed, "outages")
        if self.metrics is not None:
            self.metrics.gauge(f"system.feed.{feed}.degraded").set(1.0)

    def finish(self) -> dict[str, list[tuple[int, Optional[int]]]]:
        """The outage timeline; still-open intervals keep ``end=None``."""
        return {
            feed: list(spans)
            for feed, spans in self.intervals.items()
            if spans
        }

    # -- durability ----------------------------------------------------
    # The manager is pickled wholesale inside pipeline checkpoints;
    # these JSON-able dicts are the explicit contract for what must
    # survive a restart: the per-feed silent-step counters, the set of
    # currently tripped breakers, and the outage timeline (including
    # still-open intervals, whose ``end`` is ``None`` until the feed
    # recovers).  Thresholds and the metrics registry are configuration
    # and are re-attached by the restoring pipeline.
    def state_dict(self) -> dict:
        """The breaker/timeline state as plain JSON-able data."""
        return {
            "silent": dict(self._silent),
            "degraded": sorted(self._degraded),
            "forced": sorted(self._forced),
            "intervals": {
                feed: [list(span) for span in spans]
                for feed, spans in self.intervals.items()
            },
        }

    def load_state_dict(self, state: Mapping) -> None:
        """Restore state captured by :meth:`state_dict`."""
        for feed in state.get("forced", []):
            if feed not in self.feeds:
                self.feeds = self.feeds + (feed,)
        silent = state["silent"]
        self._silent = {
            feed: int(silent.get(feed, 0)) for feed in self.feeds
        }
        self._degraded = {
            feed for feed in state["degraded"] if feed in self.feeds
        }
        self._forced = {
            feed for feed in state.get("forced", []) if feed in self.feeds
        }
        intervals = state["intervals"]
        self.intervals = {
            feed: [
                (int(start), None if end is None else int(end))
                for start, end in intervals.get(feed, [])
            ]
            for feed in self.feeds
        }

    # ------------------------------------------------------------------
    def _count(self, feed: str, kind: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"system.feed.{feed}.{kind}").inc()


def describe_timeline(
    degraded: Mapping[str, list[tuple[int, Optional[int]]]]
) -> list[str]:
    """Human-readable one-liners for a report's degraded intervals."""
    lines = []
    for feed in sorted(degraded):
        for start, end in degraded[feed]:
            span = f"[{start}, {end}]" if end is not None else f"[{start}, end of run]"
            lines.append(f"feed {feed!r} degraded over {span}")
    return lines
