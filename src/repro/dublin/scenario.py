"""Scenario assembly: a complete, replayable synthetic Dublin.

Bundles the street network, SCATS topology, ground truth and the two
sensor simulators into one configurable object, and materialises the
merged SDE stream the paper's system consumes.  The default
configuration matches the January-2013 dataset's scale: 942 buses
emitting every 20–30 s and 966 SCATS intersections reporting every six
minutes, partitioned into four city regions.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Optional

from ..core.events import Event, FluentFact
from ..core.traffic import ScatsTopology
from .buses import BusFleetSimulator, BusLine, make_lines
from .ground_truth import TrafficGroundTruth
from .network import (
    REGIONS,
    StreetNetwork,
    generate_street_network,
    place_scats_topology,
)
from .scats import ScatsSensorSimulator


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs of a synthetic Dublin scenario.

    The defaults reproduce the paper's deployment scale; tests and
    benchmarks shrink them for speed.
    """

    seed: int = 0
    #: Street-network grid size.
    rows: int = 28
    cols: int = 40
    #: SCATS deployment size (966 sensors in the paper; here the count
    #: is intersections, each with 2-4 detectors).
    n_intersections: int = 350
    sensors_range: tuple[int, int] = (2, 4)
    #: Bus fleet.
    n_buses: int = 942
    n_lines: int = 40
    unreliable_fraction: float = 0.0
    unreliable_mode: str = "stuck_congested"
    #: Ground truth.
    n_incidents: int = 6
    incident_window: tuple[int, int] = (0, 24 * 3600)
    #: Sensor faults.
    scats_fault_rate: float = 0.0


@dataclass
class ScenarioData:
    """The materialised SDE stream of one scenario run."""

    events: list[Event]
    facts: list[FluentFact]
    start: int
    end: int

    @property
    def n_sdes(self) -> int:
        """Total SDE count (move + traffic events)."""
        return len(self.events)

    def sde_rate(self) -> float:
        """Mean SDEs per second over the run."""
        span = max(self.end - self.start, 1)
        return self.n_sdes / span

    def counts_by_type(self) -> dict[str, int]:
        """Number of SDEs per event type."""
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.type] = out.get(ev.type, 0) + 1
        return out


class DublinScenario:
    """A fully-wired synthetic Dublin deployment.

    Builds (deterministically from the config seed): the street
    network, the SCATS topology and its placement, the ground-truth
    traffic dynamics, and the two SDE simulators.  Use
    :meth:`generate` to materialise a stream for a time span and
    :meth:`split_by_region` to reproduce the paper's four-way
    distribution of event recognition.
    """

    def __init__(
        self,
        config: Optional[ScenarioConfig] = None,
        *,
        network: Optional[StreetNetwork] = None,
        ground_truth: Optional[TrafficGroundTruth] = None,
    ):
        """Build the deployment, optionally around injected substrate.

        ``network`` and ``ground_truth`` are the generator seam the
        scenario DSL (:mod:`repro.scenarios`) compiles through: a
        caller may hand in a street network from another topology
        family (radial, multi-centre) and/or a ground truth carrying
        incident storms, demand surges or weather windows, and gets
        back an object that runs unchanged through every pipeline —
        the SCATS placement, bus lines and simulators are wired
        exactly as for the default procedural Dublin.
        """
        self.config = config or ScenarioConfig()
        cfg = self.config
        self.network: StreetNetwork = network or generate_street_network(
            rows=cfg.rows, cols=cfg.cols, seed=cfg.seed
        )
        self.topology: ScatsTopology
        self.node_of: dict
        self.topology, self.node_of = place_scats_topology(
            self.network,
            n_intersections=cfg.n_intersections,
            sensors_range=cfg.sensors_range,
            seed=cfg.seed + 1,
        )
        self.ground_truth = ground_truth or TrafficGroundTruth(
            self.network,
            seed=cfg.seed + 2,
            n_random_incidents=cfg.n_incidents,
            incident_window=cfg.incident_window,
        )
        self.lines: list[BusLine] = make_lines(
            self.network, cfg.n_lines, seed=cfg.seed + 3
        )
        self.buses = BusFleetSimulator(
            self.network,
            self.ground_truth,
            self.lines,
            n_buses=cfg.n_buses,
            unreliable_fraction=cfg.unreliable_fraction,
            unreliable_mode=cfg.unreliable_mode,
            seed=cfg.seed + 4,
        )
        self.scats = ScatsSensorSimulator(
            self.topology,
            self.node_of,
            self.ground_truth,
            fault_rate=cfg.scats_fault_rate,
            seed=cfg.seed + 5,
        )

    # ------------------------------------------------------------------
    def generate(self, start: int, end: int) -> ScenarioData:
        """Materialise the merged SDE stream for ``[start, end)``."""
        events: list[Event] = []
        facts: list[FluentFact] = []
        for move, gps in self.buses.events(start, end):
            events.append(move)
            facts.append(gps)
        events.extend(self.scats.events(start, end))
        events.sort(key=lambda e: e.time)
        facts.sort(key=lambda f: f.time)
        return ScenarioData(events=events, facts=facts, start=start, end=end)

    def region_of_event(self, event: Event, facts_index: Mapping) -> str:
        """The city region an SDE belongs to.

        ``traffic`` SDEs are assigned by their intersection's location;
        ``move`` SDEs by the paired gps position (looked up in
        ``facts_index``: ``(bus, time) → gps value``).
        """
        if event.type == "traffic":
            lon, lat = self.topology.location(event["intersection"])
            return self.network.region_of(lon, lat)
        if event.type == "move":
            gps = facts_index.get((event["bus"], event.time))
            if gps is None:
                return "central"
            return self.network.region_of(gps["lon"], gps["lat"])
        return "central"

    def split_by_region(
        self, data: ScenarioData, *, groups: Optional[Mapping] = None
    ) -> dict[str, tuple[list[Event], list[FluentFact]]]:
        """Partition a stream into the four city regions.

        Reproduces the paper's distribution strategy: "each processor
        computed CEs concerning the SCATS sensors of one of the four
        areas of Dublin as well as CE concerning the buses that go
        through that area" (Section 7.1).

        ``groups`` optionally maps each region name onto a coarser
        partition key (``{"central": "east", "north": "east", ...}``):
        the returned dict is then keyed by group, with each group's
        streams merged in the original global time order.  The region
        assignment itself is unchanged — grouping only changes which
        engine a region's SDEs are delivered to, which is how the
        pipeline packs four regions onto fewer shards.
        """
        facts_index = {
            (fact.key[0], fact.time): fact.value for fact in data.facts
        }
        if groups is None:
            keys: list = list(REGIONS)
            key_of = {region: region for region in REGIONS}
        else:
            keys = list(dict.fromkeys(groups[r] for r in REGIONS))
            key_of = {region: groups[region] for region in REGIONS}
        split: dict[str, tuple[list[Event], list[FluentFact]]] = {
            key: ([], []) for key in keys
        }
        fact_by_bus_time = {
            (fact.key[0], fact.time): fact for fact in data.facts
        }
        for event in data.events:
            region = self.region_of_event(event, facts_index)
            target = split[key_of[region]]
            target[0].append(event)
            if event.type == "move":
                fact = fact_by_bus_time.get((event["bus"], event.time))
                if fact is not None:
                    target[1].append(fact)
        return split
