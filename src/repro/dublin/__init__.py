"""Synthetic Dublin data substrate.

Substitutes the paper's offline data gates (dublinked.ie bus + SCATS
feeds, OpenStreetMap extract) with deterministic simulators that
preserve the schemas, rates, noise characteristics and failure modes
the system components depend on.  See DESIGN.md §2 for the
substitution rationale.
"""

from .buses import (
    EMISSION_PERIOD_S,
    SCHEDULED_SPEED_KMH,
    BusFleetSimulator,
    BusLine,
    make_lines,
)
from .dataset import (
    BUS_CSV_COLUMNS,
    SCATS_CSV_COLUMNS,
    event_to_item,
    fact_to_item,
    item_to_event,
    item_to_fact,
    read_csv,
    read_jsonl,
    stream_items,
    write_csv,
    write_jsonl,
)
from .ground_truth import (
    CONGESTION_DENSITY,
    FREE_FLOW_SPEED_KMH,
    JAM_DENSITY_VEH_KM,
    Incident,
    Surge,
    TrafficGroundTruth,
    WeatherSlowdown,
    daily_profile,
    greenshields_flow,
    greenshields_speed,
)
from .network import (
    DUBLIN_BBOX,
    REGIONS,
    StreetNetwork,
    generate_street_network,
    place_scats_topology,
)
from .scats import SCATS_PERIOD_S, ScatsSensorSimulator
from .scenario import DublinScenario, ScenarioConfig, ScenarioData

__all__ = [
    "DUBLIN_BBOX",
    "REGIONS",
    "StreetNetwork",
    "generate_street_network",
    "place_scats_topology",
    "TrafficGroundTruth",
    "Incident",
    "Surge",
    "WeatherSlowdown",
    "daily_profile",
    "greenshields_speed",
    "greenshields_flow",
    "FREE_FLOW_SPEED_KMH",
    "JAM_DENSITY_VEH_KM",
    "CONGESTION_DENSITY",
    "ScatsSensorSimulator",
    "SCATS_PERIOD_S",
    "BusFleetSimulator",
    "BusLine",
    "make_lines",
    "EMISSION_PERIOD_S",
    "SCHEDULED_SPEED_KMH",
    "DublinScenario",
    "ScenarioConfig",
    "ScenarioData",
    "event_to_item",
    "item_to_event",
    "fact_to_item",
    "item_to_fact",
    "write_jsonl",
    "read_jsonl",
    "write_csv",
    "read_csv",
    "BUS_CSV_COLUMNS",
    "SCATS_CSV_COLUMNS",
    "stream_items",
]
