"""Dataset persistence and stream adaptation.

The Dublin streams are distributed as files (dublinked.ie); this module
provides the equivalent round-trip for the synthetic scenario — JSONL
serialisation of SDE streams — plus adapters between the event-calculus
records and the Streams middleware's data items.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from ..core.events import Event, FluentFact
from ..streams.items import ARRIVAL_KEY, TIME_KEY, DataItem
from .scenario import ScenarioData


def event_to_item(event: Event) -> DataItem:
    """Convert an SDE to a Streams data item."""
    item: DataItem = dict(event.payload)
    item["@type"] = event.type
    item[TIME_KEY] = event.time
    item[ARRIVAL_KEY] = event.arrival
    return item


def item_to_event(item: DataItem) -> Event:
    """Convert a Streams data item back to an SDE."""
    payload = {
        k: v for k, v in item.items() if not k.startswith("@")
    }
    return Event(
        item["@type"],
        item[TIME_KEY],
        payload,
        arrival=item.get(ARRIVAL_KEY, item[TIME_KEY]),
    )


def fact_to_item(fact: FluentFact) -> DataItem:
    """Convert a fluent fact (e.g. ``gps``) to a Streams data item."""
    item: DataItem = {
        "@type": f"fluent:{fact.name}",
        "@key": list(fact.key),
        TIME_KEY: fact.time,
        ARRIVAL_KEY: fact.arrival,
        "value": dict(fact.value) if isinstance(fact.value, dict) or hasattr(
            fact.value, "keys"
        ) else fact.value,
    }
    return item


def item_to_fact(item: DataItem) -> FluentFact:
    """Convert a Streams data item back to a fluent fact."""
    type_tag = item["@type"]
    if not type_tag.startswith("fluent:"):
        raise ValueError(f"not a fluent item: {type_tag!r}")
    return FluentFact(
        type_tag.removeprefix("fluent:"),
        tuple(item["@key"]),
        item["value"],
        item[TIME_KEY],
        arrival=item.get(ARRIVAL_KEY, item[TIME_KEY]),
    )


def write_jsonl(path: str | Path, data: ScenarioData) -> int:
    """Persist a scenario stream as JSON lines; returns lines written.

    Events and facts are interleaved chronologically, each line tagged
    with its record kind.
    """
    path = Path(path)
    records: list[tuple[int, DataItem]] = []
    for event in data.events:
        records.append((event.time, event_to_item(event)))
    for fact in data.facts:
        records.append((fact.time, fact_to_item(fact)))
    records.sort(key=lambda r: r[0])
    with path.open("w", encoding="utf-8") as handle:
        for _, item in records:
            handle.write(json.dumps(item, sort_keys=True) + "\n")
    return len(records)


def read_jsonl(path: str | Path) -> ScenarioData:
    """Load a scenario stream previously written by :func:`write_jsonl`."""
    path = Path(path)
    events: list[Event] = []
    facts: list[FluentFact] = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            item = json.loads(line)
            if item["@type"].startswith("fluent:"):
                facts.append(item_to_fact(item))
            else:
                events.append(item_to_event(item))
    start = min(
        [e.time for e in events] + [f.time for f in facts], default=0
    )
    end = max(
        [e.time for e in events] + [f.time for f in facts], default=0
    )
    return ScenarioData(events=events, facts=facts, start=start, end=end + 1)


def stream_items(data: ScenarioData) -> Iterator[DataItem]:
    """All records of a scenario as Streams data items, by arrival."""
    items = [event_to_item(e) for e in data.events]
    items.extend(fact_to_item(f) for f in data.facts)
    items.sort(key=lambda i: i.get(ARRIVAL_KEY, i[TIME_KEY]))
    return iter(items)


# ----------------------------------------------------------------------
# CSV round-trip (the dublinked.ie distribution format, simplified)
# ----------------------------------------------------------------------
#: Column layouts of the two CSV files, modelled on the dublinked.ie
#: distribution (bus probe CSV and SCATS CSV), simplified to the
#: attributes this system consumes.
BUS_CSV_COLUMNS = (
    "time", "bus", "line", "operator", "delay",
    "lon", "lat", "direction", "congestion", "arrival",
)
SCATS_CSV_COLUMNS = (
    "time", "intersection", "approach", "sensor",
    "density", "flow", "arrival",
)


def write_csv(directory: str | Path, data: ScenarioData) -> tuple[Path, Path]:
    """Persist a scenario as ``buses.csv`` + ``scats.csv``.

    Mirrors how the Dublin data is actually distributed: one CSV per
    source, bus rows joining the ``move`` event with its paired ``gps``
    fact.  Returns the two file paths.
    """
    import csv

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    bus_path = directory / "buses.csv"
    scats_path = directory / "scats.csv"

    gps = {(f.key[0], f.time): f.value for f in data.facts if f.name == "gps"}
    with bus_path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(BUS_CSV_COLUMNS)
        for event in data.events:
            if event.type != "move":
                continue
            value = gps.get((event["bus"], event.time))
            if value is None:
                continue
            writer.writerow([
                event.time, event["bus"], event["line"], event["operator"],
                event["delay"], value["lon"], value["lat"],
                value["direction"], value["congestion"], event.arrival,
            ])

    with scats_path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(SCATS_CSV_COLUMNS)
        for event in data.events:
            if event.type != "traffic":
                continue
            writer.writerow([
                event.time, event["intersection"], event["approach"],
                event["sensor"], event["density"], event["flow"],
                event.arrival,
            ])
    return bus_path, scats_path


def read_csv(directory: str | Path) -> ScenarioData:
    """Load a scenario persisted by :func:`write_csv`."""
    import csv

    directory = Path(directory)
    events: list[Event] = []
    facts: list[FluentFact] = []

    bus_path = directory / "buses.csv"
    if bus_path.exists():
        with bus_path.open(newline="", encoding="utf-8") as handle:
            for row in csv.DictReader(handle):
                t = int(row["time"])
                arrival = int(row["arrival"])
                events.append(Event(
                    "move", t,
                    {
                        "bus": row["bus"], "line": row["line"],
                        "operator": row["operator"],
                        "delay": float(row["delay"]),
                    },
                    arrival=arrival,
                ))
                facts.append(FluentFact(
                    "gps", (row["bus"],),
                    {
                        "lon": float(row["lon"]), "lat": float(row["lat"]),
                        "direction": int(row["direction"]),
                        "congestion": int(row["congestion"]),
                    },
                    t, arrival=arrival,
                ))

    scats_path = directory / "scats.csv"
    if scats_path.exists():
        with scats_path.open(newline="", encoding="utf-8") as handle:
            for row in csv.DictReader(handle):
                events.append(Event(
                    "traffic", int(row["time"]),
                    {
                        "intersection": row["intersection"],
                        "approach": row["approach"],
                        "sensor": row["sensor"],
                        "density": float(row["density"]),
                        "flow": float(row["flow"]),
                    },
                    arrival=int(row["arrival"]),
                ))

    events.sort(key=lambda e: e.time)
    facts.sort(key=lambda f: f.time)
    start = min(
        [e.time for e in events] + [f.time for f in facts], default=0
    )
    end = max(
        [e.time for e in events] + [f.time for f in facts], default=0
    )
    return ScenarioData(events=events, facts=facts, start=start, end=end + 1)
