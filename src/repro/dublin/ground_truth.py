"""Ground-truth city traffic dynamics (the data the sensors observe).

The real deployment observes an unknowable true traffic state; the
reproduction needs a *known* one so that CE recognition, crowdsourcing
and GP estimation can be validated.  The model follows the fundamental
diagram of traffic flow (which the paper's rule-set (2) thresholds are
based on) in its Greenshields form::

    v(k) = v_free · (1 − k / k_jam)         (speed-density relation)
    q(k) = k · v(k)                          (flow-density relation)

Per-junction density is composed of:

* a base level increasing towards the city centre;
* a daily profile with morning and evening rush-hour peaks;
* smooth per-junction pseudo-random variation (seeded sinusoids); and
* localised *incidents* that push density towards jam level around a
  junction for a bounded period — these create the congestions the CEP
  component must detect.

Everything is deterministic given the seed; no wall-clock randomness.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Optional

from .network import StreetNetwork

#: Greenshields parameters: free-flow speed and jam density.
FREE_FLOW_SPEED_KMH = 50.0
JAM_DENSITY_VEH_KM = 120.0

#: A junction counts as congested above this density (veh/km).  Chosen
#: on the congested branch of the fundamental diagram and consistent
#: with the default rule-set (2) thresholds.
CONGESTION_DENSITY = 60.0

SECONDS_PER_HOUR = 3600


def greenshields_speed(density: float) -> float:
    """Speed (km/h) at ``density`` (veh/km) under Greenshields."""
    density = min(max(density, 0.0), JAM_DENSITY_VEH_KM)
    return FREE_FLOW_SPEED_KMH * (1.0 - density / JAM_DENSITY_VEH_KM)


def greenshields_flow(density: float) -> float:
    """Flow (veh/h) at ``density`` (veh/km) under Greenshields."""
    return min(max(density, 0.0), JAM_DENSITY_VEH_KM) * greenshields_speed(
        density
    )


def daily_profile(t: int) -> float:
    """Demand multiplier over the day: rush peaks at ~08:30 and ~17:30.

    ``t`` is in seconds from midnight; the profile is 1.0 off-peak and
    rises towards ~2.2 at the peaks, with a night-time dip.
    """
    hours = (t / SECONDS_PER_HOUR) % 24.0
    morning = 1.2 * math.exp(-(((hours - 8.5) / 1.3) ** 2))
    evening = 1.1 * math.exp(-(((hours - 17.5) / 1.5) ** 2))
    night_dip = -0.55 * math.exp(-(((hours - 3.5) / 2.5) ** 2))
    return 1.0 + morning + evening + night_dip


@dataclass(frozen=True)
class Incident:
    """A localised disruption raising density around a junction."""

    node: object
    start: int
    duration: int
    #: Added density at the epicentre (veh/km); halved at neighbours.
    severity: float = 70.0

    def active(self, t: int) -> bool:
        """Whether the incident is in progress at ``t``."""
        return self.start <= t < self.start + self.duration


@dataclass
class TrafficGroundTruth:
    """Deterministic true traffic state over a street network.

    Parameters
    ----------
    network:
        The street graph.
    seed:
        Seed for the per-junction variation and incident placement.
    base_density:
        Off-peak density far from the centre (veh/km).
    centre_boost:
        Extra density at the exact centre, decaying outwards.
    incidents:
        Explicit incidents; when ``None``, ``n_random_incidents`` are
        placed pseudo-randomly inside ``incident_window``.
    """

    network: StreetNetwork
    seed: int = 0
    base_density: float = 14.0
    centre_boost: float = 22.0
    incidents: Optional[list[Incident]] = None
    n_random_incidents: int = 6
    incident_window: tuple[int, int] = (0, 24 * SECONDS_PER_HOUR)
    _phase: dict = field(default_factory=dict, repr=False)
    _neighbour_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        rng = random.Random(self.seed)
        # Spatially-smooth demand field: a few seeded plane waves over
        # lon/lat.  Traffic demand is spatially correlated (that is the
        # premise of the GP traffic model), so neighbouring junctions
        # get similar amplitudes, with only a small iid component.
        waves = [
            (
                rng.uniform(20.0, 60.0),  # spatial frequency (per degree)
                rng.uniform(0.0, 2.0 * math.pi),  # orientation
                rng.uniform(0.0, 2.0 * math.pi),  # phase
            )
            for _ in range(3)
        ]
        for node in self.network.graph.nodes:
            lon, lat = self.network.position(node)
            field = sum(
                math.sin(
                    freq * (lon * math.cos(theta) + lat * math.sin(theta))
                    + phase
                )
                for freq, theta, phase in waves
            ) / 3.0
            amplitude = 1.0 + 0.25 * field + rng.uniform(-0.05, 0.05)
            self._phase[node] = (rng.uniform(0.0, 2.0 * math.pi), amplitude)
        if self.incidents is None:
            self.incidents = self._random_incidents(rng)

    def _random_incidents(self, rng: random.Random) -> list[Incident]:
        nodes = list(self.network.graph.nodes)
        lo, hi = self.incident_window
        span = max(hi - lo, 1)
        out = []
        for _ in range(self.n_random_incidents):
            out.append(
                Incident(
                    node=rng.choice(nodes),
                    start=lo + rng.randrange(span),
                    duration=rng.randrange(20 * 60, 90 * 60),
                    severity=rng.uniform(55.0, 90.0),
                )
            )
        return out

    # ------------------------------------------------------------------
    def _centre_factor(self, node) -> float:
        lon, lat = self.network.position(node)
        c_lon, c_lat = self.network.centre
        lon_min, lat_min, lon_max, lat_max = self.network.bbox
        # Normalised distance from the centre in [0, ~1].
        d = math.hypot(
            (lon - c_lon) / (lon_max - lon_min),
            (lat - c_lat) / (lat_max - lat_min),
        ) * 2.0
        return math.exp(-2.5 * d * d)

    def _incident_density(self, node, t: int) -> float:
        extra = 0.0
        for incident in self.incidents:
            if not incident.active(t):
                continue
            if incident.node == node:
                extra += incident.severity
            else:
                if incident.node not in self._neighbour_cache:
                    self._neighbour_cache[incident.node] = set(
                        self.network.graph.neighbors(incident.node)
                    )
                if node in self._neighbour_cache[incident.node]:
                    extra += incident.severity / 2.0
        return extra

    def density(self, node, t: int) -> float:
        """True density (veh/km) at a junction and time."""
        phase, amplitude = self._phase[node]
        base = self.base_density + self.centre_boost * self._centre_factor(
            node
        )
        demand = base * daily_profile(t) * amplitude
        wiggle = 1.5 * math.sin(2.0 * math.pi * t / 1800.0 + phase)
        density = demand + wiggle + self._incident_density(node, t)
        return min(max(density, 0.0), JAM_DENSITY_VEH_KM)

    def flow(self, node, t: int) -> float:
        """True flow (veh/h) at a junction and time (Greenshields)."""
        return greenshields_flow(self.density(node, t))

    def speed(self, node, t: int) -> float:
        """True speed (km/h) at a junction and time."""
        return greenshields_speed(self.density(node, t))

    def is_congested(self, node, t: int) -> bool:
        """Whether a junction is truly congested at ``t``."""
        return self.density(node, t) >= CONGESTION_DENSITY

    def congestion_label(self, node, t: int) -> str:
        """Ground-truth crowd label at a junction (for simulated
        participants): ``congestion`` or ``free_flow``."""
        return "congestion" if self.is_congested(node, t) else "free_flow"

    def congested_nodes(self, t: int) -> list:
        """All congested junctions at ``t``."""
        return [
            node
            for node in self.network.graph.nodes
            if self.is_congested(node, t)
        ]
