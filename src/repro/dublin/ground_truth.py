"""Ground-truth city traffic dynamics (the data the sensors observe).

The real deployment observes an unknowable true traffic state; the
reproduction needs a *known* one so that CE recognition, crowdsourcing
and GP estimation can be validated.  The model follows the fundamental
diagram of traffic flow (which the paper's rule-set (2) thresholds are
based on) in its Greenshields form::

    v(k) = v_free · (1 − k / k_jam)         (speed-density relation)
    q(k) = k · v(k)                          (flow-density relation)

Per-junction density is composed of:

* a base level increasing towards the city centre;
* a daily profile with morning and evening rush-hour peaks;
* smooth per-junction pseudo-random variation (seeded sinusoids); and
* localised *incidents* that push density towards jam level around a
  junction for a bounded period — these create the congestions the CEP
  component must detect.

Everything is deterministic given the seed; no wall-clock randomness.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Optional

from .network import StreetNetwork

#: Greenshields parameters: free-flow speed and jam density.
FREE_FLOW_SPEED_KMH = 50.0
JAM_DENSITY_VEH_KM = 120.0

#: A junction counts as congested above this density (veh/km).  Chosen
#: on the congested branch of the fundamental diagram and consistent
#: with the default rule-set (2) thresholds.
CONGESTION_DENSITY = 60.0

SECONDS_PER_HOUR = 3600


def greenshields_speed(density: float) -> float:
    """Speed (km/h) at ``density`` (veh/km) under Greenshields."""
    density = min(max(density, 0.0), JAM_DENSITY_VEH_KM)
    return FREE_FLOW_SPEED_KMH * (1.0 - density / JAM_DENSITY_VEH_KM)


def greenshields_flow(density: float) -> float:
    """Flow (veh/h) at ``density`` (veh/km) under Greenshields."""
    return min(max(density, 0.0), JAM_DENSITY_VEH_KM) * greenshields_speed(
        density
    )


def daily_profile(t: int) -> float:
    """Demand multiplier over the day: rush peaks at ~08:30 and ~17:30.

    ``t`` is in seconds from midnight; the profile is 1.0 off-peak and
    rises towards ~2.2 at the peaks, with a night-time dip.
    """
    hours = (t / SECONDS_PER_HOUR) % 24.0
    morning = 1.2 * math.exp(-(((hours - 8.5) / 1.3) ** 2))
    evening = 1.1 * math.exp(-(((hours - 17.5) / 1.5) ** 2))
    night_dip = -0.55 * math.exp(-(((hours - 3.5) / 2.5) ** 2))
    return 1.0 + morning + evening + night_dip


@dataclass(frozen=True)
class Incident:
    """A localised disruption raising density around a junction."""

    node: object
    start: int
    duration: int
    #: Added density at the epicentre (veh/km); halved at neighbours.
    severity: float = 70.0

    def active(self, t: int) -> bool:
        """Whether the incident is in progress at ``t``."""
        return self.start <= t < self.start + self.duration


@dataclass(frozen=True)
class Surge:
    """A crowd-event demand surge (stadium, concert, parade).

    Unlike an :class:`Incident` — a point disruption felt only at the
    epicentre and its direct neighbours — a surge floods a whole
    neighbourhood: added density decays linearly with graph-hop
    distance from the venue out to ``radius_hops``, and ramps up and
    down over the first/last quarter of the event window (crowds
    arrive and disperse, they do not teleport).
    """

    node: object
    start: int
    duration: int
    #: Added density at the venue itself (veh/km) at full ramp.
    magnitude: float = 60.0
    #: Graph-hop radius of the affected neighbourhood.
    radius_hops: int = 2

    def ramp(self, t: int) -> float:
        """Intensity in [0, 1] at ``t`` (trapezoidal ramp)."""
        if not self.start <= t < self.start + self.duration:
            return 0.0
        edge = max(self.duration // 4, 1)
        into = t - self.start
        left = self.start + self.duration - t
        return min(1.0, into / edge, left / edge)


@dataclass(frozen=True)
class WeatherSlowdown:
    """A city-wide weather window (rain, fog, ice) thickening traffic.

    Modelled as a multiplicative density factor: the same demand
    occupies the road for longer, so measured density rises everywhere
    and the Greenshields speed drops with it — buses slow down, delays
    grow, and marginal junctions tip over the congestion threshold.
    """

    start: int
    end: int
    #: Density multiplier while active (> 1 slows the city down).
    density_factor: float = 1.4

    def factor(self, t: int) -> float:
        """The density multiplier at ``t`` (1.0 outside the window)."""
        return self.density_factor if self.start <= t < self.end else 1.0


@dataclass
class TrafficGroundTruth:
    """Deterministic true traffic state over a street network.

    Parameters
    ----------
    network:
        The street graph.
    seed:
        Seed for the per-junction variation and incident placement.
    base_density:
        Off-peak density far from the centre (veh/km).
    centre_boost:
        Extra density at the exact centre, decaying outwards.
    incidents:
        Explicit incidents; when ``None``, ``n_random_incidents`` are
        placed pseudo-randomly inside ``incident_window``.
    surges:
        Crowd-event demand surges (:class:`Surge`); empty by default.
    weather:
        City-wide :class:`WeatherSlowdown` windows; empty by default.
    """

    network: StreetNetwork
    seed: int = 0
    base_density: float = 14.0
    centre_boost: float = 22.0
    incidents: Optional[list[Incident]] = None
    n_random_incidents: int = 6
    incident_window: tuple[int, int] = (0, 24 * SECONDS_PER_HOUR)
    surges: tuple[Surge, ...] = ()
    weather: tuple[WeatherSlowdown, ...] = ()
    _phase: dict = field(default_factory=dict, repr=False)
    _neighbour_cache: dict = field(default_factory=dict, repr=False)
    _hop_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        rng = random.Random(self.seed)
        # Spatially-smooth demand field: a few seeded plane waves over
        # lon/lat.  Traffic demand is spatially correlated (that is the
        # premise of the GP traffic model), so neighbouring junctions
        # get similar amplitudes, with only a small iid component.
        waves = [
            (
                rng.uniform(20.0, 60.0),  # spatial frequency (per degree)
                rng.uniform(0.0, 2.0 * math.pi),  # orientation
                rng.uniform(0.0, 2.0 * math.pi),  # phase
            )
            for _ in range(3)
        ]
        for node in self.network.graph.nodes:
            lon, lat = self.network.position(node)
            field = sum(
                math.sin(
                    freq * (lon * math.cos(theta) + lat * math.sin(theta))
                    + phase
                )
                for freq, theta, phase in waves
            ) / 3.0
            amplitude = 1.0 + 0.25 * field + rng.uniform(-0.05, 0.05)
            self._phase[node] = (rng.uniform(0.0, 2.0 * math.pi), amplitude)
        if self.incidents is None:
            self.incidents = self._random_incidents(rng)

    def _random_incidents(self, rng: random.Random) -> list[Incident]:
        nodes = list(self.network.graph.nodes)
        lo, hi = self.incident_window
        span = max(hi - lo, 1)
        out = []
        for _ in range(self.n_random_incidents):
            out.append(
                Incident(
                    node=rng.choice(nodes),
                    start=lo + rng.randrange(span),
                    duration=rng.randrange(20 * 60, 90 * 60),
                    severity=rng.uniform(55.0, 90.0),
                )
            )
        return out

    # ------------------------------------------------------------------
    def _centre_factor(self, node) -> float:
        lon, lat = self.network.position(node)
        c_lon, c_lat = self.network.centre
        lon_min, lat_min, lon_max, lat_max = self.network.bbox
        # Normalised distance from the centre in [0, ~1].
        d = math.hypot(
            (lon - c_lon) / (lon_max - lon_min),
            (lat - c_lat) / (lat_max - lat_min),
        ) * 2.0
        return math.exp(-2.5 * d * d)

    def _incident_density(self, node, t: int) -> float:
        extra = 0.0
        for incident in self.incidents:
            if not incident.active(t):
                continue
            if incident.node == node:
                extra += incident.severity
            else:
                if incident.node not in self._neighbour_cache:
                    self._neighbour_cache[incident.node] = set(
                        self.network.graph.neighbors(incident.node)
                    )
                if node in self._neighbour_cache[incident.node]:
                    extra += incident.severity / 2.0
        return extra

    def _hops_from(self, origin, radius: int) -> dict:
        """Graph-hop distances from ``origin`` out to ``radius``
        (BFS, cached per (origin, radius))."""
        key = (origin, radius)
        if key not in self._hop_cache:
            hops = {origin: 0}
            frontier = [origin]
            for depth in range(1, radius + 1):
                nxt = []
                for node in frontier:
                    for neighbour in self.network.graph.neighbors(node):
                        if neighbour not in hops:
                            hops[neighbour] = depth
                            nxt.append(neighbour)
                frontier = nxt
            self._hop_cache[key] = hops
        return self._hop_cache[key]

    def _surge_density(self, node, t: int) -> float:
        extra = 0.0
        for surge in self.surges:
            ramp = surge.ramp(t)
            if ramp <= 0.0:
                continue
            hops = self._hops_from(surge.node, surge.radius_hops)
            hop = hops.get(node)
            if hop is None:
                continue
            decay = 1.0 - hop / (surge.radius_hops + 1)
            extra += surge.magnitude * ramp * decay
        return extra

    def _weather_factor(self, t: int) -> float:
        factor = 1.0
        for window in self.weather:
            factor *= window.factor(t)
        return factor

    def density(self, node, t: int) -> float:
        """True density (veh/km) at a junction and time."""
        phase, amplitude = self._phase[node]
        base = self.base_density + self.centre_boost * self._centre_factor(
            node
        )
        demand = base * daily_profile(t) * amplitude
        wiggle = 1.5 * math.sin(2.0 * math.pi * t / 1800.0 + phase)
        density = demand + wiggle + self._incident_density(node, t)
        density += self._surge_density(node, t)
        density *= self._weather_factor(t)
        return min(max(density, 0.0), JAM_DENSITY_VEH_KM)

    def flow(self, node, t: int) -> float:
        """True flow (veh/h) at a junction and time (Greenshields)."""
        return greenshields_flow(self.density(node, t))

    def speed(self, node, t: int) -> float:
        """True speed (km/h) at a junction and time."""
        return greenshields_speed(self.density(node, t))

    def is_congested(self, node, t: int) -> bool:
        """Whether a junction is truly congested at ``t``."""
        return self.density(node, t) >= CONGESTION_DENSITY

    def congestion_label(self, node, t: int) -> str:
        """Ground-truth crowd label at a junction (for simulated
        participants): ``congestion`` or ``free_flow``."""
        return "congestion" if self.is_congested(node, t) else "free_flow"

    def congested_nodes(self, t: int) -> list:
        """All congested junctions at ``t``."""
        return [
            node
            for node in self.network.graph.nodes
            if self.is_congested(node, t)
        ]
