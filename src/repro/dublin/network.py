"""Procedural street network — the OpenStreetMap substitute.

The paper builds its traffic graph from an OpenStreetMap extract of
Dublin: "the network is restricted to a bounding window of the size of
the city ... every street is split at every junction in order to
retrieve street segments.  Thus, we obtain a graph that represents the
street network" (Section 7.3, Figures 7–8).  Offline we generate a
comparable planar road graph procedurally: a jittered grid core (the
inner-city block structure), radial arteries towards the centre and an
orbital ring, inside Dublin's bounding box.

SCATS intersections are then placed on a subset of junctions (Figure 8
shows the 966 SCATS locations as dots on that network), and the city is
partitioned into the four regions used to distribute event recognition:
"in Dublin SCATS sensors are placed into the intersections of four
geographical areas: central city, north city, west city and south
city" (Section 7.1).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import networkx as nx

from ..core.geo import distance_m
from ..core.traffic import Intersection, ScatsTopology

#: Dublin's approximate bounding box (lon_min, lat_min, lon_max, lat_max).
DUBLIN_BBOX = (-6.38, 53.28, -6.14, 53.42)

REGIONS = ("central", "north", "west", "south")


@dataclass
class StreetNetwork:
    """A city street graph with junction coordinates and regions.

    Attributes
    ----------
    graph:
        Undirected :class:`networkx.Graph`; nodes are junction ids and
        carry ``lon``/``lat`` attributes, edges carry ``length_m``.
    bbox:
        The bounding window (lon_min, lat_min, lon_max, lat_max).
    """

    graph: nx.Graph
    bbox: tuple[float, float, float, float] = DUBLIN_BBOX
    _positions: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._positions = {
            node: (data["lon"], data["lat"])
            for node, data in self.graph.nodes(data=True)
        }

    # ------------------------------------------------------------------
    def position(self, node) -> tuple[float, float]:
        """``(lon, lat)`` of a junction."""
        return self._positions[node]

    def positions(self) -> dict:
        """All junction positions (node → (lon, lat))."""
        return dict(self._positions)

    @property
    def centre(self) -> tuple[float, float]:
        """Centre of the bounding box."""
        lon_min, lat_min, lon_max, lat_max = self.bbox
        return ((lon_min + lon_max) / 2.0, (lat_min + lat_max) / 2.0)

    def n_junctions(self) -> int:
        """Number of junctions."""
        return self.graph.number_of_nodes()

    def region_of(self, lon: float, lat: float) -> str:
        """The city region of a point: central within the inner window,
        otherwise north / west / south by bearing from the centre."""
        c_lon, c_lat = self.centre
        lon_min, lat_min, lon_max, lat_max = self.bbox
        if (
            abs(lon - c_lon) <= (lon_max - lon_min) / 6.0
            and abs(lat - c_lat) <= (lat_max - lat_min) / 6.0
        ):
            return "central"
        if lat >= c_lat and abs(lat - c_lat) >= abs(lon - c_lon) * 0.5:
            return "north"
        if lon <= c_lon:
            return "west"
        return "south"

    def region_of_node(self, node) -> str:
        """Region of a junction."""
        lon, lat = self.position(node)
        return self.region_of(lon, lat)

    def nearest_node(self, lon: float, lat: float):
        """The junction closest to a point (linear scan; used to map
        sensor locations onto the graph, as in Section 7.3)."""
        return min(
            self._positions,
            key=lambda n: distance_m(
                lon, lat, self._positions[n][0], self._positions[n][1]
            ),
        )

    def shortest_path(self, origin, destination) -> list:
        """Length-weighted shortest path between two junctions."""
        return nx.shortest_path(
            self.graph, origin, destination, weight="length_m"
        )


def _edge_length(positions, a, b) -> float:
    (lon_a, lat_a), (lon_b, lat_b) = positions[a], positions[b]
    return distance_m(lon_a, lat_a, lon_b, lat_b)


def generate_street_network(
    *,
    rows: int = 28,
    cols: int = 40,
    seed: int = 0,
    bbox: tuple[float, float, float, float] = DUBLIN_BBOX,
    removal_rate: float = 0.12,
    jitter: float = 0.25,
    n_radials: int = 8,
) -> StreetNetwork:
    """Generate a Dublin-like street network.

    Construction: a ``rows × cols`` grid of junctions with jittered
    positions inside ``bbox``; a fraction of grid edges is removed
    (dead ends, rivers, parks); diagonal radial arteries connect outer
    junctions towards the centre; the largest connected component is
    kept so every junction is reachable.

    Parameters
    ----------
    rows, cols:
        Grid dimensions; the default yields ~1100 junctions, enough to
        host the 966-intersection SCATS deployment.
    seed:
        RNG seed; identical seeds generate identical cities.
    removal_rate:
        Fraction of grid edges deleted.
    jitter:
        Positional jitter as a fraction of the cell size.
    n_radials:
        Number of radial arteries.
    """
    if rows < 3 or cols < 3:
        raise ValueError("network needs at least a 3x3 grid")
    if not 0.0 <= removal_rate < 0.5:
        raise ValueError("removal rate must be in [0, 0.5)")
    rng = random.Random(seed)
    lon_min, lat_min, lon_max, lat_max = bbox
    d_lon = (lon_max - lon_min) / (cols - 1)
    d_lat = (lat_max - lat_min) / (rows - 1)

    graph = nx.Graph()
    positions: dict = {}
    for r in range(rows):
        for c in range(cols):
            node = f"J{r:03d}_{c:03d}"
            lon = lon_min + c * d_lon + rng.uniform(-jitter, jitter) * d_lon
            lat = lat_min + r * d_lat + rng.uniform(-jitter, jitter) * d_lat
            positions[node] = (lon, lat)
            graph.add_node(node, lon=lon, lat=lat)

    # Grid edges with random removals.
    def _maybe_edge(a, b):
        if rng.random() >= removal_rate:
            graph.add_edge(a, b, length_m=_edge_length(positions, a, b))

    for r in range(rows):
        for c in range(cols):
            node = f"J{r:03d}_{c:03d}"
            if c + 1 < cols:
                _maybe_edge(node, f"J{r:03d}_{c + 1:03d}")
            if r + 1 < rows:
                _maybe_edge(node, f"J{r + 1:03d}_{c:03d}")

    # Radial arteries: connect rim junctions towards the centre by
    # chaining grid diagonal steps (keeps the graph planar-ish).
    centre_r, centre_c = rows // 2, cols // 2
    for k in range(n_radials):
        angle = 2.0 * math.pi * k / n_radials
        r, c = centre_r, centre_c
        while 0 < r < rows - 1 and 0 < c < cols - 1:
            nr = r + (1 if math.sin(angle) > 0.3 else -1 if math.sin(angle) < -0.3 else 0)
            nc = c + (1 if math.cos(angle) > 0.3 else -1 if math.cos(angle) < -0.3 else 0)
            if (nr, nc) == (r, c):
                break
            a, b = f"J{r:03d}_{c:03d}", f"J{nr:03d}_{nc:03d}"
            graph.add_edge(a, b, length_m=_edge_length(positions, a, b))
            r, c = nr, nc

    # Keep the largest connected component.
    largest = max(nx.connected_components(graph), key=len)
    graph = graph.subgraph(largest).copy()
    return StreetNetwork(graph=graph, bbox=bbox)


def place_scats_topology(
    network: StreetNetwork,
    *,
    n_intersections: int = 966,
    sensors_range: tuple[int, int] = (2, 4),
    close_radius_m: float = 150.0,
    seed: int = 0,
) -> tuple[ScatsTopology, dict]:
    """Place SCATS intersections on junctions of the network.

    Junctions are sampled with a bias towards the city centre (the real
    deployment is densest in central Dublin).  Each intersection gets
    between ``sensors_range[0]`` and ``sensors_range[1]`` vehicle
    detectors, one per approach.

    Returns the :class:`~repro.core.traffic.ScatsTopology` and the
    mapping ``intersection_id → junction node``.
    """
    lo, hi = sensors_range
    if lo < 1 or hi < lo:
        raise ValueError("sensors_range must satisfy 1 <= lo <= hi")
    rng = random.Random(seed)
    nodes = list(network.graph.nodes)
    n_intersections = min(n_intersections, len(nodes))

    c_lon, c_lat = network.centre

    def _weight(node) -> float:
        lon, lat = network.position(node)
        # Inverse-distance bias towards the centre.
        return 1.0 / (1.0 + 25.0 * math.hypot(lon - c_lon, lat - c_lat))

    weights = [_weight(n) for n in nodes]
    chosen: list = []
    available = list(zip(nodes, weights))
    for _ in range(n_intersections):
        total = sum(w for _, w in available)
        pick = rng.random() * total
        acc = 0.0
        for i, (node, w) in enumerate(available):
            acc += w
            if acc >= pick:
                chosen.append(node)
                available.pop(i)
                break

    approaches = ("N", "E", "S", "W")
    intersections = []
    node_of: dict = {}
    for i, node in enumerate(sorted(chosen)):
        int_id = f"SCATS{i:04d}"
        lon, lat = network.position(node)
        n_sensors = rng.randint(lo, hi)
        sensors = tuple(
            (int_id, approaches[j % 4], f"S{j}") for j in range(n_sensors)
        )
        intersections.append(Intersection(int_id, lon, lat, sensors))
        node_of[int_id] = node
    topology = ScatsTopology(intersections, close_radius_m=close_radius_m)
    return topology, node_of
