"""SCATS vehicle-detector simulator.

Reproduces the fixed-sensor side of the Dublin input: "static sensors
mounted on various junctions — SCATS sensors — transmit every 6 minutes
information about traffic flow and density" as the instantaneous SDE
``traffic(Int, A, S, D, F)`` (paper, Section 4.3; the January-2013
dataset has 966 sensors).

Mediator behaviour is part of the model: the paper stresses that raw
readings pass through mediators that "apply filtering and aggregation
mechanisms, most of which are unknown", adding uncertainty.  The
simulator therefore (a) aggregates the true state over the reporting
period, (b) adds measurement noise, (c) delays arrival by a batching
latency, and (d) optionally makes some sensors *faulty* (stuck at a
free-flow reading), which produces genuine source disagreements.
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from typing import Optional

from ..core.events import Event
from ..core.traffic import ScatsTopology
from .ground_truth import TrafficGroundTruth, greenshields_flow

#: SCATS reporting period in seconds ("every six minutes").
SCATS_PERIOD_S = 360


@dataclass
class ScatsSensorSimulator:
    """Generates the ``traffic`` SDE stream of a SCATS deployment.

    Parameters
    ----------
    topology:
        The SCATS intersections (ids, positions, sensors).
    node_of:
        Mapping intersection id → street-network junction (from
        :func:`repro.dublin.network.place_scats_topology`).
    ground_truth:
        The true traffic state being measured.
    period:
        Reporting period in seconds (six minutes in Dublin).
    density_noise, flow_noise:
        Measurement noise standard deviations.
    fault_rate:
        Fraction of sensors stuck at a free-flow reading.
    max_arrival_delay:
        Mediator batching: arrival is delayed uniformly up to this.
    seed:
        Seed for noise, per-sensor offsets and fault selection.
    """

    topology: ScatsTopology
    node_of: Mapping[str, object]
    ground_truth: TrafficGroundTruth
    period: int = SCATS_PERIOD_S
    density_noise: float = 3.0
    flow_noise: float = 40.0
    fault_rate: float = 0.0
    max_arrival_delay: int = 30
    seed: int = 0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault rate must be within [0, 1]")
        rng = random.Random(self.seed)
        self._sensor_bias: dict[tuple, float] = {}
        self._sensor_offset: dict[tuple, int] = {}
        self._faulty: set[tuple] = set()
        for int_id in self.topology.ids():
            for sensor_key in self.topology.sensors_of(int_id):
                # Per-lane bias: approaches see slightly different load.
                self._sensor_bias[sensor_key] = rng.uniform(0.85, 1.15)
                # Spread reports across the period so the stream is
                # smooth rather than bursty.
                self._sensor_offset[sensor_key] = rng.randrange(self.period)
                if rng.random() < self.fault_rate:
                    self._faulty.add(sensor_key)

    @property
    def n_sensors(self) -> int:
        """Total number of vehicle detectors."""
        return len(self._sensor_bias)

    def faulty_sensors(self) -> set[tuple]:
        """The stuck sensors (ground truth for evaluations)."""
        return set(self._faulty)

    def _reading(
        self, sensor_key: tuple, node, t: int, rng: random.Random
    ) -> tuple[float, float]:
        """One (density, flow) measurement after mediator treatment."""
        if sensor_key in self._faulty:
            # Stuck at a plausible free-flow report.
            return 12.0, greenshields_flow(12.0)
        bias = self._sensor_bias[sensor_key]
        # Mediator aggregation: mean true density over the period.
        samples = [
            self.ground_truth.density(node, max(t - dt, 0))
            for dt in (0, self.period // 2, self.period - 1)
        ]
        density_true = bias * sum(samples) / len(samples)
        density = max(0.0, density_true + rng.gauss(0.0, self.density_noise))
        flow = max(
            0.0,
            greenshields_flow(density_true) + rng.gauss(0.0, self.flow_noise),
        )
        return density, flow

    def events(
        self, start: int, end: int, *, rng: Optional[random.Random] = None
    ) -> Iterator[Event]:
        """Yield the ``traffic`` SDEs with occurrence in ``[start, end)``.

        Events are generated sensor by sensor; callers needing global
        time order should sort (the RTEC engine sorts internally).

        ``rng`` is the explicit randomness source for measurement
        noise and mediator batching delays; when omitted a fresh
        seeded stream derived from the simulator seed is used, so the
        call is a pure function of ``(start, end, seed)``.  Global
        ``random`` state is never read.
        """
        if end <= start:
            return
        if rng is None:
            rng = random.Random(self.seed + 1)
        for int_id in self.topology.ids():
            node = self.node_of[int_id]
            for sensor_key in self.topology.sensors_of(int_id):
                offset = self._sensor_offset[sensor_key]
                first = start + ((offset - start) % self.period)
                for t in range(first, end, self.period):
                    density, flow = self._reading(sensor_key, node, t, rng)
                    arrival = t + rng.randrange(self.max_arrival_delay + 1)
                    yield Event(
                        "traffic",
                        t,
                        {
                            "intersection": sensor_key[0],
                            "approach": sensor_key[1],
                            "sensor": sensor_key[2],
                            "density": density,
                            "flow": flow,
                        },
                        arrival=arrival,
                    )
