"""Bus fleet simulator — the mobile-sensor side of the Dublin input.

Reproduces the bus probe stream of formalisation (1): each operating
bus emits, every 20–30 seconds, a ``move(Bus, Line, Operator, Delay)``
SDE paired with a ``gps(Bus, Lon, Lat, Direction, Congestion)`` fluent
fact at the same time-point (the January-2013 dataset has 942 buses).

Buses shuttle along their line's route (a shortest path between two
terminals), move at the ground truth's local speed — so they slow down
inside congestion and their schedule ``Delay`` grows, producing the
``delayIncrease`` CEs — and report the congestion bit from the true
state at their position.

Data veracity is modelled explicitly: a configurable fraction of buses
is *unreliable* and reports a stuck or inverted congestion bit, which
is exactly the behaviour the self-adaptive recognition (rule-sets
(4)/(5)) must detect and discard.
"""

from __future__ import annotations

import heapq
import random
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from typing import Optional

from ..core.events import Event, FluentFact
from .ground_truth import FREE_FLOW_SPEED_KMH, TrafficGroundTruth
from .network import StreetNetwork

#: Bus emission period bounds in seconds ("every 20-30 sec").
EMISSION_PERIOD_S = (20, 30)

#: Nominal scheduled speed used for the Delay attribute (km/h).
SCHEDULED_SPEED_KMH = 0.8 * FREE_FLOW_SPEED_KMH


@dataclass(frozen=True)
class BusLine:
    """A bus line: an id, an operator, and a route over junctions."""

    line_id: str
    operator: str
    route: tuple

    def __post_init__(self) -> None:
        if len(self.route) < 2:
            raise ValueError("a route needs at least two junctions")


def make_lines(
    network: StreetNetwork,
    n_lines: int,
    *,
    seed: int = 0,
    min_route_len: int = 8,
) -> list[BusLine]:
    """Create ``n_lines`` bus lines as shortest paths between distant
    junctions (retrying until the route is long enough)."""
    if n_lines <= 0:
        raise ValueError("need at least one line")
    rng = random.Random(seed)
    nodes = list(network.graph.nodes)
    operators = ("DublinBus", "GoAhead", "BusEireann")
    lines: list[BusLine] = []
    attempts = 0
    while len(lines) < n_lines:
        attempts += 1
        if attempts > n_lines * 200:
            raise RuntimeError(
                "could not find enough long routes; lower min_route_len"
            )
        origin, destination = rng.sample(nodes, 2)
        route = network.shortest_path(origin, destination)
        if len(route) < min_route_len:
            continue
        lines.append(
            BusLine(
                line_id=f"L{len(lines):03d}",
                operator=operators[len(lines) % len(operators)],
                route=tuple(route),
            )
        )
    return lines


@dataclass
class _BusState:
    """Kinematic state of one simulated bus."""

    bus_id: str
    line: BusLine
    direction: int  # 0 = forwards along the route, 1 = backwards
    position_m: float  # distance along the (directed) route
    next_emission: int
    unreliable_mode: str  # "ok", "stuck_congested", "inverted"
    distance_travelled_m: float = 0.0
    started_at: int = 0


class BusFleetSimulator:
    """Generates the ``move``/``gps`` stream of a bus fleet.

    Parameters
    ----------
    network, ground_truth:
        The city and its true traffic state.
    lines:
        Bus lines; buses are assigned round-robin.
    n_buses:
        Fleet size (942 in the Dublin dataset).
    unreliable_fraction:
        Fraction of buses with a corrupted congestion bit.
    unreliable_mode:
        ``"stuck_congested"`` (always reports congestion) or
        ``"inverted"`` (reports the opposite of the truth).
    emission_period:
        Bounds of the per-emission interval in seconds.
    max_arrival_delay:
        Most emissions arrive within a few seconds, but a
        ``late_fraction`` of them is delayed up to this bound —
        exercising the paper's window-larger-than-step design.
    seed:
        Master seed; the whole stream is deterministic.
    """

    def __init__(
        self,
        network: StreetNetwork,
        ground_truth: TrafficGroundTruth,
        lines: Sequence[BusLine],
        *,
        n_buses: int = 942,
        unreliable_fraction: float = 0.0,
        unreliable_mode: str = "stuck_congested",
        emission_period: tuple[int, int] = EMISSION_PERIOD_S,
        max_arrival_delay: int = 120,
        late_fraction: float = 0.05,
        seed: int = 0,
    ):
        if not lines:
            raise ValueError("need at least one line")
        if n_buses <= 0:
            raise ValueError("need at least one bus")
        if not 0.0 <= unreliable_fraction <= 1.0:
            raise ValueError("unreliable fraction must be within [0, 1]")
        if unreliable_mode not in ("stuck_congested", "inverted"):
            raise ValueError(f"unknown unreliable mode: {unreliable_mode!r}")
        lo, hi = emission_period
        if lo <= 0 or hi < lo:
            raise ValueError("emission period must satisfy 0 < lo <= hi")
        self.network = network
        self.ground_truth = ground_truth
        self.lines = list(lines)
        self.emission_period = emission_period
        self.max_arrival_delay = max_arrival_delay
        self.late_fraction = late_fraction
        self.seed = seed

        self._route_geometry_cache: dict[str, tuple[list, list[float]]] = {}
        rng = random.Random(seed)
        n_unreliable = round(n_buses * unreliable_fraction)
        unreliable_ids = set(rng.sample(range(n_buses), n_unreliable))
        self._buses: list[_BusState] = []
        for i in range(n_buses):
            line = self.lines[i % len(self.lines)]
            self._buses.append(
                _BusState(
                    bus_id=f"B{i:04d}",
                    line=line,
                    direction=rng.randint(0, 1),
                    position_m=rng.uniform(
                        0.0, self._route_length(line)
                    ),
                    next_emission=rng.randint(0, hi),
                    unreliable_mode=(
                        unreliable_mode if i in unreliable_ids else "ok"
                    ),
                )
            )
        #: Frozen initial kinematics, restored at the top of every
        #: :meth:`events` call so the stream is a pure function of
        #: ``(start, end, seed)`` — repeated generation from one fleet
        #: object is byte-identical (checkpoint/resume and the scenario
        #: round-trip tests rely on this).
        self._initial_states: list[tuple[int, float, int]] = [
            (bus.direction, bus.position_m, bus.next_emission)
            for bus in self._buses
        ]

    # ------------------------------------------------------------------
    def unreliable_buses(self) -> set[str]:
        """Ids of the corrupted buses (evaluation ground truth)."""
        return {
            b.bus_id for b in self._buses if b.unreliable_mode != "ok"
        }

    def _route_geometry(self, line: BusLine) -> tuple[list, list[float]]:
        """Route nodes and cumulative distances (cached per line)."""
        if line.line_id not in self._route_geometry_cache:
            nodes = list(line.route)
            cumulative = [0.0]
            for a, b in zip(nodes, nodes[1:]):
                cumulative.append(
                    cumulative[-1]
                    + self.network.graph.edges[a, b]["length_m"]
                )
            self._route_geometry_cache[line.line_id] = (nodes, cumulative)
        return self._route_geometry_cache[line.line_id]

    def _route_length(self, line: BusLine) -> float:
        __, cumulative = self._route_geometry(line)
        return cumulative[-1]

    def _locate(self, bus: _BusState) -> tuple[float, float, object]:
        """Current (lon, lat, nearest route node) of a bus."""
        nodes, cumulative = self._route_geometry(bus.line)
        length = cumulative[-1]
        pos = bus.position_m
        if bus.direction == 1:
            pos = length - pos
        pos = min(max(pos, 0.0), length)
        # Find the segment containing `pos`.
        for i in range(len(cumulative) - 1):
            if pos <= cumulative[i + 1] or i == len(cumulative) - 2:
                seg_len = cumulative[i + 1] - cumulative[i]
                frac = 0.0 if seg_len == 0 else (pos - cumulative[i]) / seg_len
                lon_a, lat_a = self.network.position(nodes[i])
                lon_b, lat_b = self.network.position(nodes[i + 1])
                lon = lon_a + frac * (lon_b - lon_a)
                lat = lat_a + frac * (lat_b - lat_a)
                nearest = nodes[i] if frac < 0.5 else nodes[i + 1]
                return lon, lat, nearest
        raise AssertionError("unreachable: route has at least one segment")

    def _advance(self, bus: _BusState, dt: int, t: int) -> None:
        """Move a bus for ``dt`` seconds at the local true speed."""
        __, __, node = self._locate(bus)
        speed_ms = max(
            self.ground_truth.speed(node, t) / 3.6, 1.0
        )  # floor: buses crawl, never stall completely
        distance = speed_ms * dt
        bus.distance_travelled_m += distance
        length = self._route_length(bus.line)
        new_pos = bus.position_m + distance
        while new_pos >= length:  # reached a terminal: turn around
            new_pos -= length
            bus.direction = 1 - bus.direction
        bus.position_m = new_pos

    def _congestion_bit(self, bus: _BusState, node, t: int) -> int:
        truth = 1 if self.ground_truth.is_congested(node, t) else 0
        if bus.unreliable_mode == "stuck_congested":
            return 1
        if bus.unreliable_mode == "inverted":
            return 1 - truth
        return truth

    def events(
        self, start: int, end: int, *, rng: Optional[random.Random] = None
    ) -> Iterator[tuple[Event, FluentFact]]:
        """Yield ``(move SDE, gps fact)`` pairs in ``[start, end)``.

        The stream is generated chronologically with a per-bus
        emission clock; the ``Delay`` attribute compares the bus's
        actual progress against the scheduled speed.

        ``rng`` is the explicit randomness source for emission jitter
        and arrival delays; when omitted a fresh seeded stream derived
        from the fleet seed is used, so every call with the same span
        yields the identical stream.  Global ``random`` state is never
        read.
        """
        if end <= start:
            return
        lo, hi = self.emission_period
        if rng is None:
            rng = random.Random(self.seed + 1)
        # Per-bus local clocks, advanced in global time order.  Bus
        # kinematics restart from the frozen initial states: a second
        # generation pass must not continue where the first left off.
        clock: dict[str, int] = {}
        for bus, initial in zip(self._buses, self._initial_states):
            bus.direction, bus.position_m, bus.next_emission = initial
            clock[bus.bus_id] = start + bus.next_emission % hi
            bus.started_at = start
            bus.distance_travelled_m = 0.0

        # Round-based generation: at every step pick the earliest bus.
        heap = [(clock[b.bus_id], b.bus_id, b) for b in self._buses]
        heapq.heapify(heap)
        while heap:
            t, bus_id, bus = heapq.heappop(heap)
            if t >= end:
                continue
            # Advance the bus from its last emission to t.
            dt = rng.randint(lo, hi)
            self._advance(bus, dt, t)
            lon, lat, node = self._locate(bus)
            elapsed = max(t - bus.started_at, 1)
            scheduled_m = SCHEDULED_SPEED_KMH / 3.6 * elapsed
            delay_s = max(
                0.0,
                (scheduled_m - bus.distance_travelled_m)
                / (SCHEDULED_SPEED_KMH / 3.6),
            )
            if rng.random() < self.late_fraction:
                arrival = t + rng.randint(5, self.max_arrival_delay)
            else:
                arrival = t + rng.randint(0, 5)
            payload = {
                "bus": bus.bus_id,
                "line": bus.line.line_id,
                "operator": bus.line.operator,
                "delay": round(delay_s, 1),
            }
            gps_value = {
                "lon": lon,
                "lat": lat,
                "direction": bus.direction,
                "congestion": self._congestion_bit(bus, node, t),
            }
            yield (
                Event("move", t, payload, arrival=arrival),
                FluentFact("gps", (bus.bus_id,), gps_value, t, arrival=arrival),
            )
            heapq.heappush(heap, (t + dt, bus_id, bus))
