"""Named, ready-to-use fault profiles.

Profiles are the operator-facing vocabulary of the chaos tooling: the
CLI's ``--faults <profile>`` flag, ``repro-traffic faults --list`` and
:class:`~repro.system.pipeline.SystemConfig.fault_profile` all resolve
names through :func:`get_profile`.  Each profile is a frozen
:class:`~repro.faults.spec.FaultProfile`; reseed one with
``get_profile(name).with_seed(s)`` for independent chaos runs.
"""

from __future__ import annotations

import difflib

from .spec import CrowdFaults, FaultProfile, StreamFaults

#: Delay bound used by the bounded-delay profiles.  Chosen so that with
#: the default system window/step (600/300) the delay stays within
#: ``window - step`` and recognition is provably unaffected (Figure 2).
BOUNDED_DELAY_S = 300

PROFILES: dict[str, FaultProfile] = {
    profile.name: profile
    for profile in (
        FaultProfile(
            name="none",
            description="no injected faults (baseline for chaos diffs)",
        ),
        FaultProfile(
            name="lossy_scats",
            description=(
                "30% SCATS record loss plus occasional flat-lined "
                "flow/density readings"
            ),
            scats=StreamFaults(
                drop_rate=0.3,
                corrupt_rate=0.05,
                corrupt_fields=("flow", "density"),
            ),
        ),
        FaultProfile(
            name="delayed_bus",
            description=(
                "half of the bus SDEs arrive up to 4 minutes late "
                "(out-of-order delivery)"
            ),
            bus=StreamFaults(delay_rate=0.5, max_delay_s=240),
        ),
        FaultProfile(
            name="bounded_delay",
            description=(
                "every SDE of both feeds may arrive up to "
                f"{BOUNDED_DELAY_S}s late; with window - step >= "
                f"{BOUNDED_DELAY_S}s recognition is unaffected (Fig. 2)"
            ),
            scats=StreamFaults(delay_rate=1.0, max_delay_s=BOUNDED_DELAY_S),
            bus=StreamFaults(delay_rate=1.0, max_delay_s=BOUNDED_DELAY_S),
        ),
        FaultProfile(
            name="blackout_scats",
            description=(
                "total SCATS outage: every sensor record lost "
                "(drives the feed breaker open)"
            ),
            scats=StreamFaults(drop_rate=1.0),
        ),
        FaultProfile(
            name="duplicating_mediator",
            description=(
                "an at-least-once mediator: 20% of records on both "
                "feeds are delivered twice"
            ),
            scats=StreamFaults(duplicate_rate=0.2),
            bus=StreamFaults(duplicate_rate=0.2),
        ),
        FaultProfile(
            name="noisy_buses",
            description=(
                "15% of gps congestion bits flipped in transit "
                "(the noisy(Bus) motivation)"
            ),
            bus=StreamFaults(
                corrupt_rate=0.15, corrupt_fields=("congestion",)
            ),
        ),
        FaultProfile(
            name="flaky_crowd",
            description=(
                "40% of crowd workers never answer, 20% answer past "
                "the reply window"
            ),
            crowd=CrowdFaults(no_response_rate=0.4, timeout_rate=0.2),
        ),
        FaultProfile(
            name="chaos_day",
            description=(
                "lossy SCATS + delayed buses + flaky crowd: the "
                "everything-goes-wrong rehearsal"
            ),
            scats=StreamFaults(
                drop_rate=0.3,
                corrupt_rate=0.05,
                corrupt_fields=("flow", "density"),
            ),
            bus=StreamFaults(delay_rate=0.5, max_delay_s=240),
            crowd=CrowdFaults(no_response_rate=0.4, timeout_rate=0.2),
        ),
    )
}


def list_profiles() -> list[FaultProfile]:
    """All registered profiles, sorted by name."""
    return [PROFILES[name] for name in sorted(PROFILES)]


def get_profile(name: str) -> FaultProfile:
    """Resolve a profile by name (closest-match hint on a miss)."""
    try:
        return PROFILES[name]
    except KeyError:
        close = difflib.get_close_matches(name, PROFILES, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ValueError(
            f"unknown fault profile {name!r}{hint}; known profiles: "
            f"{', '.join(sorted(PROFILES))}"
        ) from None
