"""Deterministic fault injection for the urban-traffic pipeline.

The reproduction's chaos layer: seed-driven drop / delay / duplicate /
corruption faults on the SDE feeds, worker non-response faults in the
crowdsourcing engine, named profiles binding them together, and crash
injection (:class:`CrashInjector`) for the recovery subsystem.  See
``docs/robustness.md`` and ``docs/recovery.md`` for the operator
guides.
"""

from .crash import CrashInjector, SimulatedCrash
from .profiles import BOUNDED_DELAY_S, PROFILES, get_profile, list_profiles
from .spec import (
    CrowdFaults,
    FaultInjector,
    FaultProfile,
    StreamFaults,
    faulty_source,
    inject_scenario,
)

__all__ = [
    "StreamFaults",
    "CrowdFaults",
    "FaultProfile",
    "FaultInjector",
    "faulty_source",
    "inject_scenario",
    "PROFILES",
    "BOUNDED_DELAY_S",
    "get_profile",
    "list_profiles",
    "CrashInjector",
    "SimulatedCrash",
]
