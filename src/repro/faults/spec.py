"""Deterministic fault specifications and the injection engine.

The paper's premise is operation over unreliable city feeds: SDEs
arrive late (Section 4's working memory / Figure 2), sensors lie
(``noisy(Bus)``, rule-sets (4)/(5)) and crowd workers simply do not
answer.  This module makes those pathologies *injectable*: a
:class:`StreamFaults` spec describes drop / delay / duplicate /
field-corruption faults for one SDE feed, a :class:`CrowdFaults` spec
describes worker non-response and reply-window timeouts, and a
:class:`FaultProfile` bundles them under a name.

Everything is driven by seeded :class:`random.Random` streams — one
per feed — so a profile applied to the same stream with the same seed
produces byte-identical faults, which is what makes chaos runs
diffable against clean runs (see ``tests/faults/test_chaos_parity.py``).

Two invariants the injectors maintain:

* *occurrence times are never touched* — a delay fault only moves the
  **arrival** stamp forward, reproducing mediator/network lag without
  rewriting history (the paper's Figure 2 scenario);
* *timestamps are never corrupted* — corruption only hits the payload
  fields named by the spec, so downstream windowing stays well-formed.
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Optional

from ..core.events import Event, FluentFact
from ..obs import Registry

#: RNG sub-seed offsets so each feed walks an independent stream.
_FEED_SEED_OFFSETS = {"scats": 101, "bus": 211, "gps": 307, "stream": 401}


def _rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")


@dataclass(frozen=True)
class StreamFaults:
    """Fault rates for one SDE feed (all probabilities per record).

    Parameters
    ----------
    drop_rate:
        Probability a record is lost entirely (network loss, a dead
        sensor, a mediator crash).
    delay_rate / max_delay_s:
        Probability a record's *arrival* is postponed by a uniform
        delay in ``[1, max_delay_s]`` seconds.  Occurrence times are
        untouched, so the record reaches the engine out of order —
        exactly the Figure 2 pathology the working memory exists for.
    duplicate_rate:
        Probability a record is delivered twice (at-least-once
        mediators, retrying gateways).
    corrupt_rate / corrupt_fields:
        Probability the named payload fields are corrupted: numeric
        values are stuck at zero (a flat-lined sensor), 0/1 congestion
        bits are flipped (the paper's ``noisy(Bus)`` motivation).
    """

    drop_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay_s: int = 0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    corrupt_fields: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _rate("drop_rate", self.drop_rate)
        _rate("delay_rate", self.delay_rate)
        _rate("duplicate_rate", self.duplicate_rate)
        _rate("corrupt_rate", self.corrupt_rate)
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must not be negative")
        if self.delay_rate > 0.0 and self.max_delay_s == 0:
            raise ValueError("delay_rate > 0 needs max_delay_s > 0")
        if self.corrupt_rate > 0.0 and not self.corrupt_fields:
            raise ValueError("corrupt_rate > 0 needs corrupt_fields")

    @property
    def active(self) -> bool:
        """Whether this spec injects anything at all."""
        return any(
            (
                self.drop_rate,
                self.delay_rate,
                self.duplicate_rate,
                self.corrupt_rate,
            )
        )


@dataclass(frozen=True)
class CrowdFaults:
    """Crowd-worker faults for the query execution engine.

    Parameters
    ----------
    no_response_rate:
        Probability a selected worker never answers a map task — the
        push notification is lost or the participant ignores it.
    timeout_rate:
        Probability a worker *would* answer but only after the query's
        reply window has closed (the server stops waiting); the answer
        is discarded and the task counts as timed out.
    extra_think_ms:
        How far past the reply window a timed-out answer lands (only
        affects the recorded latency breakdown).
    """

    no_response_rate: float = 0.0
    timeout_rate: float = 0.0
    extra_think_ms: float = 120_000.0

    def __post_init__(self) -> None:
        _rate("no_response_rate", self.no_response_rate)
        _rate("timeout_rate", self.timeout_rate)
        if self.extra_think_ms < 0:
            raise ValueError("extra_think_ms must not be negative")

    @property
    def active(self) -> bool:
        """Whether this spec injects anything at all."""
        return bool(self.no_response_rate or self.timeout_rate)


@dataclass(frozen=True)
class FaultProfile:
    """A named bundle of per-feed stream faults plus crowd faults."""

    name: str
    description: str = ""
    scats: StreamFaults = field(default_factory=StreamFaults)
    bus: StreamFaults = field(default_factory=StreamFaults)
    crowd: CrowdFaults = field(default_factory=CrowdFaults)
    seed: int = 0

    @property
    def active(self) -> bool:
        """Whether any component of the profile injects faults."""
        return self.scats.active or self.bus.active or self.crowd.active

    def with_seed(self, seed: int) -> "FaultProfile":
        """The same profile driven by a different seed."""
        return dataclasses.replace(self, seed=seed)

    def to_dict(self) -> dict:
        """Plain-dict view (CLI ``faults --show`` output)."""
        return dataclasses.asdict(self)


def _corrupt_value(value, rng: random.Random):
    """Corrupt one payload value: flip congestion-style bits, flatten
    numbers to a stuck-at-zero reading, blank out strings."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int) and value in (0, 1):
        return 1 - value
    if isinstance(value, (int, float)):
        return type(value)(0)
    if isinstance(value, str):
        return ""
    return value


class FaultInjector:
    """Applies one :class:`StreamFaults` spec to a record stream.

    A single injector owns one seeded RNG; records must be offered in a
    deterministic order (stream order) for reproducibility.  Injection
    results are counted into the optional metrics registry under
    ``faults.<feed>.*`` so every injected fault is observable.
    """

    def __init__(
        self,
        spec: StreamFaults,
        *,
        seed: int = 0,
        feed: str = "stream",
        metrics: Optional[Registry] = None,
    ):
        self.spec = spec
        self.feed = feed
        self.metrics = metrics
        self._rng = random.Random(seed + _FEED_SEED_OFFSETS.get(feed, 0))

    # -- bookkeeping -----------------------------------------------------
    def _count(self, kind: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"faults.{self.feed}.{kind}").inc(n)

    def _decide(self) -> tuple[bool, int, bool, bool]:
        """One record's fate: (dropped, delay_s, duplicated, corrupted).

        Every configured fault class draws exactly once per record —
        even for dropped records — so the RNG stream position depends
        only on the record count, not on earlier outcomes.
        """
        spec = self.spec
        rng = self._rng
        dropped = spec.drop_rate > 0 and rng.random() < spec.drop_rate
        delay = 0
        if spec.delay_rate > 0:
            delayed = rng.random() < spec.delay_rate
            amount = rng.randint(1, spec.max_delay_s)
            delay = amount if delayed else 0
        duplicated = (
            spec.duplicate_rate > 0 and rng.random() < spec.duplicate_rate
        )
        corrupted = (
            spec.corrupt_rate > 0 and rng.random() < spec.corrupt_rate
        )
        return dropped, delay, duplicated, corrupted

    # -- record-level injection ------------------------------------------
    def event(self, ev: Event) -> list[Event]:
        """Inject into one SDE; returns zero, one or two events."""
        self._count("seen")
        dropped, delay, duplicated, corrupted = self._decide()
        if dropped:
            self._count("dropped")
            return []
        if corrupted:
            changes = {
                name: _corrupt_value(ev.payload[name], self._rng)
                for name in self.spec.corrupt_fields
                if name in ev.payload
            }
            if changes:
                self._count("corrupted")
                ev = ev.replace_payload(**changes)
        if delay:
            self._count("delayed")
            if self.metrics is not None:
                self.metrics.timing(f"faults.{self.feed}.delay_s").observe(
                    delay
                )
            ev = Event(ev.type, ev.time, ev.payload, ev.arrival + delay)
        out = [ev]
        if duplicated:
            self._count("duplicated")
            out.append(ev)
        self._count("emitted", len(out))
        return out

    def fact(self, fact: FluentFact) -> list[FluentFact]:
        """Inject into one input-fluent fact (corruption targets the
        fields of a mapping-valued fluent, e.g. the gps congestion
        bit)."""
        self._count("seen")
        dropped, delay, duplicated, corrupted = self._decide()
        if dropped:
            self._count("dropped")
            return []
        value = fact.value
        if corrupted and hasattr(value, "items"):
            mutated = dict(value)
            changed = False
            for name in self.spec.corrupt_fields:
                if name in mutated:
                    mutated[name] = _corrupt_value(mutated[name], self._rng)
                    changed = True
            if changed:
                self._count("corrupted")
                value = mutated
        arrival = fact.arrival
        if delay:
            self._count("delayed")
            if self.metrics is not None:
                self.metrics.timing(f"faults.{self.feed}.delay_s").observe(
                    delay
                )
            arrival = fact.arrival + delay
        fact = FluentFact(fact.name, fact.key, value, fact.time, arrival)
        out = [fact]
        if duplicated:
            self._count("duplicated")
            out.append(fact)
        self._count("emitted", len(out))
        return out

    def item(self, item: dict) -> list[dict]:
        """Inject into one Streams data item (dict with ``@``-keys)."""
        from ..streams.items import ARRIVAL_KEY, item_arrival

        self._count("seen")
        dropped, delay, duplicated, corrupted = self._decide()
        if dropped:
            self._count("dropped")
            return []
        item = dict(item)
        if corrupted:
            changed = False
            for name in self.spec.corrupt_fields:
                if name in item and not name.startswith("@"):
                    item[name] = _corrupt_value(item[name], self._rng)
                    changed = True
            if changed:
                self._count("corrupted")
        if delay:
            self._count("delayed")
            if self.metrics is not None:
                self.metrics.timing(f"faults.{self.feed}.delay_s").observe(
                    delay
                )
            item[ARRIVAL_KEY] = item_arrival(item) + delay
        out = [item]
        if duplicated:
            self._count("duplicated")
            out.append(dict(item))
        self._count("emitted", len(out))
        return out

    # -- stream-level injection ------------------------------------------
    def events(self, events: Iterable[Event]) -> list[Event]:
        """Inject into a whole event stream (stream order preserved)."""
        out: list[Event] = []
        for ev in events:
            out.extend(self.event(ev))
        return out

    def facts(self, facts: Iterable[FluentFact]) -> list[FluentFact]:
        """Inject into a whole fact stream (stream order preserved)."""
        out: list[FluentFact] = []
        for fact in facts:
            out.extend(self.fact(fact))
        return out

    def items(self, items: Iterable[dict]) -> list[dict]:
        """Inject into a whole data-item stream."""
        out: list[dict] = []
        for item in items:
            out.extend(self.item(item))
        return out


def faulty_source(source, spec: StreamFaults, *, seed: int = 0,
                  metrics: Optional[Registry] = None):
    """Wrap a Streams :class:`~repro.streams.processes.Source` with
    injected faults.

    Returns a new ``Source`` of the same name whose items went through
    a :class:`FaultInjector`; the source re-sorts by arrival, so
    injected delays genuinely reorder delivery.
    """
    from ..streams.processes import Source

    injector = FaultInjector(
        spec, seed=seed, feed=source.name, metrics=metrics
    )
    return Source(source.name, injector.items(iter(source)))


def inject_scenario(data, profile: FaultProfile, *,
                    metrics: Optional[Registry] = None):
    """Apply a profile to a scenario's SDE stream.

    ``traffic`` events go through the SCATS spec; ``move`` events and
    ``gps`` facts go through the bus spec (each feed on its own RNG
    stream, so per-feed injection is independent of interleaving).
    Returns a new object of the same dataclass with the faulty streams.
    """
    scats = FaultInjector(
        profile.scats, seed=profile.seed, feed="scats", metrics=metrics
    )
    bus = FaultInjector(
        profile.bus, seed=profile.seed, feed="bus", metrics=metrics
    )
    gps = FaultInjector(
        profile.bus, seed=profile.seed, feed="gps", metrics=metrics
    )
    events: list[Event] = []
    for ev in data.events:
        if ev.type == "traffic":
            events.extend(scats.event(ev))
        elif ev.type == "move":
            events.extend(bus.event(ev))
        else:
            events.append(ev)
    facts: list[FluentFact] = []
    for fact in data.facts:
        if fact.name == "gps":
            facts.extend(gps.fact(fact))
        else:
            facts.append(fact)
    return dataclasses.replace(data, events=events, facts=facts)
