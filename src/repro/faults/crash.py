"""Crash injection for recovery testing.

PR 2's fault injectors corrupt the *data* flowing through the system;
this module kills the *process* (in effigy): a :class:`CrashInjector`
raises :class:`SimulatedCrash` out of the pipeline's recovery hooks at
a configurable or seeded recognition step, either at the start of the
step or in the middle of a checkpoint write.  The mid-write variant
also leaves a torn (truncated) checkpoint file behind, exercising the
checksum validation and fall-back-to-previous-checkpoint path that a
real power loss through a non-atomic writer would.

The exception derives from ``RuntimeError`` (not from the supervised
stream machinery's error types) so no retry policy or dead-letter path
ever swallows it — a crash is a crash.
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass, field
from pathlib import Path
from typing import Literal, Optional

__all__ = ["SimulatedCrash", "CrashInjector"]


class SimulatedCrash(RuntimeError):
    """Raised by :class:`CrashInjector` in place of a process death."""

    def __init__(self, step: int, phase: str):
        super().__init__(f"simulated crash at step {step} ({phase})")
        self.step = step
        self.phase = phase


@dataclass
class CrashInjector:
    """Kills one run at a deterministic point.

    Parameters
    ----------
    at_step:
        Recognition step to die at (1-based, counted from the start of
        the whole run — resumed runs continue the numbering).  ``None``
        draws the step from ``seed`` over ``step_range``.
    phase:
        ``"step"`` raises before the step's write-ahead record is
        journalled; ``"checkpoint"`` raises in the middle of the first
        checkpoint write at or after ``at_step``, leaving the first
        ``torn_bytes`` of the new checkpoint on disk (a torn file the
        loader must reject).
    seed:
        Seed for the drawn step when ``at_step`` is ``None``.
    step_range:
        Inclusive range the seeded step is drawn from.
    torn_bytes:
        Length of the truncated checkpoint prefix the mid-write crash
        leaves behind.
    mode:
        ``"raise"`` (default) raises :class:`SimulatedCrash` so an
        in-process harness can catch it; ``"sigkill"`` sends the
        current process an uncatchable ``SIGKILL`` instead — the real
        thing, usable only inside a sacrificial worker process (the
        sharded runtime's chaos tests).  The mid-checkpoint variant
        still leaves the torn file behind before dying.
    """

    at_step: Optional[int] = None
    phase: Literal["step", "checkpoint"] = "step"
    seed: Optional[int] = None
    step_range: tuple[int, int] = (1, 10)
    torn_bytes: int = 128
    mode: Literal["raise", "sigkill"] = "raise"
    #: Set once the crash has fired; a resumed run reusing the same
    #: injector will not be killed twice.
    fired: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.phase not in ("step", "checkpoint"):
            raise ValueError(
                f"phase must be 'step' or 'checkpoint', got {self.phase!r}"
            )
        if self.mode not in ("raise", "sigkill"):
            raise ValueError(
                f"mode must be 'raise' or 'sigkill', got {self.mode!r}"
            )
        if self.at_step is None:
            if self.seed is None:
                raise ValueError("either at_step or seed is required")
            lo, hi = self.step_range
            if lo > hi or lo < 1:
                raise ValueError(
                    f"step_range must satisfy 1 <= lo <= hi, "
                    f"got {self.step_range!r}"
                )
            self.at_step = random.Random(self.seed).randint(lo, hi)
        elif self.at_step < 1:
            raise ValueError(f"at_step must be >= 1, got {self.at_step}")

    # -- hooks called by the checkpoint coordinator --------------------
    def before_step(self, step: int) -> None:
        """Die at the start of the configured step (phase ``"step"``)."""
        if self.phase == "step" and not self.fired and step == self.at_step:
            self.fired = True
            self._die(step, "step")

    def on_checkpoint_write(self, step: int, path, data: bytes) -> None:
        """Die mid-write of the checkpoint for ``step`` (phase
        ``"checkpoint"``), leaving a torn file at the final path."""
        if (
            self.phase == "checkpoint"
            and not self.fired
            and step >= (self.at_step or 0)
        ):
            self.fired = True
            Path(path).write_bytes(data[: self.torn_bytes])
            self._die(step, "checkpoint")

    def _die(self, step: int, phase: str) -> None:
        if self.mode == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        raise SimulatedCrash(step, phase)
