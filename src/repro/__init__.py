"""repro — reproduction of *Heterogeneous Stream Processing and
Crowdsourcing for Urban Traffic Management* (Artikis et al., EDBT 2014).

The package mirrors the paper's architecture (its Figure 1):

* :mod:`repro.streams` — the Streams middleware analog (Sections 2–3);
* :mod:`repro.core` — RTEC complex event processing and the Dublin
  traffic CE definitions (Section 4);
* :mod:`repro.crowd` — crowdsourced veracity resolution with online EM
  and the mobile query execution engine (Section 5);
* :mod:`repro.traffic_model` — GP traffic-flow regression on the street
  graph for data sparsity (Section 6);
* :mod:`repro.dublin` — the synthetic Dublin substrate standing in for
  the offline dublinked.ie / OpenStreetMap data (DESIGN.md §2);
* :mod:`repro.system` — the integrated closed-loop system.

Quickstart::

    from repro.dublin import DublinScenario, ScenarioConfig
    from repro.system import UrbanTrafficSystem, SystemConfig

    scenario = DublinScenario(ScenarioConfig(seed=1, n_buses=100))
    system = UrbanTrafficSystem(scenario, SystemConfig())
    report = system.run(0, 1800)
    print(report.console.render_summary())
"""

from . import core, crowd, dublin, streams, system, traffic_model

__version__ = "1.0.0"

__all__ = [
    "core",
    "streams",
    "crowd",
    "traffic_model",
    "dublin",
    "system",
    "__version__",
]
