#!/usr/bin/env python3
"""Beyond yes/no: smartphone sensor probes and participant rewards.

Section 5.3 motivates the MapReduce decomposition with richer tasks:
"we could employ the sensors of the smartphones to extract data, such
as their current speed or local humidity, as a Map task, and aggregate
the intermediate data based on their density at the Reduce phase."
Section 7.2 adds that "a participant's quality may be a factor in the
computation of the reward he receives for his contribution."

This example runs both extensions over a simulated fleet of devices
moving through the synthetic city:

* a *speed probe*: each phone reports the local traffic speed (from
  the ground truth at its position); mean vs density-weighted
  aggregation are compared where participants cluster;
* a *reward settlement*: after a batch of congestion questions, each
  participant is paid according to answers given and estimated quality.

Usage::

    python examples/crowd_sensing_probes.py
"""

import random

from repro.crowd import (
    CrowdQuery,
    DisagreementTask,
    OnlineEM,
    Participant,
    QueryExecutionEngine,
    RewardLedger,
    RewardPolicy,
    SensorProbe,
    execute_probe,
)
from repro.dublin import DublinScenario, ScenarioConfig

PROBE_TIME = int(8.5 * 3600)  # morning rush


def build_city():
    return DublinScenario(
        ScenarioConfig(
            seed=13, rows=12, cols=12, n_intersections=40,
            n_buses=10, n_lines=4, n_incidents=6,
            incident_window=(PROBE_TIME - 1800, PROBE_TIME + 1800),
        )
    )


def speed_probe_demo(scenario) -> None:
    print("=== speed probe (map: read device speed; reduce: aggregate) ===")
    rng = random.Random(13)
    engine = QueryExecutionEngine(seed=13)
    nodes = list(scenario.network.graph.nodes)
    # 25 phones: 20 clustered around one congested junction, 5 spread
    # across the city — the cluster must not dominate the average.
    incident_node = scenario.ground_truth.incidents[0].node
    lon0, lat0 = scenario.network.position(incident_node)
    for i in range(20):
        engine.register(Participant(
            f"cluster{i}", 0.1,
            lon=lon0 + rng.uniform(-0.001, 0.001),
            lat=lat0 + rng.uniform(-0.001, 0.001),
            connection="3g",
        ))
    for i in range(5):
        node = rng.choice(nodes)
        lon, lat = scenario.network.position(node)
        engine.register(Participant(
            f"spread{i}", 0.1, lon=lon, lat=lat, connection="wifi",
        ))

    def read_speed(participant):
        node = scenario.network.nearest_node(participant.lon, participant.lat)
        return scenario.ground_truth.speed(node, PROBE_TIME)

    for reducer in ("mean", "density_weighted"):
        probe = SensorProbe("speed_kmh", read_speed, reducer=reducer)
        result = execute_probe(engine, probe)
        print(
            f"{reducer:<18} {result.aggregate:6.1f} km/h "
            f"({result.n_readings} readings)"
        )
    print(
        "the plain mean is dragged down by the 20 phones stuck at the "
        "incident;\nthe density-weighted reduce recovers a city-wide "
        "picture.\n"
    )


def rewards_demo() -> None:
    print("=== reward settlement after 200 congestion questions ===")
    error_ps = {"alice": 0.05, "bob": 0.25, "carol": 0.45, "mallory": 0.85}
    participants = [Participant(pid, p) for pid, p in error_ps.items()]
    engine = QueryExecutionEngine(seed=7)
    for p in participants:
        engine.register(p)
    em = OnlineEM()
    ledger = RewardLedger(policy=RewardPolicy(base_per_answer=0.05,
                                              quality_bonus=2.0))
    rng = random.Random(7)
    from repro.crowd import TRAFFIC_LABELS, simulate_answers

    for t in range(1, 201):
        task = DisagreementTask(t, true_label=rng.choice(TRAFFIC_LABELS))
        answers = simulate_answers(task, participants, rng)
        em.process(answers)
        ledger.record_answers(answers.answers)

    rewards = ledger.settle(em)
    print(f"{'participant':<12}{'true p':>8}{'estimated':>11}{'reward':>9}")
    for pid in error_ps:
        print(
            f"{pid:<12}{error_ps[pid]:>8.2f}{em.estimate(pid):>11.2f}"
            f"{rewards[pid]:>8.2f}€"
        )
    print("reliable participants earn a quality bonus; a guesser gets "
          "base pay only.")


def main() -> None:
    scenario = build_city()
    speed_probe_demo(scenario)
    rewards_demo()


if __name__ == "__main__":
    main()
