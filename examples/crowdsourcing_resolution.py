#!/usr/bin/env python3
"""Crowdsourcing deep dive: online EM convergence and engine latency.

Reproduces the paper's Section 7.2 experiments interactively:

* ten simulated participants with the paper's exact error
  probabilities answer 1000 source-disagreement queries; the online EM
  estimates converge to the true values (Figure 5);
* the query execution engine's per-step latency is measured for 2G,
  3G and WiFi devices (Figure 6);
* a deadline-constrained query demonstrates the admission test
  ``comm + comp < deadline``.

Usage::

    python examples/crowdsourcing_resolution.py
"""

import random

from repro.crowd import (
    TRAFFIC_LABELS,
    CrowdQuery,
    DisagreementTask,
    LatencyModel,
    OnlineEM,
    Participant,
    QueryExecutionEngine,
    simulate_answers,
)

TRUE_ERROR_PROBABILITIES = [
    0.05, 0.15, 0.2, 0.25, 0.25, 0.38, 0.4, 0.5, 0.75, 0.9,
]


def estimation_experiment() -> None:
    print("=== online EM estimation (Figure 5) ===")
    participants = [
        Participant(f"P{i + 1}", p)
        for i, p in enumerate(TRUE_ERROR_PROBABILITIES)
    ]
    em = OnlineEM()
    rng = random.Random(42)
    checkpoints = (10, 100, 500, 1000)
    estimates_at: dict[int, list[float]] = {}
    for t in range(1, 1001):
        task = DisagreementTask(t, true_label=rng.choice(TRAFFIC_LABELS))
        em.process(simulate_answers(task, participants, rng))
        if t in checkpoints:
            estimates_at[t] = [
                em.estimate(p.participant_id) for p in participants
            ]

    header = "queries " + "".join(f"{p.participant_id:>7}" for p in participants)
    print(header)
    print(" truth  " + "".join(f"{p:>7.2f}" for p in TRUE_ERROR_PROBABILITIES))
    for t in checkpoints:
        print(f"{t:>6}  " + "".join(f"{e:>7.2f}" for e in estimates_at[t]))
    print(
        f"\npeaked posteriors (>0.99): {em.peaked_fraction:.1%} "
        "(paper reports ~94%)"
    )
    print("reliability ranking:", " > ".join(em.reliability_ranking()))


def latency_experiment() -> None:
    print("\n=== query engine latency (Figure 6) ===")
    model = LatencyModel(seed=1)
    print(f"{'step':<24}{'2G':>8}{'3G':>8}{'WiFi':>8}   (ms, mean of 10)")
    rows = {
        "trigger task": lambda _conn: model.trigger_ms(),
        "send push notification": model.push_ms,
        "communication time": model.communication_ms,
    }
    for step, sampler in rows.items():
        means = []
        for connection in ("2g", "3g", "wifi"):
            means.append(
                sum(sampler(connection) for _ in range(10)) / 10
            )
        print(
            f"{step:<24}"
            + "".join(f"{m:>8.0f}" for m in means)
        )
    for connection in ("2g", "3g", "wifi"):
        total = model.expected_engine_ms(connection)
        print(f"expected end-to-end on {connection}: {total:.0f} ms (< 1 s)")


def deadline_experiment() -> None:
    print("\n=== deadline admission ===")
    engine = QueryExecutionEngine(seed=2)
    for pid, connection in (
        ("ann-2g", "2g"), ("bob-3g", "3g"), ("cat-wifi", "wifi"),
    ):
        engine.register(
            Participant(pid, 0.1, connection=connection)
        )
    task = DisagreementTask(1, true_label="congestion")
    result = engine.execute(CrowdQuery(task=task, deadline_ms=800.0))
    print("deadline 800 ms -> selected workers:", ", ".join(result.selected))
    print("(the 2G device misses the deadline and is not queried)")
    for execution in result.executions:
        print(
            f"  {execution.participant_id:<10} engine latency "
            f"{execution.engine_ms:6.0f} ms, answer={execution.answer}"
        )


def main() -> None:
    estimation_experiment()
    latency_experiment()
    deadline_experiment()


if __name__ == "__main__":
    main()
