#!/usr/bin/env python3
"""Declarative wiring: the whole loop as a Streams XML data-flow graph.

The paper's middleware "provides a XML-based language for the
description of data flow graphs" (Section 3).  This example describes
the Dublin pipeline — SDE stream → RTEC processor → CE queue →
crowdsourcing processor → crowd-answer queue → feedback processor —
entirely in XML, runs it on the deterministic runtime and inspects the
queues.

Usage::

    python examples/streams_xml_pipeline.py
"""

from repro.core import RTEC
from repro.core.traffic import build_traffic_definitions, default_traffic_params
from repro.crowd import (
    CrowdsourcingComponent,
    Participant,
    QueryExecutionEngine,
)
from repro.dublin import DublinScenario, ScenarioConfig, stream_items
from repro.obs import Registry
from repro.streams import Counter, StreamRuntime, parse_topology
from repro.system import (
    CrowdsourcingProcessor,
    FluentFeedbackProcessor,
    RtecProcessor,
)

PIPELINE_XML = """
<container>
  <stream id="dublin-sdes" class="app.DublinStream"/>

  <process id="event-processing" input="dublin-sdes" output="complex-events">
    <processor class="app.RtecProcessor"/>
  </process>

  <process id="crowdsourcing" input="complex-events" output="crowd-answers">
    <processor class="app.CrowdsourcingProcessor"/>
  </process>

  <process id="adaptation-feedback" input="crowd-answers" output="resolved">
    <processor class="app.FeedbackProcessor"/>
  </process>
</container>
"""


def main() -> None:
    scenario = DublinScenario(
        ScenarioConfig(
            seed=5,
            rows=12,
            cols=12,
            n_intersections=40,
            n_buses=60,
            n_lines=8,
            unreliable_fraction=0.2,
            n_incidents=5,
            incident_window=(0, 1800),
        )
    )
    data = scenario.generate(0, 1800)
    print(f"generated {data.n_sdes} SDEs ({data.counts_by_type()})")

    engine = RTEC(
        build_traffic_definitions(
            scenario.topology, adaptive=True, noisy_variant="crowd"
        ),
        window=600,
        step=300,
        params=default_traffic_params(),
    )
    rtec_processor = RtecProcessor(engine)

    crowd_engine = QueryExecutionEngine(seed=5)
    for i, int_id in enumerate(scenario.topology.ids()[:20]):
        lon, lat = scenario.topology.location(int_id)
        crowd_engine.register(Participant(f"p{i}", 0.1, lon=lon, lat=lat))
    crowd = CrowdsourcingComponent(crowd_engine)

    def ground_truth_label(int_id, t):
        node = scenario.node_of[int_id]
        return scenario.ground_truth.congestion_label(node, t)

    registry = {
        "app.DublinStream": lambda **_: stream_items(data),
        "app.RtecProcessor": lambda **_: rtec_processor,
        "app.CrowdsourcingProcessor": lambda **_: CrowdsourcingProcessor(
            crowd,
            locate=scenario.topology.location,
            truth_lookup=ground_truth_label,
        ),
        "app.FeedbackProcessor": lambda **_: FluentFeedbackProcessor(engine),
    }

    topology = parse_topology(PIPELINE_XML, registry)
    # The parsed graph can be extended with the fluent builder — no
    # add_* boilerplate; here an operator tap counts the crowd answers
    # flowing through the queue the XML declared:
    answer_counter = Counter(group_by="value")
    topology.process(
        "operator-tap", input="crowd-answers", processors=[answer_counter]
    )

    metrics = Registry()
    stats = StreamRuntime(topology, metrics=metrics).run()
    rtec_processor.flush(1800)

    print(f"runtime processed {stats.items_ingested} items")
    print("\nqueue contents:")
    for name, queue in topology.queues.items():
        print(f"  {name:<16} {len(queue):>6} items")

    ce_types = {}
    for item in topology.queues["complex-events"]:
        ce_types[item["@type"]] = ce_types.get(item["@type"], 0) + 1
    print("\nrecognised CE types:")
    for ce_type, count in sorted(ce_types.items()):
        print(f"  {ce_type:<24} {count:>6}")

    answers = topology.queues["crowd-answers"].snapshot()
    print(f"\ncrowd answers produced: {len(answers)} "
          f"(tap saw {answer_counter.per_group})")
    for item in answers[:5]:
        print(
            f"  t={item['@time']:>6} {item['intersection']} -> "
            f"{item['value']} (confidence {item['confidence']:.2f})"
        )

    print("\nper-process throughput (items/s):")
    for name, value in metrics.gauges().items():
        if name.endswith(".items_per_s"):
            print(f"  {name:<44} {value:>12.0f}")


if __name__ == "__main__":
    main()
