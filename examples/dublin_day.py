#!/usr/bin/env python3
"""A morning rush hour in Dublin: static vs self-adaptive recognition.

Simulates the 07:30–09:00 window with incidents and unreliable buses,
and runs the system twice — once with *static* recognition (rule-set 3:
every source always trusted) and once *self-adaptive* (rule-sets 3′+5:
buses disagreeing with SCATS are quarantined until rehabilitated) — to
show how adaptation suppresses the false congestion alerts injected by
the unreliable buses, the core claim of the paper's Section 4.3.

Usage::

    python examples/dublin_day.py
"""

from repro.dublin import DublinScenario, ScenarioConfig
from repro.system import SystemConfig, UrbanTrafficSystem

RUSH_START = int(7.5 * 3600)
RUSH_END = int(9.0 * 3600)


def build_scenario() -> DublinScenario:
    return DublinScenario(
        ScenarioConfig(
            seed=21,
            rows=16,
            cols=16,
            n_intersections=80,
            n_buses=150,
            n_lines=15,
            unreliable_fraction=0.15,
            n_incidents=10,
            incident_window=(RUSH_START, RUSH_END),
        )
    )


def run(adaptive: bool):
    system = UrbanTrafficSystem(
        build_scenario(),
        SystemConfig.from_mapping({
            "window": 900,
            "step": 300,
            "adaptive": adaptive,
            "noisy_variant": "pessimistic",
            "crowd_enabled": adaptive,
            "n_participants": 60,
            "seed": 21,
        }),
    )
    return system, system.run(RUSH_START, RUSH_END)


def main() -> None:
    print("simulating 07:30-09:00 with 15% unreliable buses...\n")
    static_system, static_report = run(adaptive=False)
    adaptive_system, adaptive_report = run(adaptive=True)

    print(f"{'metric':<42}{'static':>10}{'adaptive':>10}")
    print("-" * 62)
    for kind in (
        "bus congestion",
        "scats congestion",
        "source disagreement",
        "crowd resolution",
        "congestion in-the-make",
    ):
        s = static_report.console.counts().get(kind, 0)
        a = adaptive_report.console.counts().get(kind, 0)
        print(f"{kind:<42}{s:>10}{a:>10}")
    print(
        f"{'mean recognition time (ms)':<42}"
        f"{static_report.mean_recognition_time * 1000:>10.1f}"
        f"{adaptive_report.mean_recognition_time * 1000:>10.1f}"
    )

    print("\n=== adaptive run: last alerts ===")
    print(adaptive_report.console.render(limit=12))

    print("\n=== per-region recognition load (adaptive) ===")
    for region, log in adaptive_report.logs.items():
        sdes = sum(s.n_events for s in log.snapshots)
        print(
            f"{region:<10} {sdes:>8} SDEs   "
            f"{log.mean_elapsed * 1000:>8.1f} ms/query"
        )


if __name__ == "__main__":
    main()
