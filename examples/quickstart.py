#!/usr/bin/env python3
"""Quickstart: run the integrated urban-traffic system for 30 minutes.

Builds a small synthetic Dublin (street network, SCATS sensors, bus
fleet with a few unreliable buses), runs the full closed loop —
per-region RTEC recognition, crowdsourced disagreement resolution, GP
traffic modelling — and prints the operator's view.

Usage::

    python examples/quickstart.py
"""

from repro.dublin import DublinScenario, ScenarioConfig
from repro.system import SystemConfig, UrbanTrafficSystem


def main() -> None:
    scenario = DublinScenario(
        ScenarioConfig(
            seed=7,
            rows=14,
            cols=14,
            n_intersections=60,
            n_buses=120,
            n_lines=12,
            unreliable_fraction=0.1,   # some buses report a stuck bit
            n_incidents=8,
            incident_window=(0, 1800),
        )
    )
    system = UrbanTrafficSystem(
        scenario,
        # from_mapping validates the keys: a typo raises instead of
        # silently running the defaults.
        SystemConfig.from_mapping({
            "window": 600,
            "step": 300,
            "adaptive": True,           # self-adaptive (rule-set 3')
            "noisy_variant": "crowd",   # rule-set (4): crowd-validated
            "n_participants": 50,
            "seed": 7,
        }),
    )
    report = system.run(0, 1800)

    print("=== alert feed (last 15) ===")
    print(report.console.render(limit=15))
    print()
    print(report.console.render_summary())
    print()
    print(
        f"crowd: {report.crowd_resolutions} disagreements resolved, "
        f"{report.crowd_unresolved} unresolved"
    )
    print(
        "mean CE recognition time per query: "
        f"{report.mean_recognition_time * 1000:.1f} ms"
    )
    print()
    print("=== estimated city-wide traffic flow (GP, Figure 9 analog) ===")
    print(system.render_city_map(1500))


if __name__ == "__main__":
    main()
