#!/usr/bin/env python3
"""Evaluating the sensors themselves: SCATS reliability from the crowd.

Section 4.3 closes with a teaser: "Given the crowdsourced information,
we can also evaluate the reliability of SCATS sensors.  The
formalisation is similar and omitted to save space."  This example
runs that omitted formalisation end to end:

* a city where a slice of the SCATS sensors is *faulty* (stuck on a
  free-flow reading — the mediator-interference failure mode of
  Section 1);
* buses drive past and disagree with the stuck sensors;
* the crowd adjudicates, the ``noisyScats`` fluent marks the
  intersections whose sensors the crowd contradicted, and the
  ``trustedScatsCongestion`` view hides their output;
* the run is archived as a standalone HTML report with the city map.

Usage::

    python examples/scats_reliability.py [report.html]
"""

import sys

from repro.dublin import DublinScenario, ScenarioConfig
from repro.system import (
    SystemConfig,
    UrbanTrafficSystem,
    write_html_report,
)

DURATION = 3600


def main() -> None:
    scenario = DublinScenario(
        ScenarioConfig(
            seed=67,
            rows=14,
            cols=14,
            n_intersections=60,
            n_buses=160,
            n_lines=12,
            unreliable_fraction=0.0,   # buses are honest this time...
            scats_fault_rate=0.25,     # ...the *sensors* are the problem
            n_incidents=30,
            incident_window=(0, DURATION),
        )
    )
    n_faulty = len(scenario.scats.faulty_sensors())
    print(
        f"{scenario.scats.n_sensors} SCATS detectors, {n_faulty} of them "
        "stuck on a free-flow reading\n"
    )

    system = UrbanTrafficSystem(
        scenario,
        SystemConfig.from_mapping({
            "window": 900,
            "step": 300,
            "adaptive": True,
            "noisy_variant": "crowd",
            "scats_reliability": True,   # the omitted formalisation
            "n_participants": 80,
            "seed": 67,
        }),
    )
    report = system.run(0, DURATION)

    counts = report.console.counts()
    print("alerts:")
    for kind in sorted(counts):
        print(f"  {kind:<26}{counts[kind]:>6}")
    print(
        f"\ncrowd: {report.crowd_resolutions} disagreements resolved, "
        f"{report.crowd_unresolved} unresolved"
    )

    # Which intersections did the system learn to distrust?
    flagged = set()
    for log in report.logs.values():
        for snapshot in log.snapshots:
            flagged.update(
                key[0] for key in snapshot.fluents.get("noisyScats", {})
            )
    faulty_intersections = {
        sensor[0] for sensor in scenario.scats.faulty_sensors()
    }
    if flagged:
        true_hits = flagged & faulty_intersections
        print(
            f"\nnoisyScats flagged {len(flagged)} intersections; "
            f"{len(true_hits)} of them really have faulty sensors"
        )
    else:
        print("\nno intersections were flagged in this window")

    out = sys.argv[1] if len(sys.argv) > 1 else "/tmp/scats_reliability.html"
    write_html_report(system, report, out, at=DURATION)
    print(f"HTML report with the city map written to {out}")


if __name__ == "__main__":
    main()
