#!/usr/bin/env python3
"""Traffic modelling: fill the sensor-coverage gaps with a graph GP.

Reproduces the Section 6 / Figures 7–9 pipeline: generate the street
network, place SCATS sensors on a subset of junctions, take one
aggregated flow snapshot, grid-search the regularized-Laplacian kernel
hyperparameters over (0, 10], and estimate flow at every junction the
sensors do not cover — then render the truth and the estimate as ASCII
city maps and report the estimation error against the mean baseline.

Usage::

    python examples/sparsity_mapping.py
"""

import numpy as np

from repro.dublin import DublinScenario, ScenarioConfig, greenshields_flow
from repro.traffic_model import grid_search, render_flow_map

SNAPSHOT_T = int(8.5 * 3600)  # morning rush


def main() -> None:
    scenario = DublinScenario(
        ScenarioConfig(
            seed=9,
            rows=16,
            cols=16,
            n_intersections=70,   # sensors cover ~27% of junctions
            n_buses=10,
            n_lines=4,
            n_incidents=5,
            incident_window=(SNAPSHOT_T - 1800, SNAPSHOT_T + 1800),
        )
    )
    network = scenario.network
    truth = {
        node: greenshields_flow(scenario.ground_truth.density(node, SNAPSHOT_T))
        for node in network.graph.nodes
    }
    observed = {node: truth[node] for node in scenario.node_of.values()}
    hidden = [n for n in network.graph.nodes if n not in observed]
    print(
        f"{network.n_junctions()} junctions, {len(observed)} with SCATS "
        f"sensors, {len(hidden)} unobserved"
    )

    print("\ngrid-searching kernel hyperparameters over (0, 10] ...")
    result = grid_search(
        network.graph,
        observed,
        alphas=[0.5, 2.0, 5.0, 10.0],
        betas=[0.002, 0.01, 0.05, 0.25],
        folds=3,
        noise=15.0,
        seed=9,
    )
    print(
        f"best alpha={result.alpha}, beta={result.beta} "
        f"(cross-validated RMSE {result.rmse:.0f} veh/h)"
    )

    model = result.best_model(network.graph, noise=15.0)
    model.fit(observed)
    estimates = model.estimate()

    rmse = model.rmse({n: truth[n] for n in hidden})
    mean = float(np.mean(list(observed.values())))
    baseline = float(
        np.sqrt(np.mean([(mean - truth[n]) ** 2 for n in hidden]))
    )
    print(
        f"\nflow RMSE at unobserved junctions: GP {rmse:.0f} veh/h "
        f"vs mean-baseline {baseline:.0f} veh/h "
        f"({(1 - rmse / baseline):.0%} better)"
    )

    positions = network.positions()
    print("\n=== ground-truth flow (dense = high) ===")
    print(render_flow_map(positions, truth, width=64, height=18))
    print("\n=== GP estimate from the sparse sensors (Figure 9 analog) ===")
    print(render_flow_map(positions, estimates, width=64, height=18))


if __name__ == "__main__":
    main()
