#!/usr/bin/env python3
"""A chaos day in Dublin: the rush hour under injected faults.

Replays the ``dublin_day`` morning-rush scenario twice — once clean,
once under the ``chaos_day`` fault profile (lossy SCATS, delayed buses,
a flaky crowd) — and prints what the robustness layer did about it:
which faults were injected (every one is a ``faults.*`` counter), when
the feed breakers opened, which alerts were suppressed as
untrustworthy, and the degradation timeline the operators would see.

Usage::

    python examples/chaos_day.py            # full rush hour
    python examples/chaos_day.py --smoke    # small/fast variant (CI)
"""

import sys

from repro.dublin import DublinScenario, ScenarioConfig
from repro.system import SystemConfig, UrbanTrafficSystem

RUSH_START = int(7.5 * 3600)
RUSH_END = int(9.0 * 3600)


def build_scenario(smoke: bool) -> DublinScenario:
    return DublinScenario(
        ScenarioConfig(
            seed=21,
            rows=10 if smoke else 16,
            cols=10 if smoke else 16,
            n_intersections=30 if smoke else 80,
            n_buses=40 if smoke else 150,
            n_lines=8 if smoke else 15,
            unreliable_fraction=0.15,
            n_incidents=4 if smoke else 10,
            incident_window=(RUSH_START, RUSH_END),
        )
    )


def run(smoke: bool, profile):
    system = UrbanTrafficSystem(
        build_scenario(smoke),
        SystemConfig.from_mapping({
            # Window > step: the working memory tolerates the profile's
            # delayed arrivals (paper, Figure 2).
            "window": 900,
            "step": 300,
            "adaptive": True,
            "noisy_variant": "pessimistic",
            "n_participants": 30 if smoke else 60,
            "fault_profile": profile,
            "seed": 21,
        }),
    )
    end = RUSH_START + 1800 if smoke else RUSH_END
    return system.run(RUSH_START, end)


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]
    span = "07:30-08:00" if smoke else "07:30-09:00"
    print(f"simulating {span} clean, then under the chaos_day profile...\n")
    clean = run(smoke, None)
    chaos = run(smoke, "chaos_day")

    print(f"{'metric':<42}{'clean':>10}{'chaos':>10}")
    print("-" * 62)
    for kind in (
        "bus congestion",
        "scats congestion",
        "source disagreement",
        "crowd resolution",
    ):
        c = clean.console.counts().get(kind, 0)
        f = chaos.console.counts().get(kind, 0)
        print(f"{kind:<42}{c:>10}{f:>10}")
    for counter in (
        "crowd.resolved",
        "crowd.unresolved",
        "system.degraded.alerts_suppressed",
        "system.degraded.crowd_suppressed",
    ):
        c = clean.metrics["counters"].get(counter, 0)
        f = chaos.metrics["counters"].get(counter, 0)
        print(f"{counter:<42}{c:>10}{f:>10}")

    print("\n=== injected faults (chaos run) ===")
    injected = {
        name: value
        for name, value in chaos.metrics["counters"].items()
        if name.startswith(("faults.", "crowd.engine.faults."))
    }
    for name, value in sorted(injected.items()):
        print(f"  {name:<40} {value:>8}")

    print("\n=== degradation timeline ===")
    timeline = chaos.degraded_timeline()
    if timeline:
        for line in timeline:
            print(f"  {line}")
    else:
        print("  no feed degraded (both survived the fault profile)")

    print("\n=== chaos run: last alerts ===")
    print(chaos.console.render(limit=10))


if __name__ == "__main__":
    main()
