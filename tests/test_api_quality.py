"""Library-wide API quality checks.

Production-quality gate: every public module, class and function of
the package carries a docstring, and every subpackage's ``__all__``
resolves.  This keeps the documentation deliverable honest as the
code base grows.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
]


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(member) is not module:
            continue  # re-exported from elsewhere; checked at its home
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


def _documented(obj) -> bool:
    return bool(obj.__doc__ and obj.__doc__.strip())


def _inherits_documentation(cls, attr_name) -> bool:
    """An override counts as documented when a base class documents
    the same method (standard docstring inheritance)."""
    for base in cls.__mro__[1:]:
        base_attr = base.__dict__.get(attr_name)
        if base_attr is not None and _documented(base_attr):
            return True
    return False


@pytest.mark.parametrize("module_name", MODULES)
def test_public_members_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in _public_members(module):
        if not _documented(member):
            undocumented.append(name)
        if inspect.isclass(member):
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_"):
                    continue
                if not inspect.isfunction(attr):
                    continue
                if _documented(attr):
                    continue
                if _inherits_documentation(member, attr_name):
                    continue
                undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module_name}: missing docstrings on {undocumented}"
    )


@pytest.mark.parametrize(
    "package",
    ["repro", "repro.core", "repro.streams", "repro.crowd",
     "repro.traffic_model", "repro.dublin", "repro.system"],
)
def test_dunder_all_resolves(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.__all__ lists {name}"
