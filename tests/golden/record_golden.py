"""Golden-trace recording for the recognition engine.

This module is both a library (the differential tests in
``tests/core/test_golden_trace.py`` import the scenario, the engine
builder and the serialiser from here) and a script: running it

    PYTHONPATH=src python tests/golden/record_golden.py

re-records ``tests/golden/traffic_small.json`` from the *current*
engine.  The checked-in fixture was recorded from the pre-incremental
engine, so it pins the seed behaviour: any engine change that alters
recognition output — intervals, occurrences or SDE counts — fails the
golden tests until the fixture is deliberately re-recorded and the
diff reviewed.

The scenario is a miniature Dublin run (small grid, few buses, a
couple of incidents) whose bus feed carries the generator's natural
arrival delays (up to 120 s), so queries routinely admit SDEs that
occurred before the previous query time — the exact situation the
incremental engine's invalidation logic must survive.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from pathlib import Path
from typing import Any

from repro.core import RTEC
from repro.core.traffic import (
    build_traffic_definitions,
    default_traffic_params,
)
from repro.dublin import DublinScenario, ScenarioConfig

GOLDEN_PATH = Path(__file__).parent / "traffic_small.json"

#: Last query time of every recorded run (one hour of stream).
HORIZON = 3600

#: The recorded (window, step, adaptive) grid: a no-overlap control,
#: a high-overlap pair (window/step = 4) and a very-high-overlap pair
#: (window/step = 4 with a window larger than the whole stream tail),
#: each under both the static and the self-adaptive rule set.
CONFIGS: tuple[dict[str, Any], ...] = tuple(
    {"window": window, "step": step, "adaptive": adaptive}
    for window, step in ((600, 600), (1200, 300), (2400, 600))
    for adaptive in (False, True)
)


def golden_scenario() -> DublinScenario:
    """The deterministic miniature scenario behind the fixture."""
    return DublinScenario(
        ScenarioConfig(
            seed=3,
            rows=8,
            cols=8,
            n_intersections=24,
            sensors_range=(2, 3),
            n_buses=18,
            n_lines=4,
            unreliable_fraction=0.2,
            n_incidents=8,
            incident_window=(0, HORIZON),
        )
    )


def golden_params() -> dict[str, Any]:
    """Default thresholds, lowered so the miniature scenario actually
    exercises every definition (at default thresholds its readings
    never cross the congestion lines and half the rule suite would be
    recorded as silent)."""
    params = default_traffic_params()
    params.update(
        {
            "scats.density_hi": 28.0,
            "scats.flow_lo": 680.0,
            "trend.flow_delta": 60.0,
            "trend.density_delta": 4.0,
            "regime.synchronized_density": 20.0,
            "bus.delay_delta": 25.0,
        }
    )
    return params


def build_engine(
    scenario: DublinScenario,
    *,
    window: int,
    step: int,
    adaptive: bool,
    **engine_kwargs: Any,
) -> RTEC:
    """An engine over the golden scenario's rule suite.

    Extra keyword arguments go straight to :class:`RTEC`, so tests can
    pass ``incremental=False`` to pin the legacy path.
    """
    definitions = build_traffic_definitions(
        scenario.topology, adaptive=adaptive, noisy_variant="pessimistic"
    )
    return RTEC(
        definitions,
        window=window,
        step=step,
        params=golden_params(),
        **engine_kwargs,
    )


def _plain(value: Any) -> Any:
    """Reduce payload values to JSON-native structures."""
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def _key_token(key: Any) -> str:
    """A canonical string form of a grounding key (JSON dict key)."""
    return json.dumps(_plain(list(key)))


def serialise_snapshot(snapshot: Any) -> dict[str, Any]:
    """One query's recognition output as a JSON-able dict.

    Empty interval lists and empty occurrence lists are dropped so the
    comparison is insensitive to bookkeeping differences (an engine
    that records "this fluent was evaluated and holds nowhere" and one
    that omits the entry are behaviourally identical).
    """
    fluents: dict[str, dict[str, list[list[Any]]]] = {}
    for name, by_key in snapshot.fluents.items():
        entries = {
            _key_token(key): [[s, e] for s, e in intervals]
            for key, intervals in by_key.items()
            if intervals
        }
        if entries:
            fluents[name] = dict(sorted(entries.items()))
    occurrences: dict[str, list[dict[str, Any]]] = {}
    for name, occs in snapshot.occurrences.items():
        if occs:
            occurrences[name] = [
                {
                    "key": _plain(list(occ.key)),
                    "time": occ.time,
                    "payload": _plain(occ.payload),
                }
                for occ in occs
            ]
    return {
        "q": snapshot.query_time,
        "n_events": snapshot.n_events,
        "fluents": fluents,
        "occurrences": occurrences,
    }


def run_trace(
    scenario: DublinScenario,
    data: Any,
    *,
    window: int,
    step: int,
    adaptive: bool,
    **engine_kwargs: Any,
) -> list[dict[str, Any]]:
    """Serialised snapshots for every query time up to the horizon."""
    engine = build_engine(
        scenario,
        window=window,
        step=step,
        adaptive=adaptive,
        **engine_kwargs,
    )
    engine.feed(data.events, data.facts)
    return [serialise_snapshot(s) for s in engine.run(HORIZON)]


def record() -> dict[str, Any]:
    """Re-record the fixture from the current engine and return it."""
    scenario = golden_scenario()
    data = scenario.generate(0, HORIZON + 600)
    document: dict[str, Any] = {
        "scenario": {
            "seed": scenario.config.seed,
            "n_sdes": data.n_sdes,
            "horizon": HORIZON,
        },
        "traces": [],
    }
    for config in CONFIGS:
        document["traces"].append(
            {
                "config": dict(config),
                "queries": run_trace(scenario, data, **config),
            }
        )
    GOLDEN_PATH.write_text(
        json.dumps(document, indent=1, sort_keys=True) + "\n"
    )
    return document


if __name__ == "__main__":
    doc = record()
    n_queries = sum(len(t["queries"]) for t in doc["traces"])
    print(
        f"recorded {len(doc['traces'])} traces / {n_queries} queries "
        f"({doc['scenario']['n_sdes']} SDEs) -> {GOLDEN_PATH}"
    )
