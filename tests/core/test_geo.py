"""Tests for the geographic helpers behind the ``close`` predicate."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.geo import SpatialGrid, close, distance_m

# Dublin-ish reference point.
LON, LAT = -6.26, 53.35


class TestDistance:
    def test_zero(self):
        assert distance_m(LON, LAT, LON, LAT) == 0.0

    def test_one_degree_latitude(self):
        d = distance_m(LON, LAT, LON, LAT + 1.0)
        assert d == pytest.approx(111_195, rel=0.01)

    def test_longitude_shrinks_with_latitude(self):
        d_equator = distance_m(0, 0, 1, 0)
        d_dublin = distance_m(LON, LAT, LON + 1, LAT)
        assert d_dublin < d_equator
        assert d_dublin == pytest.approx(
            d_equator * math.cos(math.radians(LAT)), rel=0.01
        )

    def test_symmetry(self):
        a = distance_m(LON, LAT, LON + 0.01, LAT + 0.01)
        b = distance_m(LON + 0.01, LAT + 0.01, LON, LAT)
        assert a == pytest.approx(b)

    def test_close_predicate(self):
        near_lat = LAT + 100 / 111_195  # ~100 m north
        assert close(LON, LAT, LON, near_lat, radius_m=150)
        assert not close(LON, LAT, LON, near_lat, radius_m=50)


class TestSpatialGrid:
    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            SpatialGrid(0, LAT)

    def test_finds_items_in_radius(self):
        grid = SpatialGrid(150, LAT)
        grid.insert("here", LON, LAT)
        grid.insert("far", LON + 0.1, LAT)
        assert grid.near(LON, LAT) == ["here"]

    def test_empty_grid(self):
        grid = SpatialGrid(150, LAT)
        assert grid.near(LON, LAT) == []

    def test_boundary_items_found_across_cells(self):
        grid = SpatialGrid(150, LAT)
        # Place items just either side of a cell boundary.
        offset = 140 / 111_195
        grid.insert("north", LON, LAT + offset)
        grid.insert("south", LON, LAT - offset)
        found = set(grid.near(LON, LAT))
        assert found == {"north", "south"}

    @given(
        st.floats(-0.02, 0.02),
        st.floats(-0.02, 0.02),
    )
    def test_grid_matches_linear_scan(self, dlon, dlat):
        radius = 200.0
        grid = SpatialGrid(radius, LAT)
        points = [
            ("a", LON + 0.001, LAT),
            ("b", LON, LAT + 0.001),
            ("c", LON + 0.01, LAT + 0.01),
            ("d", LON - 0.015, LAT - 0.002),
        ]
        for name, plon, plat in points:
            grid.insert(name, plon, plat)
        qlon, qlat = LON + dlon, LAT + dlat
        expected = {
            name
            for name, plon, plat in points
            if distance_m(qlon, qlat, plon, plat) <= radius
        }
        assert set(grid.near(qlon, qlat)) == expected
