"""Unit and property-based tests for the maximal-interval algebra."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import (
    EFFECT_DELAY,
    IntervalList,
    count_threshold,
    intersect_all,
    make_intervals,
    relative_complement_all,
    union_all,
)

# ----------------------------------------------------------------------
# Construction / normalisation
# ----------------------------------------------------------------------
class TestNormalisation:
    def test_empty(self):
        assert not IntervalList()
        assert len(IntervalList()) == 0
        assert IntervalList.empty() == IntervalList()

    def test_drops_empty_intervals(self):
        assert IntervalList([(5, 5), (7, 6)]) == IntervalList()

    def test_sorts(self):
        il = IntervalList([(10, 12), (0, 2)])
        assert il.intervals == ((0, 2), (10, 12))

    def test_merges_overlapping(self):
        il = IntervalList([(0, 5), (3, 8)])
        assert il.intervals == ((0, 8),)

    def test_merges_adjacent(self):
        il = IntervalList([(0, 5), (5, 8)])
        assert il.intervals == ((0, 8),)

    def test_keeps_disjoint(self):
        il = IntervalList([(0, 5), (6, 8)])
        assert il.intervals == ((0, 5), (6, 8))

    def test_open_interval_swallows_later(self):
        il = IntervalList([(0, None), (5, 9)])
        assert il.intervals == ((0, None),)

    def test_open_interval_merges_with_overlap(self):
        il = IntervalList([(0, 4), (2, None)])
        assert il.intervals == ((0, None),)

    def test_single(self):
        assert IntervalList.single(3, 9).intervals == ((3, 9),)

    def test_equality_and_hash(self):
        a = IntervalList([(0, 5), (3, 8)])
        b = IntervalList([(0, 8)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != IntervalList([(0, 9)])


class TestHoldsAt:
    def test_inside(self):
        il = IntervalList([(3, 7)])
        assert il.holds_at(3)
        assert il.holds_at(6)

    def test_half_open(self):
        il = IntervalList([(3, 7)])
        assert not il.holds_at(7)
        assert not il.holds_at(2)

    def test_open_end(self):
        il = IntervalList([(3, None)])
        assert il.holds_at(10_000_000)
        assert not il.holds_at(2)

    def test_between_intervals(self):
        il = IntervalList([(0, 2), (5, 7)])
        assert not il.holds_at(3)


class TestAccessors:
    def test_first_last(self):
        il = IntervalList([(2, 4), (8, None)])
        assert il.first_start() == 2
        assert il.last_end() is None
        assert IntervalList().first_start() is None

    def test_total_duration(self):
        il = IntervalList([(0, 4), (10, 13)])
        assert il.total_duration() == 7

    def test_total_duration_open_requires_horizon(self):
        il = IntervalList([(0, None)])
        with pytest.raises(ValueError):
            il.total_duration()
        assert il.total_duration(horizon=5) == 5

    def test_total_duration_clamps_to_horizon(self):
        il = IntervalList([(0, 10)])
        assert il.total_duration(horizon=4) == 4

    def test_close_materialises_open_end(self):
        il = IntervalList([(3, None)])
        assert il.close(9).intervals == ((3, 9),)

    def test_close_drops_empty_result(self):
        il = IntervalList([(5, None)])
        assert il.close(5) == IntervalList()

    def test_close_noop_when_closed(self):
        il = IntervalList([(3, 7)])
        assert il.close(9) is il

    def test_clip(self):
        il = IntervalList([(0, 10), (20, None)])
        assert il.clip(5, 25).intervals == ((5, 10), (20, 25))


# ----------------------------------------------------------------------
# Algebra
# ----------------------------------------------------------------------
class TestAlgebra:
    def test_union(self):
        a = IntervalList([(0, 5)])
        b = IntervalList([(3, 9)])
        assert a.union(b).intervals == ((0, 9),)

    def test_intersect(self):
        a = IntervalList([(0, 5), (8, 12)])
        b = IntervalList([(3, 10)])
        assert a.intersect(b).intervals == ((3, 5), (8, 10))

    def test_intersect_with_open(self):
        a = IntervalList([(0, None)])
        b = IntervalList([(3, 10), (20, None)])
        assert a.intersect(b).intervals == ((3, 10), (20, None))

    def test_complement_finite_window(self):
        il = IntervalList([(3, 5)])
        assert il.complement(0, 10).intervals == ((0, 3), (5, 10))

    def test_complement_empty_source(self):
        assert IntervalList().complement(2, 6).intervals == ((2, 6),)

    def test_complement_open_window(self):
        il = IntervalList([(3, 5)])
        assert il.complement(0, None).intervals == ((0, 3), (5, None))

    def test_complement_of_open_interval(self):
        il = IntervalList([(3, None)])
        assert il.complement(0, 10).intervals == ((0, 3),)

    def test_union_all(self):
        lists = [IntervalList([(0, 2)]), IntervalList([(1, 5)]), IntervalList()]
        assert union_all(lists).intervals == ((0, 5),)
        assert union_all([]) == IntervalList()

    def test_intersect_all(self):
        lists = [
            IntervalList([(0, 10)]),
            IntervalList([(2, 12)]),
            IntervalList([(4, 6), (8, 20)]),
        ]
        assert intersect_all(lists).intervals == ((4, 6), (8, 10))
        assert intersect_all([]) == IntervalList()

    def test_relative_complement_all_paper_semantics(self):
        # sourceDisagreement: bus intervals minus SCATS intervals.
        bus = IntervalList([(0, 100)])
        scats = IntervalList([(30, 60)])
        result = relative_complement_all(bus, [scats])
        assert result.intervals == ((0, 30), (60, 100))

    def test_relative_complement_of_nothing(self):
        assert relative_complement_all(IntervalList(), [IntervalList([(0, 5)])]) == IntervalList()

    def test_relative_complement_with_no_cover(self):
        a = IntervalList([(0, 5)])
        assert relative_complement_all(a, [IntervalList()]) == a

    def test_relative_complement_multiple_lists(self):
        a = IntervalList([(0, 20)])
        covers = [IntervalList([(2, 4)]), IntervalList([(10, 15)])]
        assert relative_complement_all(a, covers).intervals == (
            (0, 2),
            (4, 10),
            (15, 20),
        )


class TestCountThreshold:
    def test_basic(self):
        lists = [
            IntervalList([(0, 10)]),
            IntervalList([(5, 15)]),
            IntervalList([(8, 20)]),
        ]
        assert count_threshold(lists, 2).intervals == ((5, 15),)
        assert count_threshold(lists, 3).intervals == ((8, 10),)

    def test_fewer_lists_than_threshold(self):
        assert count_threshold([IntervalList([(0, 5)])], 2) == IntervalList()

    def test_threshold_one_is_union(self):
        lists = [IntervalList([(0, 3)]), IntervalList([(5, 8)])]
        assert count_threshold(lists, 1) == union_all(lists)

    def test_open_intervals(self):
        lists = [IntervalList([(0, None)]), IntervalList([(5, None)])]
        assert count_threshold(lists, 2).intervals == ((5, None),)

    def test_count_recovers_after_gap(self):
        lists = [
            IntervalList([(0, 4), (10, 14)]),
            IntervalList([(0, 14)]),
        ]
        assert count_threshold(lists, 2).intervals == ((0, 4), (10, 14))

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            count_threshold([], 0)


class TestMakeIntervals:
    def test_init_then_term(self):
        il = make_intervals([3], [7])
        assert il.intervals == ((3 + EFFECT_DELAY, 7 + EFFECT_DELAY),)

    def test_unterminated_is_open(self):
        il = make_intervals([3], [])
        assert il.intervals == ((4, None),)

    def test_holding_at_start(self):
        il = make_intervals([], [5], holding_at_start=True, window_start=2)
        assert il.intervals == ((2, 6),)

    def test_holding_at_start_no_term(self):
        il = make_intervals([], [], holding_at_start=True, window_start=2)
        assert il.intervals == ((2, None),)

    def test_termination_wins_tie(self):
        il = make_intervals([5], [5])
        assert il == IntervalList()

    def test_termination_wins_tie_while_holding(self):
        il = make_intervals([5], [5], holding_at_start=True, window_start=0)
        assert il.intervals == ((0, 6),)

    def test_repeated_initiations_do_not_restart(self):
        il = make_intervals([1, 3, 5], [8])
        assert il.intervals == ((2, 9),)

    def test_repeated_terminations_ignored_when_not_holding(self):
        il = make_intervals([], [2, 4, 6])
        assert il == IntervalList()

    def test_alternating(self):
        il = make_intervals([1, 10], [5, 15])
        assert il.intervals == ((2, 6), (11, 16),)


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
finite_interval = st.tuples(
    st.integers(-100, 100), st.integers(-100, 100)
).map(lambda p: (min(p), max(p) + 1))

interval_lists = st.lists(finite_interval, max_size=8).map(IntervalList)


def _covered_points(il: IntervalList, lo: int = -120, hi: int = 120) -> set:
    return {t for t in range(lo, hi) if il.holds_at(t)}


@given(interval_lists)
def test_normalisation_invariants(il):
    ivs = il.intervals
    for s, e in ivs:
        assert e is None or e > s
    for (s1, e1), (s2, _) in zip(ivs, ivs[1:]):
        assert e1 is not None
        assert e1 < s2  # disjoint and non-adjacent


@given(interval_lists, interval_lists)
def test_union_is_pointwise_or(a, b):
    assert _covered_points(a.union(b)) == _covered_points(a) | _covered_points(b)


@given(interval_lists, interval_lists)
def test_intersect_is_pointwise_and(a, b):
    assert _covered_points(a.intersect(b)) == (
        _covered_points(a) & _covered_points(b)
    )


@given(interval_lists, interval_lists)
def test_union_commutes(a, b):
    assert a.union(b) == b.union(a)


@given(interval_lists, interval_lists)
def test_intersect_commutes(a, b):
    assert a.intersect(b) == b.intersect(a)


@given(interval_lists)
def test_union_idempotent(a):
    assert a.union(a) == a


@given(interval_lists)
def test_intersect_idempotent(a):
    assert a.intersect(a) == a


@given(interval_lists, st.lists(interval_lists, max_size=4))
def test_relative_complement_is_pointwise_difference(a, others):
    expected = _covered_points(a)
    for o in others:
        expected -= _covered_points(o)
    assert _covered_points(relative_complement_all(a, others)) == expected


@given(interval_lists)
def test_complement_partitions_window(a):
    comp = a.complement(-120, 120)
    pts_a = _covered_points(a)
    pts_c = _covered_points(comp)
    assert pts_a & pts_c == set()
    assert pts_a | pts_c == set(range(-120, 120))


@given(st.lists(interval_lists, min_size=1, max_size=5), st.integers(1, 5))
@settings(max_examples=60)
def test_count_threshold_pointwise(lists, n):
    result = count_threshold(lists, n)
    for t in range(-120, 120):
        active = sum(1 for lst in lists if lst.holds_at(t))
        assert result.holds_at(t) == (active >= n)


@given(
    st.lists(st.integers(0, 60), max_size=10),
    st.lists(st.integers(0, 60), max_size=10),
    st.booleans(),
)
def test_make_intervals_matches_inertia_simulation(inits, terms, holding):
    il = make_intervals(inits, terms, holding_at_start=holding, window_start=0)
    init_set, term_set = set(inits), set(terms)
    state = holding
    for t in range(0, 70):
        # Simulate inertia point by point (termination wins ties).
        if t - EFFECT_DELAY >= 0:
            cause = t - EFFECT_DELAY
            if cause in term_set:
                state = False
            elif cause in init_set:
                state = True
        assert il.holds_at(t) == state, f"mismatch at t={t}"


class TestIntervalAt:
    def test_returns_containing_interval(self):
        il = IntervalList([(3, 7), (10, None)])
        assert il.interval_at(5) == (3, 7)
        assert il.interval_at(3) == (3, 7)
        assert il.interval_at(7) is None
        assert il.interval_at(12) == (10, None)
        assert il.interval_at(0) is None

    def test_empty(self):
        assert IntervalList().interval_at(0) is None


@given(interval_lists, st.integers(-100, 100), st.integers(-100, 100))
def test_clip_is_pointwise_window_intersection(il, a, b):
    lo, hi = min(a, b), max(a, b) + 1
    clipped = il.clip(lo, hi)
    for t in range(-120, 120):
        expected = il.holds_at(t) and lo <= t < hi
        assert clipped.holds_at(t) == expected


@given(interval_lists, st.integers(-100, 120))
def test_close_materialises_open_end_pointwise(il, at):
    closed = il.close(at)
    for t in range(-120, 140):
        if il.last_end() is None and t >= at:
            # Points at/after the close bound in the open tail drop out.
            if il.intervals and t >= il.intervals[-1][0]:
                assert not closed.holds_at(t)
        elif il.holds_at(t) and (il.last_end() is not None or t < at):
            assert closed.holds_at(t)


@given(interval_lists)
def test_interval_at_consistent_with_holds_at(il):
    for t in range(-120, 120):
        containing = il.interval_at(t)
        assert (containing is not None) == il.holds_at(t)
        if containing is not None:
            start, end = containing
            assert start <= t
            assert end is None or t < end
