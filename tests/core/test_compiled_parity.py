"""Property-based parity: compiled columnar path vs the interpreter.

Hypothesis generates randomized SDE batches — arbitrary reading
values around the rule thresholds, delayed arrivals, duplicate
time-points, multi-window streams — and asserts that three engines
recognise *identical* output on them:

* incremental + compiled (the default columnar hot path, fed via
  ``feed_columns``),
* incremental + interpreter (``compiled=False``),
* legacy + interpreter (recompute per query, the reference
  semantics).

Any divergence — an ``np.int64`` leaking into a time-point, a payload
coerced through ``float64``, a run-window off-by-one in a vectorised
rule body — fails here with the generating batch minimised.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RTEC, Event
from repro.core.columns import SDEColumns
from repro.core.traffic import build_traffic_definitions, default_traffic_params

from .helpers import bus_report, make_topology

WINDOW = 600
STEP = 300
HORIZON = 4 * STEP

SENSORS = (("I1", "S1"), ("I1", "S2"), ("I2", "S1"))
BUSES = ("B1", "B2")


def _engines(topology):
    """(compiled-incremental, interpreter-incremental, legacy) triple."""
    params = default_traffic_params()
    engines = []
    for incremental, compiled in (
        (True, True),
        (True, False),
        (False, False),
    ):
        definitions = build_traffic_definitions(
            topology, adaptive=False, noisy_variant="pessimistic"
        )
        engines.append(
            RTEC(
                definitions,
                window=WINDOW,
                step=STEP,
                params=params,
                incremental=incremental,
                compiled=compiled,
            )
        )
    return engines


def _serialise(snapshot):
    """One query's output in an order-insensitive comparable form."""
    fluents = {
        name: {
            key: list(il)
            for key, il in sorted(groups.items())
            if len(il)
        }
        for name, groups in sorted(snapshot.fluents.items())
    }
    occurrences = {
        name: sorted(
            (o.key, o.time, sorted(o.payload.items())) for o in occs
        )
        for name, occs in sorted(snapshot.occurrences.items())
        if occs
    }
    return {
        "q": snapshot.query_time,
        "fluents": {k: v for k, v in fluents.items() if v},
        "occurrences": occurrences,
    }


@st.composite
def sde_batches(draw):
    """A randomized mixed SCATS/bus stream with delivery anomalies."""
    events = []
    facts = []
    n_traffic = draw(st.integers(min_value=0, max_value=30))
    for _ in range(n_traffic):
        t = draw(st.integers(min_value=1, max_value=HORIZON))
        intersection, sensor = draw(st.sampled_from(SENSORS))
        # Values straddle the congestion/trend thresholds so every
        # compiled rule shape fires on some batches.
        density = draw(
            st.floats(min_value=0.0, max_value=160.0, allow_nan=False)
        )
        flow = draw(
            st.floats(min_value=100.0, max_value=1200.0, allow_nan=False)
        )
        delay_s = draw(st.sampled_from((0, 0, 0, 150, 400)))
        events.append(
            Event(
                "traffic",
                t,
                {
                    "intersection": intersection,
                    "approach": "A",
                    "sensor": sensor,
                    "density": density,
                    "flow": flow,
                },
                arrival=t + delay_s,
            )
        )
    n_moves = draw(st.integers(min_value=0, max_value=12))
    for _ in range(n_moves):
        t = draw(st.integers(min_value=1, max_value=HORIZON))
        bus = draw(st.sampled_from(BUSES))
        delay = draw(st.integers(min_value=0, max_value=400))
        congestion = draw(st.integers(min_value=0, max_value=1))
        arrival_lag = draw(st.sampled_from((0, 0, 90)))
        move, gps = bus_report(
            t,
            bus=bus,
            congestion=congestion,
            delay=delay,
            arrival=t + arrival_lag,
        )
        events.append(move)
        facts.append(gps)
    # Exact duplicates stress tie-breaking and duplicate admission.
    if events and draw(st.booleans()):
        events.append(draw(st.sampled_from(events)))
    return events, facts


@settings(max_examples=25, deadline=None)
@given(batch=sde_batches())
def test_randomized_batches_identical_output(batch):
    events, facts = batch
    topology = make_topology(n_intersections=2)
    compiled_engine, interp_engine, legacy_engine = _engines(topology)

    # The compiled engine takes the columnar batch; the reference
    # engines take the object lists — the hand-off format must not
    # change recognition either.
    compiled_engine.feed_columns(SDEColumns.from_sdes(events, facts))
    interp_engine.feed(events, facts)
    legacy_engine.feed(events, facts)

    compiled_out = [_serialise(s) for s in compiled_engine.run(HORIZON)]
    interp_out = [_serialise(s) for s in interp_engine.run(HORIZON)]
    legacy_out = [_serialise(s) for s in legacy_engine.run(HORIZON)]

    assert compiled_out == interp_out
    assert compiled_out == legacy_out


@settings(max_examples=15, deadline=None)
@given(
    deltas=st.lists(
        st.integers(min_value=-120, max_value=120),
        min_size=2,
        max_size=10,
    ),
    period=st.sampled_from((20, 30, 60)),
)
def test_trend_runs_identical_output(deltas, period):
    """Focused monotone-run stress for the flattened trend compiler:
    consecutive readings of one sensor with arbitrary steps."""
    topology = make_topology()
    compiled_engine, interp_engine, _ = _engines(topology)
    value = 60.0
    events = []
    for i, delta in enumerate(deltas):
        value = max(0.0, value + float(delta))
        events.append(
            Event(
                "traffic",
                (i + 1) * period,
                {
                    "intersection": "I1",
                    "approach": "A",
                    "sensor": "S1",
                    "density": value,
                    "flow": 800.0,
                },
            )
        )
    compiled_engine.feed_columns(SDEColumns.from_sdes(events, []))
    interp_engine.feed(events, [])
    compiled_out = [_serialise(s) for s in compiled_engine.run(HORIZON)]
    interp_out = [_serialise(s) for s in interp_engine.run(HORIZON)]
    assert compiled_out == interp_out
