"""Tests for the event/fluent record types."""

import pytest

from repro.core.events import Event, FluentFact, Occurrence


class TestEvent:
    def test_arrival_defaults_to_occurrence(self):
        ev = Event("move", 10, {"bus": "B1"})
        assert ev.arrival == 10

    def test_arrival_may_be_later(self):
        ev = Event("move", 10, {"bus": "B1"}, arrival=25)
        assert ev.arrival == 25

    def test_arrival_before_occurrence_rejected(self):
        with pytest.raises(ValueError):
            Event("move", 10, {}, arrival=9)

    def test_payload_access(self):
        ev = Event("move", 10, {"bus": "B1", "delay": 30})
        assert ev["bus"] == "B1"
        assert ev.get("delay") == 30
        assert ev.get("missing", 42) == 42

    def test_payload_is_read_only(self):
        ev = Event("move", 10, {"bus": "B1"})
        with pytest.raises(TypeError):
            ev.payload["bus"] = "B2"

    def test_replace_payload(self):
        ev = Event("move", 10, {"bus": "B1", "delay": 30}, arrival=12)
        ev2 = ev.replace_payload(delay=60)
        assert ev2["delay"] == 60
        assert ev2["bus"] == "B1"
        assert ev2.time == 10
        assert ev2.arrival == 12
        assert ev["delay"] == 30  # original untouched


class TestFluentFact:
    def test_key_coerced_to_tuple(self):
        fact = FluentFact("gps", ["B1"], {"lon": 0.0}, 5)
        assert fact.key == ("B1",)

    def test_dict_value_frozen(self):
        fact = FluentFact("gps", ("B1",), {"lon": 0.0}, 5)
        with pytest.raises(TypeError):
            fact.value["lon"] = 1.0

    def test_scalar_value_allowed(self):
        fact = FluentFact("mode", ("B1",), "express", 5)
        assert fact.value == "express"

    def test_arrival_validation(self):
        with pytest.raises(ValueError):
            FluentFact("gps", ("B1",), {}, 10, arrival=3)


class TestOccurrence:
    def test_key_coerced(self):
        occ = Occurrence("delayIncrease", ["B1"], 7, {"delay_increase": 90})
        assert occ.key == ("B1",)
        assert occ["delay_increase"] == 90
        assert occ.get("nope") is None

    def test_as_event_roundtrip(self):
        occ = Occurrence("crowdRequest", ("I1",), 7, {"intersection": "I1"})
        ev = occ.as_event()
        assert ev.type == "crowdRequest"
        assert ev.time == 7
        assert ev["intersection"] == "I1"
        assert ev["key"] == ("I1",)
