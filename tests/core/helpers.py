"""Shared builders for the traffic CE rule tests."""

from repro.core import RTEC, Event, FluentFact
from repro.core.traffic import (
    Intersection,
    ScatsTopology,
    build_traffic_definitions,
    default_traffic_params,
)

LON, LAT = -6.26, 53.35
#: ~one metre in degrees of latitude.
M = 1 / 111_195


def make_topology(n_intersections=1, sensors_per_intersection=2, spacing=0.02):
    """A line of intersections ``I1..In`` spaced well apart."""
    intersections = []
    for i in range(1, n_intersections + 1):
        int_id = f"I{i}"
        sensors = tuple(
            (int_id, "A", f"S{j}") for j in range(1, sensors_per_intersection + 1)
        )
        intersections.append(
            Intersection(int_id, LON + (i - 1) * spacing, LAT, sensors)
        )
    return ScatsTopology(intersections, close_radius_m=150.0)


def traffic_event(t, intersection="I1", sensor="S1", density=20.0, flow=900.0,
                  approach="A", arrival=None):
    """A SCATS ``traffic(Int, A, S, D, F)`` SDE."""
    return Event(
        "traffic",
        t,
        {
            "intersection": intersection,
            "approach": approach,
            "sensor": sensor,
            "density": density,
            "flow": flow,
        },
        arrival=arrival,
    )


CONGESTED = dict(density=90.0, flow=300.0)
FREE = dict(density=20.0, flow=900.0)


def bus_report(t, bus="B1", lon=LON, lat=LAT, congestion=0, delay=0,
               line="L1", operator="O1", direction=0, arrival=None):
    """A bus ``move`` SDE plus its paired ``gps`` fluent fact."""
    move = Event(
        "move",
        t,
        {"bus": bus, "line": line, "operator": operator, "delay": delay},
        arrival=arrival,
    )
    gps = FluentFact(
        "gps",
        (bus,),
        {"lon": lon, "lat": lat, "direction": direction,
         "congestion": congestion},
        t,
        arrival=arrival,
    )
    return move, gps


def crowd_event(t, intersection="I1", value="negative", lon=LON, lat=LAT):
    """A ``crowd(LonInt, LatInt, Val)`` SDE from the crowdsourcing side."""
    return Event(
        "crowd",
        t,
        {"intersection": intersection, "lon": lon, "lat": lat, "value": value},
    )


def make_engine(topology=None, *, adaptive=False, noisy_variant="crowd",
                window=3600, step=3600, params=None):
    """An RTEC engine with the full traffic definition suite."""
    topo = topology or make_topology()
    merged = default_traffic_params()
    merged.update(params or {})
    definitions = build_traffic_definitions(
        topo, adaptive=adaptive, noisy_variant=noisy_variant
    )
    return RTEC(definitions, window=window, step=step, params=merged)


def feed_reports(engine, reports):
    """Feed ``(move, gps)`` pairs produced by :func:`bus_report`."""
    engine.feed(
        events=[m for m, _ in reports],
        facts=[g for _, g in reports],
    )
