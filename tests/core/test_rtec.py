"""Tests for the RTEC engine: windowing, inertia, delayed arrivals."""

import pytest

from repro.core.events import Event, Occurrence
from repro.core.intervals import IntervalList
from repro.core.rtec import RTEC, RecognitionLog
from repro.core.rules import (
    FunctionalEvent,
    FunctionalSimpleFluent,
    FunctionalStaticFluent,
)


def _switch_fluent(name="power"):
    """A fluent initiated by 'on' events and terminated by 'off'."""
    return FunctionalSimpleFluent(
        name,
        initiated=lambda ctx: [
            ((e["id"],), e.time) for e in ctx.events("on")
        ],
        terminated=lambda ctx: [
            ((e["id"],), e.time) for e in ctx.events("off")
        ],
    )


def _echo_event(name="echo", source="ping"):
    """A derived event mirroring every input event of type `source`."""
    return FunctionalEvent(
        name,
        lambda ctx: [
            Occurrence(name, (e["id"],), e.time) for e in ctx.events(source)
        ],
    )


class TestEngineValidation:
    def test_bad_window(self):
        with pytest.raises(ValueError):
            RTEC([], window=0, step=1)

    def test_step_larger_than_window(self):
        with pytest.raises(ValueError, match="step"):
            RTEC([], window=5, step=10)

    def test_query_times_must_increase(self):
        eng = RTEC([], window=10, step=5)
        eng.query(10)
        with pytest.raises(ValueError, match="increasing"):
            eng.query(10)

    def test_negative_event_time_rejected(self):
        # A negative stamp is always a mediator bug (or an injected
        # corruption); accepting it would seed windows before time 0.
        eng = RTEC([_switch_fluent()], window=10, step=5)
        with pytest.raises(ValueError, match="negative"):
            eng.feed([Event("on", -5, {"id": "x"})])

    def test_negative_fact_time_rejected(self):
        from repro.core.events import FluentFact

        eng = RTEC([_switch_fluent()], window=10, step=5)
        with pytest.raises(ValueError, match="negative"):
            eng.feed([], facts=[FluentFact("gps", ("b",), {"v": 1}, -1)])

    def test_valid_events_before_the_bad_one_are_kept(self):
        # feed() appends as it validates; the good prefix must still
        # be queryable after the rejection.
        eng = RTEC([_switch_fluent()], window=100, step=100)
        with pytest.raises(ValueError, match="negative"):
            eng.feed([
                Event("on", 10, {"id": "x"}),
                Event("on", -1, {"id": "y"}),
            ])
        snapshot = eng.query(100)
        assert snapshot.holds_at("power", ("x",), 50)


class TestSimpleFluentRecognition:
    def test_basic_episode(self):
        eng = RTEC([_switch_fluent()], window=100, step=100)
        eng.feed([
            Event("on", 10, {"id": "x"}),
            Event("off", 40, {"id": "x"}),
        ])
        snap = eng.query(100)
        assert snap.intervals("power", ("x",)).intervals == ((11, 41),)

    def test_ongoing_episode_is_open(self):
        eng = RTEC([_switch_fluent()], window=100, step=100)
        eng.feed([Event("on", 10, {"id": "x"})])
        snap = eng.query(100)
        assert snap.intervals("power", ("x",)).intervals == ((11, None),)

    def test_inertia_across_windows(self):
        eng = RTEC([_switch_fluent()], window=50, step=50)
        eng.feed([Event("on", 10, {"id": "x"})])
        eng.query(50)
        # No events at all in the second window; the fluent persists
        # and the episode keeps its historical start (interval
        # retention across windows).
        snap = eng.query(100)
        assert snap.holds_at("power", ("x",), 75)
        assert snap.intervals("power", ("x",)).intervals == ((11, None),)

    def test_inertia_then_termination_in_later_window(self):
        eng = RTEC([_switch_fluent()], window=50, step=50)
        eng.feed([Event("on", 10, {"id": "x"})])
        eng.query(50)
        eng.feed([Event("off", 70, {"id": "x"})])
        snap = eng.query(100)
        assert snap.intervals("power", ("x",)).intervals == ((11, 71),)

    def test_initiation_at_query_time_not_lost(self):
        # An event at exactly t = Q takes effect at Q+1, outside the
        # current window's span; the next window must still see the
        # fluent holding (seeding happens at window_start + 1).
        eng = RTEC([_switch_fluent()], window=50, step=50)
        eng.feed([Event("on", 50, {"id": "x"})])
        eng.query(50)
        snap = eng.query(100)
        assert snap.intervals("power", ("x",)).intervals == ((51, None),)

    def test_termination_at_query_time_not_lost(self):
        eng = RTEC([_switch_fluent()], window=50, step=50)
        eng.feed([
            Event("on", 10, {"id": "x"}),
            Event("off", 50, {"id": "x"}),
        ])
        eng.query(50)
        snap = eng.query(100)
        assert not snap.intervals("power", ("x",))

    def test_no_inertia_without_initiation(self):
        eng = RTEC([_switch_fluent()], window=50, step=50)
        eng.feed([Event("off", 10, {"id": "x"})])
        snap = eng.query(50)
        assert snap.intervals("power", ("x",)) == IntervalList()

    def test_multiple_groundings_independent(self):
        eng = RTEC([_switch_fluent()], window=100, step=100)
        eng.feed([
            Event("on", 10, {"id": "x"}),
            Event("on", 20, {"id": "y"}),
            Event("off", 30, {"id": "x"}),
        ])
        snap = eng.query(100)
        assert snap.intervals("power", ("x",)).intervals == ((11, 31),)
        assert snap.intervals("power", ("y",)).intervals == ((21, None),)


class TestWindowing:
    def test_events_outside_window_discarded(self):
        eng = RTEC([_echo_event()], window=50, step=50)
        eng.feed([
            Event("ping", 10, {"id": "early"}),
            Event("ping", 80, {"id": "late"}),
        ])
        snap = eng.query(100)  # window (50, 100]
        ids = [o.key[0] for o in snap.all_occurrences("echo")]
        assert ids == ["late"]

    def test_event_not_yet_arrived_is_invisible(self):
        eng = RTEC([_echo_event()], window=100, step=50)
        eng.feed([Event("ping", 30, {"id": "slow"}, arrival=70)])
        snap = eng.query(50)
        assert snap.all_occurrences("echo") == []

    def test_delayed_event_caught_when_window_exceeds_step(self):
        # The paper's Figure 2: with WM > step, an SDE occurring before
        # Q_{i-1} but arriving after it is considered at Q_i.
        eng = RTEC([_echo_event()], window=100, step=50)
        eng.feed([Event("ping", 30, {"id": "slow"}, arrival=70)])
        eng.query(50)
        snap = eng.query(100)  # window (0, 100] now includes t=30
        ids = [o.key[0] for o in snap.all_occurrences("echo")]
        assert ids == ["slow"]

    def test_delayed_event_lost_when_window_equals_step(self):
        eng = RTEC([_echo_event()], window=50, step=50)
        eng.feed([Event("ping", 30, {"id": "slow"}, arrival=70)])
        eng.query(50)
        snap = eng.query(100)  # window (50, 100] no longer covers t=30
        assert snap.all_occurrences("echo") == []

    def test_n_events_counts_window_contents(self):
        eng = RTEC([_echo_event()], window=50, step=50)
        eng.feed([Event("ping", t, {"id": str(t)}) for t in (10, 20, 60, 70)])
        assert eng.query(50).n_events == 2
        assert eng.query(100).n_events == 2

    def test_feed_after_query_is_accepted(self):
        eng = RTEC([_echo_event()], window=50, step=50)
        eng.feed([Event("ping", 10, {"id": "a"})])
        eng.query(50)
        eng.feed([Event("ping", 60, {"id": "b"})])
        snap = eng.query(100)
        assert [o.key[0] for o in snap.all_occurrences("echo")] == ["b"]

    def test_unsorted_feed(self):
        eng = RTEC([_echo_event()], window=100, step=100)
        eng.feed([
            Event("ping", 50, {"id": "b"}),
            Event("ping", 10, {"id": "a"}),
        ])
        snap = eng.query(100)
        assert [o.key[0] for o in snap.all_occurrences("echo")] == ["a", "b"]

    def test_run_generates_all_query_times(self):
        eng = RTEC([_echo_event()], window=20, step=10)
        snaps = list(eng.run(45))
        assert [s.query_time for s in snaps] == [10, 20, 30, 40]
        # Continuation picks up where run() stopped.
        more = list(eng.run(60))
        assert [s.query_time for s in more] == [50, 60]


class TestStaticFluents:
    def test_static_fluent_sees_lower_stratum(self):
        power = _switch_fluent()
        inverse = FunctionalStaticFluent(
            "dark",
            lambda ctx: {
                key: ivs.complement(ctx.window_start, ctx.window_end)
                for key, ivs in ctx.fluent("power").items()
            },
            depends_on=("power",),
        )
        eng = RTEC([inverse, power], window=100, step=100)
        eng.feed([
            Event("on", 10, {"id": "x"}),
            Event("off", 40, {"id": "x"}),
        ])
        snap = eng.query(100)
        assert snap.intervals("dark", ("x",)).intervals == ((0, 11), (41, 100))


class TestRecognitionLog:
    def test_occurrences_deduplicated_across_windows(self):
        eng = RTEC([_echo_event()], window=100, step=50)
        eng.feed([Event("ping", 40, {"id": "a"})])
        log = RecognitionLog()
        fresh1 = log.add(eng.query(50))
        fresh2 = log.add(eng.query(100))  # same occurrence still in window
        assert len(fresh1.of_type("echo")) == 1
        assert len(fresh2.of_type("echo")) == 0

    def test_episodes_deduplicated_by_start(self):
        eng = RTEC([_switch_fluent()], window=100, step=50)
        eng.feed([Event("on", 10, {"id": "x"})])
        log = RecognitionLog()
        fresh1 = log.add(eng.query(50))
        fresh2 = log.add(eng.query(100))
        assert len(fresh1.episodes_of("power")) == 1
        assert len(fresh2.episodes_of("power")) == 0

    def test_elapsed_accounting(self):
        eng = RTEC([_echo_event()], window=100, step=50)
        log = RecognitionLog()
        log.add(eng.query(50))
        log.add(eng.query(100))
        assert log.total_elapsed >= 0.0
        assert log.mean_elapsed == pytest.approx(log.total_elapsed / 2)
        assert RecognitionLog().mean_elapsed == 0.0


class TestStateInspection:
    def test_cached_intervals_between_queries(self):
        eng = RTEC([_switch_fluent()], window=100, step=50)
        eng.feed([Event("on", 10, {"id": "x"})])
        eng.query(50)
        assert eng.cached_intervals("power", ("x",)).holds_at(30)
        assert eng.cached_intervals("power", ("y",)) == IntervalList()

    def test_currently_holds(self):
        eng = RTEC([_switch_fluent()], window=100, step=50)
        assert not eng.currently_holds("power", ("x",))
        eng.feed([
            Event("on", 10, {"id": "x"}),
            Event("off", 40, {"id": "y"}),
        ])
        eng.query(50)
        assert eng.currently_holds("power", ("x",))
        assert not eng.currently_holds("power", ("y",))
