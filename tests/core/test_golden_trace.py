"""Golden-trace differential tests for the recognition engine.

The checked-in fixture ``tests/golden/traffic_small.json`` was
recorded from the pre-incremental engine over a deterministic
miniature Dublin scenario whose feed carries natural arrival delays.
These tests assert, for every recorded (window, step) pair and for
both the static and the self-adaptive rule suites, that

* the incremental engine (cross-window caching on, the default),
* the legacy engine (``incremental=False``, recompute per query),

each reproduce the golden trace exactly — query times, SDE counts,
fluent intervals and CE occurrences included.  Any hot-path change
that alters recognition output fails here until the fixture is
deliberately re-recorded (``python tests/golden/record_golden.py``)
and the diff reviewed.
"""

import json

import pytest

from tests.golden.record_golden import (
    GOLDEN_PATH,
    HORIZON,
    golden_scenario,
    run_trace,
)


@pytest.fixture(scope="module")
def golden_document():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def golden_stream():
    scenario = golden_scenario()
    return scenario, scenario.generate(0, HORIZON + 600)


def _config_id(entry):
    cfg = entry["config"]
    suite = "adaptive" if cfg["adaptive"] else "static"
    return f"w{cfg['window']}-s{cfg['step']}-{suite}"


def _trace_entries():
    return json.loads(GOLDEN_PATH.read_text())["traces"]


@pytest.mark.parametrize("entry", _trace_entries(), ids=_config_id)
@pytest.mark.parametrize(
    "compiled", [True, False], ids=["compiled", "interp"]
)
@pytest.mark.parametrize("incremental", [True, False], ids=["incr", "legacy"])
def test_engine_matches_golden(golden_stream, entry, incremental, compiled):
    scenario, data = golden_stream
    trace = run_trace(
        scenario,
        data,
        **entry["config"],
        incremental=incremental,
        compiled=compiled,
    )
    assert trace == entry["queries"]


@pytest.mark.parametrize("entry", _trace_entries(), ids=_config_id)
def test_columnar_feed_matches_golden(golden_stream, entry):
    """The batch-admission path (``feed_columns`` with one
    struct-of-arrays batch) recognises exactly what the recorded
    object-feed path did."""
    from repro.core.columns import SDEColumns
    from tests.golden.record_golden import (
        HORIZON,
        build_engine,
        serialise_snapshot,
    )

    scenario, data = golden_stream
    engine = build_engine(scenario, **entry["config"])
    engine.feed_columns(SDEColumns.from_sdes(data.events, data.facts))
    trace = [serialise_snapshot(s) for s in engine.run(HORIZON)]
    assert trace == entry["queries"]


def test_fixture_covers_both_rule_suites(golden_document):
    suites = {t["config"]["adaptive"] for t in golden_document["traces"]}
    assert suites == {True, False}


def test_fixture_covers_overlapping_windows(golden_document):
    """At least one recorded pair overlaps (window > step) — otherwise
    the differential would never exercise the cross-window cache."""
    overlaps = [
        t["config"]
        for t in golden_document["traces"]
        if t["config"]["window"] > t["config"]["step"]
    ]
    assert overlaps


def test_fixture_stream_carries_arrival_delays(golden_stream):
    """The recorded scenario must include SDEs arriving after their
    occurrence time, so the golden differential exercises the
    incremental engine's late-arrival invalidation, not just the happy
    path."""
    _, data = golden_stream
    delayed = sum(1 for ev in data.events if ev.arrival > ev.time)
    delayed += sum(1 for f in data.facts if f.arrival > f.time)
    assert delayed > 0


def test_cache_actually_engages_on_golden_scenario(golden_stream):
    """Guard against silent fallback: on the high-overlap golden config
    the incremental engine must report cache reuse (and, given the
    stream's natural delays, invalidations) — identical output alone
    could also mean the cache never fired."""
    from tests.golden.record_golden import build_engine

    scenario, data = golden_stream
    engine = build_engine(scenario, window=1200, step=300, adaptive=True)
    engine.feed(data.events, data.facts)
    hits = invalidations = 0
    for snapshot in engine.run(HORIZON):
        hits += snapshot.cache_hits
        invalidations += snapshot.cache_invalidations
    assert hits > 0
    assert invalidations > 0
