"""Property-based tests for the maximal-interval algebra.

Every construct of :mod:`repro.core.intervals` is checked against a
brute-force point-wise oracle on random interval lists: a fluent
"holds" at ``t`` iff some interval covers ``t``, so union is pointwise
OR, intersection pointwise AND, relative complement pointwise
AND-NOT, and ``count_threshold`` a pointwise count.  Open intervals
(``end=None``) are probed both inside the sampled domain and at a far
point, so "holds forever" cannot silently degrade into "holds until
the largest sampled bound".

The suite doubles as the safety net for the sorted fast paths: the
algebra's sweep algorithms hand their output to the trusted
``_from_normalised`` constructor without re-normalising, so every test
also asserts the result is a *normalisation fixpoint* — re-normalising
it changes nothing.  A fast path that ever emitted a denormalised
tuple would fail here long before it corrupted recognition output.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import (
    EFFECT_DELAY,
    IntervalList,
    count_threshold,
    intersect_all,
    make_intervals,
    relative_complement_all,
    union_all,
)

#: Sampled coordinate range; probes extend past it on both sides.
LO, HI = -8, 40
#: Probe points: the whole sampled range plus a far point that only
#: open intervals can reach.
PROBES = tuple(range(LO - 3, HI + 4)) + (10**6,)

ends = st.one_of(st.none(), st.integers(LO, HI))
raw_intervals = st.lists(
    st.tuples(st.integers(LO, HI), ends), max_size=8
)
interval_lists = raw_intervals.map(IntervalList)
lists_of_lists = st.lists(interval_lists, max_size=6)


def oracle_holds(lst: IntervalList, t: int) -> bool:
    """Point-wise membership, computed from the raw tuples."""
    return any(
        start <= t and (end is None or t < end) for start, end in lst
    )


def assert_normal_form(lst: IntervalList) -> None:
    """The list must be sorted, disjoint, non-adjacent, with non-empty
    intervals and any open interval last — and be a fixpoint of the
    normalising constructor (the fast-path safety check)."""
    ivs = lst.intervals
    for i, (start, end) in enumerate(ivs):
        assert end is None or end > start, ivs
        if i:
            prev_end = ivs[i - 1][1]
            assert prev_end is not None, ivs  # open interval not last
            assert start > prev_end, ivs  # overlap or adjacency
    assert IntervalList(ivs).intervals == ivs


@given(raw_intervals)
def test_constructor_normalises(raw):
    lst = IntervalList(raw)
    assert_normal_form(lst)
    for t in PROBES:
        expected = any(
            s <= t and (e is None or t < e) for s, e in raw if e is None or e > s
        )
        assert lst.holds_at(t) == expected


@given(raw_intervals, st.randoms(use_true_random=False))
def test_constructor_is_order_insensitive(raw, rng):
    shuffled = list(raw)
    rng.shuffle(shuffled)
    assert IntervalList(shuffled) == IntervalList(raw)


@given(lists_of_lists)
def test_union_all_is_pointwise_or(lists):
    result = union_all(lists)
    assert_normal_form(result)
    for t in PROBES:
        assert result.holds_at(t) == any(
            oracle_holds(lst, t) for lst in lists
        )


@given(lists_of_lists)
def test_intersect_all_is_pointwise_and(lists):
    result = intersect_all(lists)
    assert_normal_form(result)
    for t in PROBES:
        expected = bool(lists) and all(
            oracle_holds(lst, t) for lst in lists
        )
        assert result.holds_at(t) == expected


@given(interval_lists, interval_lists)
def test_binary_union_and_intersect(a, b):
    union = a.union(b)
    inter = a.intersect(b)
    assert_normal_form(union)
    assert_normal_form(inter)
    for t in PROBES:
        assert union.holds_at(t) == (oracle_holds(a, t) or oracle_holds(b, t))
        assert inter.holds_at(t) == (oracle_holds(a, t) and oracle_holds(b, t))


@given(interval_lists, lists_of_lists)
def test_relative_complement_is_pointwise_and_not(primary, others):
    result = relative_complement_all(primary, others)
    assert_normal_form(result)
    for t in PROBES:
        expected = oracle_holds(primary, t) and not any(
            oracle_holds(lst, t) for lst in others
        )
        assert result.holds_at(t) == expected


@given(lists_of_lists, st.integers(1, 4))
def test_count_threshold_is_pointwise_count(lists, n):
    result = count_threshold(lists, n)
    assert_normal_form(result)
    for t in PROBES:
        covering = sum(1 for lst in lists if oracle_holds(lst, t))
        assert result.holds_at(t) == (covering >= n)


@given(
    interval_lists,
    st.integers(LO - 2, HI + 2),
    st.one_of(st.none(), st.integers(LO - 2, HI + 2)),
)
def test_complement_is_pointwise_not_within_window(lst, w_start, w_end):
    result = lst.complement(w_start, w_end)
    assert_normal_form(result)
    for t in PROBES:
        in_window = w_start <= t and (w_end is None or t < w_end)
        assert result.holds_at(t) == (in_window and not oracle_holds(lst, t))


@settings(max_examples=200)
@given(
    st.lists(st.integers(LO, HI), max_size=8),
    st.lists(st.integers(LO, HI), max_size=8),
    st.booleans(),
)
def test_make_intervals_matches_state_machine(inits, terms, holding):
    window_start = LO - 1
    result = make_intervals(
        inits, terms, holding_at_start=holding, window_start=window_start
    )
    assert_normal_form(result)
    init_set, term_set = set(inits), set(terms)
    # Oracle: march point by point applying inertia; termination wins
    # over a simultaneous initiation and effects start EFFECT_DELAY
    # after the triggering point.
    state = holding
    expected_holds = {}
    for t in range(window_start, HI + 3):
        prev = t - EFFECT_DELAY
        if prev in term_set:
            state = False
        elif prev in init_set:
            state = True
        expected_holds[t] = state
    for t, expected in expected_holds.items():
        assert result.holds_at(t) == expected, (t, result, inits, terms)
    # Past the sampled range the state can never change again.
    assert result.holds_at(10**6) == state
