"""Tests for the structured intersection-congestion definitions and
the crowd-based SCATS reliability evaluation (the parts Section 4.3
mentions but leaves unformalised)."""

import pytest

from repro.core import RTEC
from repro.core.intervals import IntervalList
from repro.core.traffic import (
    Intersection,
    ScatsTopology,
    build_traffic_definitions,
    default_traffic_params,
)

from .helpers import CONGESTED, FREE, LAT, LON, bus_report, crowd_event, \
    feed_reports, traffic_event


def _multi_approach_topology():
    """One intersection with two approaches of two sensors each."""
    sensors = tuple(
        ("I1", approach, sensor)
        for approach in ("N", "E")
        for sensor in ("S1", "S2")
    )
    return ScatsTopology(
        [Intersection("I1", LON, LAT, sensors)], close_radius_m=150.0
    )


def _engine(topology, *, structured=True, scats_reliability=False,
            adaptive=None, params=None):
    if adaptive is None:
        adaptive = scats_reliability
    merged = default_traffic_params()
    merged.update(params or {})
    definitions = build_traffic_definitions(
        topology,
        adaptive=adaptive,
        noisy_variant="crowd",
        structured_intersections=structured,
        scats_reliability=scats_reliability,
    )
    return RTEC(definitions, window=3600, step=3600, params=merged)


class TestApproachCongestion:
    def test_approach_congested_when_enough_sensors(self):
        topo = _multi_approach_topology()
        eng = _engine(topo, params={"scats.approach_sensor_count": 2})
        eng.feed([
            traffic_event(100, approach="N", sensor="S1", **CONGESTED),
            traffic_event(100, approach="N", sensor="S2", **CONGESTED),
            traffic_event(100, approach="E", sensor="S1", **CONGESTED),
            traffic_event(100, approach="E", sensor="S2", **FREE),
        ])
        snap = eng.query(3600)
        assert snap.intervals("approachCongestion", ("I1", "N")).holds_at(200)
        assert not snap.intervals("approachCongestion", ("I1", "E"))

    def test_default_single_sensor_per_approach_suffices(self):
        topo = _multi_approach_topology()
        eng = _engine(topo)  # approach_sensor_count default 1
        eng.feed([traffic_event(100, approach="N", sensor="S1", **CONGESTED)])
        snap = eng.query(3600)
        assert snap.intervals("approachCongestion", ("I1", "N")).holds_at(200)


class TestStructuredIntersectionCongestion:
    def test_needs_enough_congested_approaches(self):
        topo = _multi_approach_topology()
        eng = _engine(topo)  # intersection_approach_count default 2
        # Only approach N congested: not enough.
        eng.feed([traffic_event(100, approach="N", sensor="S1", **CONGESTED)])
        snap = eng.query(3600)
        assert not snap.intervals("scatsIntCongestion", ("I1",))

    def test_congested_when_both_approaches_are(self):
        topo = _multi_approach_topology()
        eng = _engine(topo)
        eng.feed([
            traffic_event(100, approach="N", sensor="S1", **CONGESTED),
            traffic_event(460, approach="E", sensor="S1", **CONGESTED),
            traffic_event(820, approach="N", sensor="S1", **FREE),
        ])
        snap = eng.query(3600)
        assert snap.intervals("scatsIntCongestion", ("I1",)).intervals == (
            (461, 821),
        )

    def test_feeds_downstream_veracity_rules(self):
        # The structured definition keeps the same fluent name, so the
        # bus-side disagree/agree comparisons work unchanged.
        topo = _multi_approach_topology()
        eng = _engine(topo, scats_reliability=False, adaptive=True)
        eng.feed([
            traffic_event(1, approach="N", sensor="S1", **FREE),
            traffic_event(1, approach="E", sensor="S1", **FREE),
        ])
        feed_reports(eng, [bus_report(100, congestion=1)])
        snap = eng.query(3600)
        assert snap.all_occurrences("disagree")


class TestNoisyScats:
    def _setup(self, crowd_value):
        topo = _multi_approach_topology()
        eng = _engine(topo, structured=False, scats_reliability=True)
        # SCATS says free everywhere.
        eng.feed([
            traffic_event(1, approach="N", sensor="S1", **FREE),
            traffic_event(1, approach="N", sensor="S2", **FREE),
            traffic_event(1, approach="E", sensor="S1", **FREE),
            traffic_event(1, approach="E", sensor="S2", **FREE),
        ])
        # A bus disagrees (reports congestion) at t=100; the crowd
        # answers at t=400.
        feed_reports(eng, [bus_report(100, congestion=1)])
        eng.feed([crowd_event(400, value=crowd_value)])
        return eng

    def test_scats_noisy_when_crowd_contradicts_sensors(self):
        eng = self._setup("positive")  # crowd: there IS congestion
        snap = eng.query(3600)
        assert snap.intervals("noisyScats", ("I1",)).intervals == (
            (401, None),
        )

    def test_scats_trusted_when_crowd_confirms(self):
        eng = self._setup("negative")  # crowd agrees with the sensors
        snap = eng.query(3600)
        assert not snap.intervals("noisyScats", ("I1",))

    def test_crowd_answer_without_disagreement_ignored(self):
        topo = _multi_approach_topology()
        eng = _engine(topo, structured=False, scats_reliability=True)
        eng.feed([traffic_event(1, approach="N", sensor="S1", **FREE)])
        eng.feed([crowd_event(400, value="positive")])
        snap = eng.query(3600)
        assert not snap.intervals("noisyScats", ("I1",))

    def test_rehabilitated_by_later_confirmation(self):
        eng = self._setup("positive")
        # A second disagreement later; this time the crowd sides with
        # the sensors.
        feed_reports(eng, [bus_report(1000, congestion=1)])
        eng.feed([crowd_event(1300, value="negative")])
        snap = eng.query(3600)
        assert snap.intervals("noisyScats", ("I1",)).intervals == (
            (401, 1301),
        )


class TestTrustedScatsCongestion:
    def test_noisy_interval_removed_from_congestion(self):
        topo = _multi_approach_topology()
        eng = _engine(topo, structured=False, scats_reliability=True)
        # SCATS reports congestion throughout.
        eng.feed([
            traffic_event(1, approach="N", sensor="S1", **CONGESTED),
            traffic_event(1, approach="N", sensor="S2", **CONGESTED),
        ])
        # A bus disagrees (reports free flow) at 100, and the crowd
        # confirms the bus at 400: the sensors become noisy.
        feed_reports(eng, [bus_report(100, congestion=0)])
        eng.feed([crowd_event(400, value="negative")])
        snap = eng.query(3600)
        scats = snap.intervals("scatsIntCongestion", ("I1",))
        trusted = snap.intervals("trustedScatsCongestion", ("I1",))
        assert scats.holds_at(1000)
        assert not trusted.holds_at(1000)
        assert trusted.holds_at(200)  # before the verdict it was trusted

    def test_requires_adaptive(self):
        topo = _multi_approach_topology()
        with pytest.raises(ValueError, match="adaptive"):
            build_traffic_definitions(
                topo, adaptive=False, scats_reliability=True
            )
