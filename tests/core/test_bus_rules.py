"""Tests for the bus-side CE definitions (rule-set (3), delayIncrease)."""

from repro.core.intervals import IntervalList

from .helpers import (
    LAT,
    LON,
    M,
    bus_report,
    feed_reports,
    make_engine,
    make_topology,
)


class TestDelayIncrease:
    def test_detected(self):
        eng = make_engine()
        feed_reports(eng, [
            bus_report(100, delay=30),
            bus_report(125, delay=150),  # +120 > 60 within 25 s
        ])
        snap = eng.query(3600)
        occs = snap.all_occurrences("delayIncrease")
        assert len(occs) == 1
        occ = occs[0]
        assert occ.key == ("B1",)
        assert occ.time == 125
        assert occ["delay_increase"] == 120

    def test_small_increase_ignored(self):
        eng = make_engine()
        feed_reports(eng, [
            bus_report(100, delay=30),
            bus_report(125, delay=80),  # +50 <= 60
        ])
        snap = eng.query(3600)
        assert snap.all_occurrences("delayIncrease") == []

    def test_slow_increase_ignored(self):
        eng = make_engine()
        feed_reports(eng, [
            bus_report(100, delay=30),
            bus_report(300, delay=150),  # gap 200 s >= window 120
        ])
        snap = eng.query(3600)
        assert snap.all_occurrences("delayIncrease") == []

    def test_carries_both_positions(self):
        eng = make_engine()
        feed_reports(eng, [
            bus_report(100, delay=30, lon=LON, lat=LAT),
            bus_report(125, delay=150, lon=LON + 0.001, lat=LAT),
        ])
        occ = eng.query(3600).all_occurrences("delayIncrease")[0]
        assert occ["from_lon"] == LON
        assert occ["lon"] == LON + 0.001

    def test_distinct_buses_do_not_pair(self):
        eng = make_engine()
        feed_reports(eng, [
            bus_report(100, bus="B1", delay=30),
            bus_report(125, bus="B2", delay=150),
        ])
        assert eng.query(3600).all_occurrences("delayIncrease") == []


class TestBusCongestion:
    def test_initiated_by_congestion_report_near_intersection(self):
        eng = make_engine()
        feed_reports(eng, [bus_report(100, congestion=1, lat=LAT + 50 * M)])
        snap = eng.query(3600)
        assert snap.intervals("busCongestion", ("I1",)).intervals == (
            (101, None),
        )

    def test_far_report_ignored(self):
        eng = make_engine()
        feed_reports(eng, [bus_report(100, congestion=1, lon=LON + 0.01)])
        snap = eng.query(3600)
        assert not snap.intervals("busCongestion", ("I1",))

    def test_terminated_by_different_bus(self):
        # Rule-set (3): a possibly different bus reporting no congestion
        # terminates the fluent.
        eng = make_engine()
        feed_reports(eng, [
            bus_report(100, bus="B1", congestion=1),
            bus_report(200, bus="B2", congestion=0),
        ])
        snap = eng.query(3600)
        assert snap.intervals("busCongestion", ("I1",)).intervals == (
            (101, 201),
        )

    def test_static_mode_keeps_noisy_bus_reports(self):
        # In static recognition there is no `noisy` fluent at all.
        eng = make_engine(adaptive=False)
        feed_reports(eng, [bus_report(100, congestion=1)])
        snap = eng.query(3600)
        assert "noisy" not in snap.fluents
        assert snap.intervals("busCongestion", ("I1",))


class TestCongestionInTheMake:
    def _delay_jump(self, bus, t0, lon=LON, lat=LAT):
        return [
            bus_report(t0, bus=bus, delay=30, lon=lon, lat=lat),
            bus_report(t0 + 25, bus=bus, delay=150, lon=lon, lat=lat),
        ]

    def test_reinforced_by_second_bus(self):
        eng = make_engine()
        reports = self._delay_jump("B1", 100) + self._delay_jump("B2", 150)
        feed_reports(eng, reports)
        snap = eng.query(3600)
        occs = snap.all_occurrences("congestionInTheMake")
        assert occs, "two nearby delay jumps must reinforce each other"
        assert occs[-1]["support"] == 2
        assert set(occs[-1]["buses"]) == {"B1", "B2"}

    def test_single_bus_not_enough(self):
        eng = make_engine()
        feed_reports(eng, self._delay_jump("B1", 100))
        snap = eng.query(3600)
        assert snap.all_occurrences("congestionInTheMake") == []

    def test_distant_buses_not_clustered(self):
        eng = make_engine(make_topology(n_intersections=2, spacing=0.05))
        reports = self._delay_jump("B1", 100) + self._delay_jump(
            "B2", 150, lon=LON + 0.05
        )
        feed_reports(eng, reports)
        snap = eng.query(3600)
        assert snap.all_occurrences("congestionInTheMake") == []

    def test_stale_delay_jumps_not_clustered(self):
        eng = make_engine()
        reports = self._delay_jump("B1", 100) + self._delay_jump("B2", 1000)
        feed_reports(eng, reports)
        snap = eng.query(3600)
        assert snap.all_occurrences("congestionInTheMake") == []
