"""Tests for multi-valued fluents (full ``F = V`` semantics) and the
``initially`` predicate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RTEC, Event, FunctionalValuedFluent
from repro.core.intervals import EFFECT_DELAY
from repro.core.rules import RuleContext


def _traffic_light():
    """A valued fluent driven by 'set' events (value in the payload)
    and 'fault' events (explicit termination of the current colour)."""
    return FunctionalValuedFluent(
        "light",
        initiated=lambda ctx: [
            (("junction",), e["colour"], e.time) for e in ctx.events("set")
        ],
        terminated=lambda ctx: [
            (("junction",), e["colour"], e.time) for e in ctx.events("fault")
        ],
    )


def _engine(window=100, step=100, initially=None):
    return RTEC(
        [_traffic_light()], window=window, step=step, initially=initially
    )


def _set(t, colour):
    return Event("set", t, {"colour": colour})


def _fault(t, colour):
    return Event("fault", t, {"colour": colour})


class TestValuedFluentBasics:
    def test_single_value_holds(self):
        eng = _engine()
        eng.feed([_set(10, "green")])
        snap = eng.query(100)
        assert snap.intervals("light", ("junction", "green")).intervals == (
            (11, None),
        )

    def test_new_value_terminates_old(self):
        eng = _engine()
        eng.feed([_set(10, "green"), _set(40, "red")])
        snap = eng.query(100)
        assert snap.intervals("light", ("junction", "green")).intervals == (
            (11, 41),
        )
        assert snap.intervals("light", ("junction", "red")).intervals == (
            (41, None),
        )

    def test_explicit_termination_clears_value(self):
        eng = _engine()
        eng.feed([_set(10, "green"), _fault(40, "green")])
        snap = eng.query(100)
        assert snap.intervals("light", ("junction", "green")).intervals == (
            (11, 41),
        )
        assert not snap.fluents["light"].get(("junction", "red"))

    def test_termination_of_other_value_is_noop(self):
        eng = _engine()
        eng.feed([_set(10, "green"), _fault(40, "red")])
        snap = eng.query(100)
        assert snap.intervals("light", ("junction", "green")).holds_at(90)

    def test_reinitiating_same_value_does_not_restart(self):
        eng = _engine()
        eng.feed([_set(10, "green"), _set(50, "green")])
        snap = eng.query(100)
        assert snap.intervals("light", ("junction", "green")).intervals == (
            (11, None),
        )

    def test_simultaneous_initiations_largest_wins(self):
        eng = _engine()
        eng.feed([_set(10, "amber"), _set(10, "green")])
        snap = eng.query(100)
        assert snap.intervals("light", ("junction", "green")).holds_at(50)
        assert not snap.intervals("light", ("junction", "amber"))

    def test_value_at_accessor(self):
        light = _traffic_light()
        eng = RTEC([light], window=100, step=100)
        eng.feed([_set(10, "green"), _set(40, "red")])
        snap = eng.query(100)
        # value_at lives on the rule context; emulate via snapshot scan.
        held = [
            stored_key[-1]
            for stored_key, ivs in snap.fluents["light"].items()
            if ivs.holds_at(20)
        ]
        assert held == ["green"]


class TestValuedFluentWindows:
    def test_value_persists_across_windows(self):
        eng = _engine(window=50, step=50)
        eng.feed([_set(10, "green")])
        eng.query(50)
        snap = eng.query(100)
        ivs = snap.intervals("light", ("junction", "green"))
        assert ivs.holds_at(99)
        assert ivs.first_start() == 11  # historical start retained

    def test_value_switch_across_windows(self):
        eng = _engine(window=50, step=50)
        eng.feed([_set(10, "green")])
        eng.query(50)
        eng.feed([_set(70, "red")])
        snap = eng.query(100)
        assert snap.intervals("light", ("junction", "green")).intervals == (
            (11, 71),
        )
        assert snap.intervals("light", ("junction", "red")).holds_at(90)

    def test_stale_cached_value_does_not_resurrect(self):
        eng = _engine(window=50, step=50)
        eng.feed([_set(10, "green"), _set(40, "red")])
        eng.query(50)
        snap = eng.query(100)  # quiet window
        assert not snap.intervals("light", ("junction", "green"))
        assert snap.intervals("light", ("junction", "red")).holds_at(99)

    def test_at_most_one_value_at_any_point(self):
        eng = _engine(window=60, step=30)
        eng.feed([
            _set(10, "green"), _set(25, "red"), _fault(45, "red"),
            _set(55, "amber"), _set(80, "green"),
        ])
        last = None
        for snap in eng.run(120):
            last = snap
        for t in range(0, 120):
            held = [
                stored_key[-1]
                for stored_key, ivs in last.fluents.get("light", {}).items()
                if ivs.holds_at(t)
            ]
            assert len(held) <= 1, f"two values at t={t}: {held}"


class TestInitially:
    def test_boolean_fluent_initially_true(self):
        from repro.core.rules import FunctionalSimpleFluent

        fluent = FunctionalSimpleFluent(
            "power",
            initiated=lambda ctx: [],
            terminated=lambda ctx: [
                (("x",), e.time) for e in ctx.events("off")
            ],
        )
        eng = RTEC(
            [fluent], window=100, step=100,
            initially={("power", ("x",)): True},
        )
        eng.feed([Event("off", 60, {})])
        snap = eng.query(100)
        ivs = snap.intervals("power", ("x",))
        assert ivs.holds_at(30)
        assert not ivs.holds_at(70)

    def test_boolean_fluent_rejects_non_true(self):
        from repro.core.rules import FunctionalSimpleFluent

        fluent = FunctionalSimpleFluent(
            "power", initiated=lambda ctx: [], terminated=lambda ctx: [],
        )
        with pytest.raises(ValueError, match="initially True"):
            RTEC(
                [fluent], window=10, step=10,
                initially={("power", ("x",)): "green"},
            )

    def test_valued_fluent_initial_value(self):
        eng = _engine(initially={("light", ("junction",)): "red"})
        eng.feed([_set(60, "green")])
        snap = eng.query(100)
        assert snap.intervals("light", ("junction", "red")).holds_at(30)
        assert snap.intervals("light", ("junction", "green")).holds_at(80)
        assert not snap.intervals("light", ("junction", "red")).holds_at(80)


@given(
    st.lists(
        st.tuples(
            st.integers(1, 99),
            st.sampled_from(["green", "red", "amber"]),
            st.booleans(),  # True = set, False = fault
        ),
        max_size=15,
    )
)
@settings(max_examples=50, deadline=None)
def test_valued_fluent_matches_pointwise_simulation(commands):
    events = [
        _set(t, colour) if is_set else _fault(t, colour)
        for t, colour, is_set in commands
    ]
    eng = _engine()
    eng.feed(events)
    snap = eng.query(100)

    # Brute-force simulation of the documented semantics.
    by_time = {}
    for t, colour, is_set in commands:
        by_time.setdefault(t, {"set": set(), "fault": set()})[
            "set" if is_set else "fault"
        ].add(colour)
    state = None
    for t in range(0, 101):
        cause = t - EFFECT_DELAY
        if cause in by_time:
            cmds = by_time[cause]
            if state in cmds["fault"]:
                state = None
            if cmds["set"]:
                state = sorted(cmds["set"])[-1]
        held = [
            stored_key[-1]
            for stored_key, ivs in snap.fluents.get("light", {}).items()
            if ivs.holds_at(t)
        ]
        expected = [state] if state is not None else []
        assert held == expected, f"t={t}: engine {held} vs sim {expected}"
