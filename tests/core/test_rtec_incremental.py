"""Behavioural tests of the incremental engine's bookkeeping.

The golden-trace and fault-parity suites prove the incremental engine
*recognises* exactly what the legacy engine does; this module pins the
bookkeeping around it:

* ``n_new_events`` counts each SDE exactly once across a run even
  though overlapping windows consider the same SDE repeatedly
  (``n_events`` keeps the per-window semantics), and the pipeline's
  ``process.cep-<region>.items`` throughput counter is fed from it —
  the satellite fix for the old overlap double-count;
* the ``cache_hits`` / ``cache_misses`` / ``cache_invalidations``
  statistics follow the documented lifecycle (miss on the first
  query, hits on quiet overlaps, invalidations on late arrivals,
  all-zero in legacy mode and for definitions without a spec).
"""

from collections.abc import Iterable

from repro.core import RTEC, Event
from repro.core.events import Occurrence
from repro.core.incremental import IncrementalSpec
from repro.core.rules import DerivedEvent, RuleContext
from repro.dublin import DublinScenario, ScenarioConfig
from repro.system import SystemConfig, UrbanTrafficSystem


class Echo(DerivedEvent):
    """One occurrence per ``ping`` SDE, at the SDE's time."""

    def __init__(self, *, spec: bool = True):
        super().__init__("echo", depends_on=())
        self._spec = spec

    def occurrences(self, ctx: RuleContext) -> Iterable[Occurrence]:
        for ev in ctx.events("ping"):
            yield Occurrence("echo", (ev["id"],), ev.time, {"id": ev["id"]})

    def incremental_spec(self, params):
        if not self._spec:
            return None
        return IncrementalSpec(lookback=1, event_types=frozenset({"ping"}))


def ping(t, ident="a", arrival=None):
    return Event("ping", t, {"id": ident}, arrival=arrival)


def make_engine(**kwargs):
    kwargs.setdefault("window", 100)
    kwargs.setdefault("step", 25)
    return RTEC([kwargs.pop("definition", Echo())], params={}, **kwargs)


class TestNewEventCounting:
    def test_each_sde_counted_once_across_overlapping_windows(self):
        engine = make_engine()
        events = [ping(t, ident=str(t)) for t in range(10, 100, 10)]
        engine.feed(events)
        snapshots = list(engine.run(100))
        assert sum(s.n_new_events for s in snapshots) == len(events)
        # The per-window count still sees the overlap repeatedly.
        assert sum(s.n_events for s in snapshots) > len(events)

    def test_legacy_mode_agrees(self):
        events = [ping(t, ident=str(t)) for t in range(10, 100, 10)]
        per_query = {}
        for mode in (True, False):
            engine = make_engine(incremental=mode)
            engine.feed(events)
            per_query[mode] = [
                s.n_new_events for s in engine.run(100)
            ]
        assert per_query[True] == per_query[False]

    def test_delayed_sde_counted_when_it_arrives(self):
        engine = make_engine()
        engine.feed([ping(10, arrival=40)])
        first = engine.query(25)
        second = engine.query(50)
        assert first.n_new_events == 0
        assert second.n_new_events == 1
        # Later queries still *consider* it, but never re-count it.
        third = engine.query(75)
        assert third.n_events == 1
        assert third.n_new_events == 0


class TestCacheCounters:
    def test_lifecycle_miss_then_hits(self):
        engine = make_engine()
        engine.feed([ping(t) for t in range(10, 100, 10)])
        first = engine.query(25)
        second = engine.query(50)
        assert (first.cache_misses, first.cache_hits) == (1, 0)
        assert (second.cache_misses, second.cache_hits) == (0, 1)
        assert second.cache_invalidations == 0

    def test_late_arrival_in_overlap_invalidates(self):
        engine = make_engine()
        engine.feed([ping(t) for t in range(10, 60, 10)])
        engine.query(25)
        engine.query(50)
        # Occurred at 30 (inside the settled overlap), arrives at 60.
        engine.feed([ping(30, ident="late", arrival=60)])
        snapshot = engine.query(75)
        assert snapshot.cache_hits == 1
        assert snapshot.cache_invalidations == 1
        assert [o.time for o in snapshot.occurrences["echo"]] == [
            10, 20, 30, 30, 40, 50,
        ]

    def test_unspecced_definition_counts_nothing(self):
        engine = make_engine(definition=Echo(spec=False))
        engine.feed([ping(t) for t in range(10, 100, 10)])
        for snapshot in engine.run(100):
            assert snapshot.cache_hits == 0
            assert snapshot.cache_misses == 0
            assert snapshot.cache_invalidations == 0

    def test_legacy_mode_counts_nothing(self):
        engine = make_engine(incremental=False)
        engine.feed([ping(t) for t in range(10, 100, 10)])
        for snapshot in engine.run(100):
            assert snapshot.cache_hits == 0
            assert snapshot.cache_misses == 0
            assert snapshot.cache_invalidations == 0


class TestPipelineMetrics:
    def test_items_counter_has_no_overlap_double_count(self):
        scenario = DublinScenario(
            ScenarioConfig(
                seed=5,
                rows=6,
                cols=6,
                n_intersections=8,
                n_buses=6,
                n_lines=2,
                n_incidents=2,
                incident_window=(0, 1800),
            )
        )
        config = SystemConfig(window=1200, step=300, crowd_enabled=False)
        system = UrbanTrafficSystem(scenario, config)
        report = system.run(0, 1800)
        items = sum(
            value
            for name, value in report.metrics["counters"].items()
            if name.startswith("process.cep-") and name.endswith(".items")
        )
        snapshots = [
            s for log in report.logs.values() for s in log.snapshots
        ]
        new = sum(s.n_new_events for s in snapshots)
        considered = sum(s.n_events for s in snapshots)
        assert items == new
        # The regression being fixed: counting the window contents
        # (``n_events``) would have inflated ``.items`` by the overlap.
        assert considered > new > 0

    def test_cache_counters_exported(self):
        scenario = DublinScenario(
            ScenarioConfig(
                seed=5,
                rows=6,
                cols=6,
                n_intersections=8,
                n_buses=6,
                n_lines=2,
                n_incidents=2,
                incident_window=(0, 1800),
            )
        )
        config = SystemConfig(window=1200, step=300, crowd_enabled=False)
        system = UrbanTrafficSystem(scenario, config)
        counters = system.run(0, 1800).metrics["counters"]
        assert counters["rtec.cache.hits"] > 0
        assert "rtec.cache.misses" in counters
        assert "rtec.cache.invalidations" in counters
