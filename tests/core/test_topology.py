"""Tests for the SCATS topology registry."""

import pytest

from repro.core.traffic import Intersection, ScatsTopology

LON, LAT = -6.26, 53.35
M = 1 / 111_195  # ~one metre in degrees of latitude


def _topology(radius=150.0):
    return ScatsTopology(
        [
            Intersection("I1", LON, LAT, (("I1", "A", "S1"), ("I1", "A", "S2"))),
            Intersection("I2", LON + 0.02, LAT, (("I2", "A", "S1"),)),
        ],
        close_radius_m=radius,
    )


class TestScatsTopology:
    def test_lookup(self):
        topo = _topology()
        assert "I1" in topo
        assert "nope" not in topo
        assert len(topo) == 2
        assert set(topo.ids()) == {"I1", "I2"}
        assert topo.get("I1").id == "I1"
        assert topo.location("I2") == (LON + 0.02, LAT)
        assert topo.sensors_of("I1") == (("I1", "A", "S1"), ("I1", "A", "S2"))

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ScatsTopology(
                [
                    Intersection("I1", LON, LAT, ()),
                    Intersection("I1", LON, LAT, ()),
                ]
            )

    def test_close_query(self):
        topo = _topology()
        assert topo.intersections_close_to(LON, LAT + 50 * M) == ["I1"]
        assert topo.intersections_close_to(LON + 0.01, LAT) == []

    def test_nearest_intersection_within_radius(self):
        topo = _topology()
        int_id, dist = topo.nearest_intersection(LON, LAT + 50 * M)
        assert int_id == "I1"
        assert dist == pytest.approx(50, rel=0.05)

    def test_nearest_intersection_falls_back_to_scan(self):
        topo = _topology()
        int_id, dist = topo.nearest_intersection(LON + 0.01, LAT)
        assert int_id in {"I1", "I2"}
        assert dist > topo.close_radius_m

    def test_nearest_on_empty_topology(self):
        topo = ScatsTopology([])
        with pytest.raises(ValueError):
            topo.nearest_intersection(LON, LAT)

    def test_from_mappings(self):
        topo = ScatsTopology.from_mappings(
            locations={"I1": (LON, LAT)},
            sensors={"I1": [("I1", "A", "S1")]},
        )
        assert topo.sensors_of("I1") == (("I1", "A", "S1"),)

    def test_from_mappings_without_sensors(self):
        topo = ScatsTopology.from_mappings(locations={"I1": (LON, LAT)}, sensors={})
        assert topo.sensors_of("I1") == ()
