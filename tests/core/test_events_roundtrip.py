"""Pickle round-trips for the SDE record types.

The columnar batch machinery (``repro.core.columns``) and the
process-pool / checkpoint paths all lean on the ``__reduce__`` seam of
:class:`Event` and :class:`FluentFact`: a record must survive
pickle → unpickle with full equality, including the frozen
(``MappingProxyType``) payloads that plain dataclass pickling cannot
handle.
"""

import pickle

import pytest

from repro.core.events import Event, FluentFact, Occurrence


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


@pytest.mark.parametrize(
    "event",
    [
        Event("traffic", 30, {"density": 55.0, "flow": 800.0}),
        Event(
            "move",
            120,
            {"bus": "B1", "line": 7, "operator": "op", "delay": 95},
            arrival=150,
        ),
        Event("crowd", 0, {}),
    ],
    ids=["traffic", "delayed-move", "empty-payload"],
)
def test_event_roundtrip(event):
    restored = _roundtrip(event)
    assert restored == event
    assert restored.arrival == event.arrival
    assert dict(restored.payload) == dict(event.payload)


def test_event_payload_value_types_survive():
    """Integer payload fields must come back as ints, not floats —
    the columnar fast path builds payloads from original objects for
    exactly this reason."""
    event = Event("move", 60, {"delay": 42, "speed": 13.5})
    restored = _roundtrip(event)
    assert restored["delay"] == 42
    assert isinstance(restored["delay"], int)
    assert isinstance(restored["speed"], float)


@pytest.mark.parametrize(
    "fact",
    [
        FluentFact(
            "gps",
            ("B1",),
            {"lon": -6.26, "lat": 53.34, "direction": 90, "congestion": 1},
            45,
        ),
        FluentFact("noisy", ("B2",), True, 600, arrival=660),
    ],
    ids=["gps-mapping", "boolean-delayed"],
)
def test_fluent_fact_roundtrip(fact):
    restored = _roundtrip(fact)
    assert restored == fact
    assert restored.arrival == fact.arrival


def test_fluent_fact_mapping_value_stays_readable():
    fact = FluentFact("gps", ("B1",), {"lon": 1.0, "congestion": 0}, 30)
    restored = _roundtrip(fact)
    assert restored.value["congestion"] == 0


def test_occurrence_roundtrip():
    occ = Occurrence(
        "delayIncrease",
        ("B1",),
        300,
        {"bus": "B1", "delay_increase": 80},
    )
    restored = _roundtrip(occ)
    assert restored == occ
    assert restored["delay_increase"] == 80


def test_frozen_payload_rejects_mutation_after_roundtrip():
    """The round-trip must restore the *frozen* payload semantics, not
    hand back a mutable dict."""
    restored = _roundtrip(Event("traffic", 30, {"density": 1.0}))
    with pytest.raises(TypeError):
        restored.payload["density"] = 2.0
