"""Property-based tests of the RTEC windowing semantics.

The key invariant behind the paper's windowing design (Section 4.2):
for a *delay-free* stream, sliding-window recognition with any
``window >= step`` recovers exactly the same fluent behaviour as
knowing the full history — windowing only changes answers when SDEs
arrive late.  We check this against a brute-force inertia simulation.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RTEC, Event, RecognitionLog
from repro.core.intervals import EFFECT_DELAY
from repro.core.rules import FunctionalSimpleFluent

HORIZON = 240


def _switch_fluent():
    return FunctionalSimpleFluent(
        "power",
        initiated=lambda ctx: [
            ((e["id"],), e.time) for e in ctx.events("on")
        ],
        terminated=lambda ctx: [
            ((e["id"],), e.time) for e in ctx.events("off")
        ],
    )


def _brute_force_states(events):
    """Point-by-point inertia simulation (termination wins ties)."""
    on_times = {e.time for e in events if e.type == "on"}
    off_times = {e.time for e in events if e.type == "off"}
    states = []
    holding = False
    for t in range(0, HORIZON + 1):
        cause = t - EFFECT_DELAY
        if cause in off_times:
            holding = False
        elif cause in on_times:
            holding = True
        states.append(holding)
    return states


def _windowed_states(events, window, step):
    """The fluent's value at every time-point as the engine, queried
    every ``step``, would have reported it at the earliest query time
    covering that point."""
    engine = RTEC([_switch_fluent()], window=window, step=step)
    engine.feed(events)
    states = [False] * (HORIZON + 1)
    reported = [False] * (HORIZON + 1)
    last_q = 0
    for snapshot in engine.run(HORIZON + window):
        intervals = snapshot.intervals("power", ("x",))
        for t in range(last_q + 1, min(snapshot.query_time, HORIZON) + 1):
            states[t] = intervals.holds_at(t)
            reported[t] = True
        last_q = snapshot.query_time
        if last_q >= HORIZON:
            break
    # t = 0 precedes the first query; it is never reported (windows are
    # left-open), matching the brute force's initial False.
    reported[0] = True
    assert all(reported), "every time-point must fall inside some window"
    return states


event_streams = st.lists(
    st.tuples(
        st.sampled_from(["on", "off"]),
        st.integers(1, HORIZON - 1),
    ),
    max_size=30,
).map(
    lambda pairs: [Event(kind, t, {"id": "x"}) for kind, t in pairs]
)

window_step = st.tuples(
    st.integers(1, 8), st.integers(1, 8)
).map(lambda ws: (max(ws) * 15, min(ws) * 15))  # window >= step, both multiples


@given(event_streams, window_step)
@settings(max_examples=60, deadline=None)
def test_windowed_recognition_matches_full_history(events, ws):
    window, step = ws
    expected = _brute_force_states(events)
    actual = _windowed_states(events, window, step)
    assert actual == expected


@given(event_streams)
@settings(max_examples=30, deadline=None)
def test_fresh_episode_starts_match_transitions(events):
    # Every False->True transition of the brute-force state is surfaced
    # exactly once as a fresh episode start by the recognition log.
    expected = _brute_force_states(events)
    transition_starts = {
        t
        for t in range(1, HORIZON + 1)
        if expected[t] and not expected[t - 1]
    }
    engine = RTEC([_switch_fluent()], window=60, step=30)
    engine.feed(events)
    log = RecognitionLog()
    starts = set()
    for snapshot in engine.run(HORIZON + 60):
        fresh = log.add(snapshot)
        starts.update(s for _, _, s, _ in fresh.episodes_of("power"))
    assert starts == transition_starts


@given(event_streams, st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_feeding_order_is_irrelevant(events, seed):
    shuffled = list(events)
    random.Random(seed).shuffle(shuffled)
    a = RTEC([_switch_fluent()], window=90, step=30)
    b = RTEC([_switch_fluent()], window=90, step=30)
    a.feed(events)
    b.feed(shuffled)
    for qa, qb in zip(a.run(HORIZON + 90), b.run(HORIZON + 90)):
        assert qa.fluents == qb.fluents
