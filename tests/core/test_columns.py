"""Unit tests for the columnar SDE batch machinery.

Covers the three layers of ``repro.core.columns`` in isolation:

* batch construction (``EventColumns`` / ``FactColumns`` /
  ``SDEColumns``) and its canonical row enumeration;
* the working-memory :class:`ColumnMirror` sync protocol — append,
  eviction, eviction overshoot and out-of-order rebuild;
* the read views (``MirrorView`` / ``ListColumnView``) the compiled
  evaluators consume.

The end-to-end guarantees (identical recognition output) live in the
golden-trace and Hypothesis parity suites.
"""

import numpy as np
import pytest

from repro.core.columns import (
    ColumnMirror,
    ColumnSpec,
    EventColumns,
    FactColumns,
    ListColumnView,
    SDEColumns,
)
from repro.core.events import Event, FluentFact
from repro.core.incremental import TimedColumn

TRAFFIC = ColumnSpec(
    numeric=("density", "flow"),
    token=("intersection", "approach", "sensor"),
)


def _traffic_event(t, density=50.0, flow=800.0, arrival=None, sensor="d1"):
    return Event(
        "traffic",
        t,
        {
            "intersection": "I1",
            "approach": "N",
            "sensor": sensor,
            "density": density,
            "flow": flow,
        },
        arrival if arrival is not None else t,
    )


# ----------------------------------------------------------------------
# ColumnSpec
# ----------------------------------------------------------------------
def test_spec_merge_unions_numeric_fields():
    a = ColumnSpec(numeric=("density",), token=("sensor",))
    b = ColumnSpec(numeric=("flow",), token=("sensor",))
    merged = a.merge(b)
    assert merged == ColumnSpec(
        numeric=("density", "flow"), token=("sensor",)
    )


def test_spec_merge_conflicting_tokens_is_none():
    a = ColumnSpec(token=("sensor",))
    b = ColumnSpec(token=("bus",))
    assert a.merge(b) is None


def test_spec_merge_identical_is_self():
    a = ColumnSpec(numeric=("density",), token=("sensor",))
    assert a.merge(ColumnSpec(numeric=("density",), token=("sensor",))) is a


# ----------------------------------------------------------------------
# Batch construction
# ----------------------------------------------------------------------
def test_from_events_materialises_identical_objects():
    events = [_traffic_event(10), _traffic_event(40, arrival=70)]
    block = EventColumns.from_events("traffic", events)
    assert len(block) == 2
    assert block.times.tolist() == [10, 40]
    assert block.arrivals.tolist() == [10, 70]
    for i, original in enumerate(events):
        restored = block.event(i)
        assert restored == original
        # Payload is the same object — zero-copy wrap.
        assert restored.payload is original.payload


def test_from_arrays_defaults_arrivals_to_times():
    block = EventColumns.from_arrays(
        "traffic",
        [10, 20],
        numeric={"density": [1.0, 2.0], "flow": [3.0, 4.0]},
        extra={
            "intersection": ["I1", "I1"],
            "approach": ["N", "N"],
            "sensor": ["d1", "d2"],
        },
    )
    assert block.arrivals.tolist() == [10, 20]
    event = block.event(1)
    assert event["density"] == 2.0
    assert event["sensor"] == "d2"
    assert event.arrival == 20


def test_from_arrays_rejects_length_mismatch():
    with pytest.raises(ValueError, match="length mismatch"):
        EventColumns.from_arrays(
            "traffic", [10, 20], numeric={"density": [1.0]}
        )


def test_fact_columns_roundtrip():
    facts = [
        FluentFact("gps", ("B1",), {"lon": 1.0, "congestion": 1}, 30, 45)
    ]
    block = FactColumns.from_facts("gps", facts)
    assert block.fact(0) == facts[0]


def test_sde_columns_groups_by_type_and_counts():
    batch = SDEColumns.from_sdes(
        [
            _traffic_event(10),
            Event("move", 20, {"bus": "B1", "delay": 5}, 25),
            _traffic_event(30),
        ],
        [FluentFact("gps", ("B1",), {"lon": 1.0}, 20, 25)],
    )
    assert {b.type for b in batch.events} == {"traffic", "move"}
    assert batch.n_events == 3
    assert batch.n_facts == 1
    assert batch.n == 4
    assert batch.max_arrival() == 30


def test_empty_batch():
    batch = SDEColumns.from_sdes([], [])
    assert batch.n == 0
    assert batch.max_arrival() is None
    assert list(batch.rows()) == []


def test_validate_rejects_negative_times():
    batch = SDEColumns.from_sdes([_traffic_event(10)], [])
    batch.validate()  # fine
    bad = SDEColumns.from_sdes(
        [Event("traffic", -5, {"density": 1.0}, 0)], []
    )
    with pytest.raises(ValueError):
        bad.validate()


def test_rows_enumerates_events_then_facts_lazily():
    events = [_traffic_event(10), _traffic_event(40)]
    facts = [FluentFact("gps", ("B1",), {"lon": 1.0}, 20, 60)]
    batch = SDEColumns.from_sdes(events, facts)
    rows = list(batch.rows())
    assert [arrival for arrival, _, _ in rows] == [10, 40, 60]
    assert [is_fact for _, is_fact, _ in rows] == [False, False, True]
    resolved = [row.resolve() for _, _, row in rows]
    assert resolved == [*events, *facts]


def test_iter_events_matches_originals():
    events = [_traffic_event(10), _traffic_event(40)]
    batch = SDEColumns.from_sdes(events, [])
    assert list(batch.iter_events()) == events


# ----------------------------------------------------------------------
# ColumnMirror sync protocol
# ----------------------------------------------------------------------
def _filled_column(times):
    column = TimedColumn()
    for seq, t in enumerate(times):
        column.insert(t, seq, _traffic_event(t, density=float(t)))
    return column


def _synced_mirror(column):
    mirror = column.mirror_for(TRAFFIC)
    mirror.sync()
    return mirror


def test_mirror_appends_incrementally():
    column = _filled_column([10, 20])
    mirror = _synced_mirror(column)
    view = mirror.live_view()
    assert view.times_list == [10, 20]
    version = mirror.version
    column.insert(30, 2, _traffic_event(30, density=30.0))
    mirror.sync()
    view = mirror.live_view()
    assert view.times_list == [10, 20, 30]
    assert view.col("density").tolist() == [10.0, 20.0, 30.0]
    assert mirror.version != version


def test_mirror_tracks_eviction():
    column = _filled_column([10, 20, 30])
    mirror = _synced_mirror(column)
    column.evict(15)
    mirror.sync()
    assert mirror.live_view().times_list == [20, 30]


def test_mirror_eviction_overshoot_rebuilds():
    """Rows appended *and* evicted between two syncs: the mirror never
    saw them, so its dead-prefix arithmetic would misalign — it must
    fall back to a full rebuild."""
    column = _filled_column([10, 20])
    mirror = _synced_mirror(column)
    for seq, t in enumerate((30, 40, 50), start=2):
        column.insert(t, seq, _traffic_event(t, density=float(t)))
    column.evict(45)  # evicts 4 rows, 2 of them never mirrored
    mirror.sync()
    view = mirror.live_view()
    assert view.times_list == [50]
    assert view.col("density").tolist() == [50.0]


def test_mirror_out_of_order_insert_rebuilds():
    column = _filled_column([10, 30])
    mirror = _synced_mirror(column)
    column.insert(20, 5, _traffic_event(20, density=20.0))  # delayed SDE
    mirror.sync()
    view = mirror.live_view()
    assert view.times_list == [10, 20, 30]
    assert view.col("density").tolist() == [10.0, 20.0, 30.0]


def test_mirror_token_rows_group_by_grounding():
    column = TimedColumn()
    for seq, (t, sensor) in enumerate(
        [(10, "d1"), (20, "d2"), (30, "d1")]
    ):
        column.insert(t, seq, _traffic_event(t, sensor=sensor))
    mirror = _synced_mirror(column)
    groups = mirror.live_view().token_rows()
    assert groups[("I1", "N", "d1")].tolist() == [0, 2]
    assert groups[("I1", "N", "d2")].tolist() == [1]


def test_mirror_bounded_view_windows_rows():
    column = _filled_column([10, 20, 30, 40])
    mirror = _synced_mirror(column)
    view = mirror.view_bounds(*column.bounds(15, 35))
    assert view.times_list == [20, 30]
    assert view.item(0).time == 20


def test_mirror_excluded_from_pickle():
    import pickle

    column = _filled_column([10, 20])
    _synced_mirror(column)
    restored = pickle.loads(pickle.dumps(column))
    assert restored.mirror is None
    assert restored.times == [10, 20]
    # A fresh mirror on the restored column sees the same rows.
    assert _synced_mirror(restored).live_view().times_list == [10, 20]


# ----------------------------------------------------------------------
# ListColumnView fallback
# ----------------------------------------------------------------------
def test_list_view_matches_mirror_view():
    events = [
        _traffic_event(10, density=1.0, sensor="d1"),
        _traffic_event(20, density=2.0, sensor="d2"),
        _traffic_event(30, density=3.0, sensor="d1"),
    ]
    column = TimedColumn()
    for seq, ev in enumerate(events):
        column.insert(ev.time, seq, ev)
    mirror_view = _synced_mirror(column).live_view()
    list_view = ListColumnView(events, TRAFFIC)
    assert list_view.n == mirror_view.n
    assert list_view.times_list == mirror_view.times_list
    assert list_view.tokens == mirror_view.tokens
    np.testing.assert_array_equal(
        list_view.col("density"), mirror_view.col("density")
    )
    assert {
        token: rows.tolist() for token, rows in list_view.token_rows().items()
    } == {
        token: rows.tolist()
        for token, rows in mirror_view.token_rows().items()
    }
    assert list_view.item(1) is events[1]


def test_views_cover_subset_specs():
    events = [_traffic_event(10)]
    view = ListColumnView(events, TRAFFIC)
    assert view.covers(ColumnSpec(numeric=("density",), token=TRAFFIC.token))
    assert not view.covers(ColumnSpec(token=("bus",)))
