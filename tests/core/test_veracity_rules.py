"""Tests for veracity handling: disagree/agree, noisy, sourceDisagreement."""

from repro.core.intervals import IntervalList

from .helpers import (
    CONGESTED,
    FREE,
    LAT,
    LON,
    M,
    bus_report,
    crowd_event,
    feed_reports,
    make_engine,
    make_topology,
    traffic_event,
)


def _scats_congested(t):
    """Both sensors of I1 report the congested regime at ``t``."""
    return [
        traffic_event(t, sensor="S1", **CONGESTED),
        traffic_event(t, sensor="S2", **CONGESTED),
    ]


def _scats_free(t):
    return [
        traffic_event(t, sensor="S1", **FREE),
        traffic_event(t, sensor="S2", **FREE),
    ]


class TestDisagreeAgree:
    def test_positive_disagreement(self):
        # Bus says congested, SCATS says free.
        eng = make_engine(adaptive=True)
        eng.feed(_scats_free(1))
        feed_reports(eng, [bus_report(100, congestion=1)])
        snap = eng.query(3600)
        occs = snap.all_occurrences("disagree")
        assert len(occs) == 1
        assert occs[0]["value"] == "positive"
        assert occs[0]["intersection"] == "I1"

    def test_negative_disagreement(self):
        # Bus says free, SCATS says congested.
        eng = make_engine(adaptive=True)
        eng.feed(_scats_congested(1))
        feed_reports(eng, [bus_report(100, congestion=0)])
        snap = eng.query(3600)
        occs = snap.all_occurrences("disagree")
        assert len(occs) == 1
        assert occs[0]["value"] == "negative"

    def test_agreement_on_congestion(self):
        eng = make_engine(adaptive=True)
        eng.feed(_scats_congested(1))
        feed_reports(eng, [bus_report(100, congestion=1)])
        snap = eng.query(3600)
        assert len(snap.all_occurrences("agree")) == 1
        assert snap.all_occurrences("disagree") == []

    def test_agreement_on_free_flow(self):
        eng = make_engine(adaptive=True)
        eng.feed(_scats_free(1))
        feed_reports(eng, [bus_report(100, congestion=0)])
        snap = eng.query(3600)
        assert len(snap.all_occurrences("agree")) == 1

    def test_far_bus_triggers_nothing(self):
        eng = make_engine(adaptive=True)
        eng.feed(_scats_free(1))
        feed_reports(eng, [bus_report(100, congestion=1, lon=LON + 0.01)])
        snap = eng.query(3600)
        assert snap.all_occurrences("disagree") == []
        assert snap.all_occurrences("agree") == []


class TestNoisyCrowdValidated:
    """Rule-set (4): noisy only when the crowd sides with SCATS."""

    def test_initiated_when_crowd_contradicts_bus(self):
        eng = make_engine(adaptive=True, noisy_variant="crowd")
        eng.feed(_scats_free(1))
        feed_reports(eng, [bus_report(100, congestion=1)])  # positive disagree
        eng.feed([crowd_event(400, value="negative")])  # crowd sides w/ SCATS
        snap = eng.query(3600)
        assert snap.intervals("noisy", ("B1",)).intervals == ((101, None),)

    def test_not_initiated_without_crowd_answer(self):
        eng = make_engine(adaptive=True, noisy_variant="crowd")
        eng.feed(_scats_free(1))
        feed_reports(eng, [bus_report(100, congestion=1)])
        snap = eng.query(3600)
        assert not snap.intervals("noisy", ("B1",))

    def test_not_initiated_when_crowd_confirms_bus(self):
        eng = make_engine(adaptive=True, noisy_variant="crowd")
        eng.feed(_scats_free(1))
        feed_reports(eng, [bus_report(100, congestion=1)])
        eng.feed([crowd_event(400, value="positive")])  # bus was right
        snap = eng.query(3600)
        assert not snap.intervals("noisy", ("B1",))

    def test_late_crowd_answer_ignored(self):
        eng = make_engine(
            adaptive=True,
            noisy_variant="crowd",
            params={"veracity.crowd_response_window": 200},
        )
        eng.feed(_scats_free(1))
        feed_reports(eng, [bus_report(100, congestion=1)])
        eng.feed([crowd_event(400, value="negative")])  # 300 s later > 200
        snap = eng.query(3600)
        assert not snap.intervals("noisy", ("B1",))

    def test_terminated_by_agreement(self):
        eng = make_engine(adaptive=True, noisy_variant="crowd")
        eng.feed(_scats_free(1))
        feed_reports(eng, [bus_report(100, congestion=1)])
        eng.feed([crowd_event(400, value="negative")])
        # The bus later agrees with the sensors.
        feed_reports(eng, [bus_report(1000, congestion=0)])
        snap = eng.query(3600)
        assert snap.intervals("noisy", ("B1",)).intervals == ((101, 1001),)

    def test_terminated_when_crowd_vindicates_bus(self):
        eng = make_engine(adaptive=True, noisy_variant="crowd")
        eng.feed(_scats_free(1))
        feed_reports(eng, [bus_report(100, congestion=1)])
        eng.feed([crowd_event(200, value="negative")])  # -> noisy
        feed_reports(eng, [bus_report(1000, congestion=1)])  # disagrees again
        eng.feed([crowd_event(1100, value="positive")])  # bus proven right
        snap = eng.query(3600)
        assert snap.intervals("noisy", ("B1",)).intervals == ((101, 1001),)


class TestNoisyPessimistic:
    """Rule-set (5): any disagreement marks the bus noisy."""

    def test_initiated_by_bare_disagreement(self):
        eng = make_engine(adaptive=True, noisy_variant="pessimistic")
        eng.feed(_scats_free(1))
        feed_reports(eng, [bus_report(100, congestion=1)])
        snap = eng.query(3600)
        assert snap.intervals("noisy", ("B1",)).intervals == ((101, None),)

    def test_terminated_by_agreement(self):
        eng = make_engine(adaptive=True, noisy_variant="pessimistic")
        eng.feed(_scats_free(1))
        feed_reports(eng, [
            bus_report(100, congestion=1),
            bus_report(1000, congestion=0),
        ])
        snap = eng.query(3600)
        assert snap.intervals("noisy", ("B1",)).intervals == ((101, 1001),)

    def test_terminated_at_crowd_answer_time(self):
        # Rule-set (5) terminates at T' (the crowd answer's time).
        eng = make_engine(adaptive=True, noisy_variant="pessimistic")
        eng.feed(_scats_free(1))
        feed_reports(eng, [bus_report(100, congestion=1)])
        eng.feed([crowd_event(500, value="positive")])  # proves the bus right
        snap = eng.query(3600)
        assert snap.intervals("noisy", ("B1",)).intervals == ((101, 501),)


class TestAdaptiveBusCongestion:
    """Rule-set (3′): reports from noisy buses are discarded."""

    def test_noisy_bus_reports_discarded_anywhere(self):
        topo = make_topology(n_intersections=2, spacing=0.05)
        eng = make_engine(topo, adaptive=True, noisy_variant="pessimistic")
        # I1 SCATS free; bus B1 disagrees there -> becomes noisy.
        eng.feed(_scats_free(1))
        feed_reports(eng, [bus_report(100, congestion=1)])
        # B1 later reports congestion near I2 (no SCATS congestion info
        # needed): the report must be discarded because B1 is noisy.
        feed_reports(eng, [
            bus_report(1000, congestion=1, lon=LON + 0.05),
        ])
        snap = eng.query(3600)
        assert not snap.intervals("busCongestion", ("I2",))

    def test_first_disagreeing_report_still_counts(self):
        # noisy(B1) only holds from T+1, so the report at T itself
        # initiates busCongestion (matching holdsAt semantics at T).
        eng = make_engine(adaptive=True, noisy_variant="pessimistic")
        eng.feed(_scats_free(1))
        feed_reports(eng, [bus_report(100, congestion=1)])
        snap = eng.query(3600)
        assert snap.intervals("busCongestion", ("I1",)).intervals == (
            (101, None),
        )

    def test_rehabilitated_bus_counts_again(self):
        eng = make_engine(adaptive=True, noisy_variant="pessimistic")
        eng.feed(_scats_free(1))
        feed_reports(eng, [
            bus_report(100, congestion=1),            # B1 disagrees -> noisy
            bus_report(300, bus="B2", congestion=0),  # B2 agrees; clears busCongestion
            bus_report(400, congestion=1),            # B1 still noisy -> discarded
            bus_report(500, congestion=0),            # B1 agrees -> rehabilitated
            bus_report(600, congestion=1),            # B1 counts again
        ])
        snap = eng.query(3600)
        assert snap.intervals("noisy", ("B1",)).intervals[0] == (101, 501)
        assert snap.intervals("busCongestion", ("I1",)).intervals == (
            (101, 301),
            (601, None),
        )


class TestSourceDisagreement:
    def test_bus_congestion_without_scats_congestion(self):
        eng = make_engine(adaptive=False)
        eng.feed(_scats_free(1))
        feed_reports(eng, [
            bus_report(100, congestion=1),
            bus_report(500, congestion=0),
        ])
        snap = eng.query(3600)
        assert snap.intervals("sourceDisagreement", ("I1",)).intervals == (
            (101, 501),
        )

    def test_agreeing_congestion_is_no_disagreement(self):
        eng = make_engine(adaptive=False)
        eng.feed(_scats_congested(1) + _scats_free(1000))
        feed_reports(eng, [
            bus_report(100, congestion=1),
            bus_report(900, congestion=0),
        ])
        snap = eng.query(3600)
        # Bus congestion [101, 901); SCATS congestion [1, 1001):
        # the bus interval is fully covered -> no disagreement.
        assert not snap.intervals("sourceDisagreement", ("I1",))

    def test_partial_overlap(self):
        eng = make_engine(adaptive=False)
        # SCATS congested between 1 and 601.
        eng.feed(_scats_congested(1) + _scats_free(600))
        feed_reports(eng, [
            bus_report(100, congestion=1),
            bus_report(900, congestion=0),
        ])
        snap = eng.query(3600)
        # Bus congestion [101, 901); SCATS [1, 601) -> remainder [601, 901).
        assert snap.intervals("sourceDisagreement", ("I1",)).intervals == (
            (601, 901),
        )
