"""Tests for the SCATS-side CE definitions (rule-set (2) and friends)."""

from repro.core.intervals import IntervalList

from .helpers import CONGESTED, FREE, make_engine, make_topology, traffic_event

S1 = ("I1", "A", "S1")
S2 = ("I1", "A", "S2")


class TestScatsCongestion:
    def test_initiated_by_high_density_low_flow(self):
        eng = make_engine()
        eng.feed([traffic_event(100, sensor="S1", **CONGESTED)])
        snap = eng.query(3600)
        assert snap.intervals("scatsCongestion", S1).intervals == ((101, None),)

    def test_terminated_by_density_drop(self):
        eng = make_engine()
        eng.feed([
            traffic_event(100, **CONGESTED),
            traffic_event(460, density=30.0, flow=300.0),
        ])
        snap = eng.query(3600)
        assert snap.intervals("scatsCongestion", S1).intervals == ((101, 461),)

    def test_terminated_by_flow_recovery(self):
        eng = make_engine()
        eng.feed([
            traffic_event(100, **CONGESTED),
            traffic_event(460, density=90.0, flow=900.0),
        ])
        snap = eng.query(3600)
        assert snap.intervals("scatsCongestion", S1).intervals == ((101, 461),)

    def test_free_flow_never_initiates(self):
        eng = make_engine()
        eng.feed([traffic_event(100, **FREE)])
        snap = eng.query(3600)
        assert snap.intervals("scatsCongestion", S1) == IntervalList()

    def test_high_density_high_flow_not_congested(self):
        # Upper branch of the fundamental diagram requires BOTH
        # conditions (density above AND flow below their thresholds).
        eng = make_engine()
        eng.feed([traffic_event(100, density=90.0, flow=900.0)])
        snap = eng.query(3600)
        assert snap.intervals("scatsCongestion", S1) == IntervalList()

    def test_thresholds_are_parameters(self):
        eng = make_engine(params={"scats.density_hi": 200.0})
        eng.feed([traffic_event(100, **CONGESTED)])
        snap = eng.query(3600)
        assert snap.intervals("scatsCongestion", S1) == IntervalList()

    def test_sensors_independent(self):
        eng = make_engine()
        eng.feed([
            traffic_event(100, sensor="S1", **CONGESTED),
            traffic_event(100, sensor="S2", **FREE),
        ])
        snap = eng.query(3600)
        assert snap.intervals("scatsCongestion", S1)
        assert not snap.intervals("scatsCongestion", S2)


class TestIntersectionCongestion:
    def test_requires_n_sensors(self):
        eng = make_engine()  # threshold n=2, intersection has 2 sensors
        eng.feed([
            traffic_event(100, sensor="S1", **CONGESTED),
            traffic_event(460, sensor="S2", **CONGESTED),
            traffic_event(820, sensor="S1", **FREE),
        ])
        snap = eng.query(3600)
        # Congested only while both sensors are congested.
        assert snap.intervals("scatsIntCongestion", ("I1",)).intervals == (
            (461, 821),
        )

    def test_single_sensor_not_enough(self):
        eng = make_engine()
        eng.feed([traffic_event(100, sensor="S1", **CONGESTED)])
        snap = eng.query(3600)
        assert not snap.intervals("scatsIntCongestion", ("I1",))

    def test_intersection_with_fewer_sensors_than_threshold(self):
        # A one-sensor intersection is congested when its sensor is.
        topo = make_topology(sensors_per_intersection=1)
        eng = make_engine(topo)
        eng.feed([traffic_event(100, sensor="S1", **CONGESTED)])
        snap = eng.query(3600)
        assert snap.intervals("scatsIntCongestion", ("I1",)).intervals == (
            (101, None),
        )

    def test_unknown_intersection_ignored(self):
        eng = make_engine()
        eng.feed([
            traffic_event(100, intersection="GHOST", sensor="S1", **CONGESTED),
        ])
        snap = eng.query(3600)
        assert snap.fluents.get("scatsIntCongestion", {}) == {}


class TestTrafficTrends:
    def test_rising_flow_trend(self):
        eng = make_engine()
        # 4 readings, 3 steps of +200 >= trend.flow_delta (120).
        eng.feed([
            traffic_event(t, flow=f, density=20.0)
            for t, f in [(10, 300.0), (370, 500.0), (730, 700.0), (1090, 900.0)]
        ])
        snap = eng.query(3600)
        key = S1 + ("rising",)
        ivs = snap.intervals("flowTrend", key)
        assert ivs.holds_at(1100)
        assert ivs.first_start() == 1091

    def test_trend_broken_by_flat_reading(self):
        eng = make_engine()
        eng.feed([
            traffic_event(t, flow=f, density=20.0)
            for t, f in [
                (10, 300.0),
                (370, 500.0),
                (730, 700.0),
                (1090, 900.0),
                (1450, 905.0),  # step of +5 < delta: breaks the trend
            ]
        ])
        snap = eng.query(3600)
        key = S1 + ("rising",)
        assert snap.intervals("flowTrend", key).intervals == ((1091, 1451),)

    def test_falling_density_trend(self):
        eng = make_engine()
        eng.feed([
            traffic_event(t, flow=600.0, density=d)
            for t, d in [(10, 90.0), (370, 75.0), (730, 60.0), (1090, 45.0)]
        ])
        snap = eng.query(3600)
        key = S1 + ("falling",)
        assert snap.intervals("densityTrend", key).holds_at(1100)

    def test_insufficient_readings_no_trend(self):
        eng = make_engine()
        eng.feed([
            traffic_event(t, flow=f, density=20.0)
            for t, f in [(10, 300.0), (370, 500.0), (730, 700.0)]
        ])
        snap = eng.query(3600)
        assert not snap.intervals("flowTrend", S1 + ("rising",))


class TestProactiveTrendOrdering:
    """Section 4.3: trend CEs exist 'for proactive decision-making' —
    on a gradually building queue the rising-density trend fires before
    the congestion threshold trips."""

    def test_trend_precedes_congestion_on_gradual_buildup(self):
        eng = make_engine(params={"trend.readings": 2,
                                  "trend.density_delta": 6.0})
        readings = [
            (360, 30.0, 900.0),
            (720, 40.0, 820.0),
            (1080, 50.0, 700.0),   # 2nd rising step: trend initiates
            (1440, 58.0, 640.0),
            (1800, 66.0, 560.0),   # crosses the congestion thresholds
            (2160, 75.0, 480.0),
        ]
        eng.feed([
            traffic_event(t, density=d, flow=f) for t, d, f in readings
        ])
        snap = eng.query(3600)
        trend = snap.intervals("densityTrend", S1 + ("rising",))
        congestion = snap.intervals("scatsCongestion", S1)
        assert trend, "the buildup must register as a rising trend"
        assert congestion, "the queue eventually congests"
        assert trend.first_start() < congestion.first_start(), (
            "the proactive signal must precede the congestion alarm"
        )


class TestTrafficRegime:
    """The three-phase regime fluent (multi-valued F = V)."""

    def test_classifies_by_density_band(self):
        eng = make_engine()
        eng.feed([
            traffic_event(100, density=15.0, flow=700.0),    # free
            traffic_event(460, density=45.0, flow=800.0),    # synchronized
            traffic_event(820, density=80.0, flow=300.0),    # congested
        ])
        snap = eng.query(3600)
        assert snap.intervals("trafficRegime", S1 + ("free",)).intervals == (
            (101, 461),
        )
        assert snap.intervals(
            "trafficRegime", S1 + ("synchronized",)
        ).intervals == ((461, 821),)
        assert snap.intervals(
            "trafficRegime", S1 + ("congested",)
        ).holds_at(1000)

    def test_exactly_one_regime_at_a_time(self):
        eng = make_engine()
        eng.feed([
            traffic_event(t, density=d, flow=600.0)
            for t, d in [(100, 10.0), (460, 40.0), (820, 70.0),
                         (1180, 20.0)]
        ])
        snap = eng.query(3600)
        for t in range(101, 1500, 37):
            held = [
                key[-1]
                for key, ivs in snap.fluents["trafficRegime"].items()
                if key[:3] == S1 and ivs.holds_at(t)
            ]
            assert len(held) == 1, f"t={t}: {held}"

    def test_congested_bound_shared_with_rule_set_2(self):
        # A density exactly at scats.density_hi is 'congested'.
        eng = make_engine()
        eng.feed([traffic_event(100, density=60.0, flow=500.0)])
        snap = eng.query(3600)
        assert snap.intervals(
            "trafficRegime", S1 + ("congested",)
        ).holds_at(200)

    def test_regime_persists_across_windows(self):
        eng = make_engine(window=600, step=300)
        eng.feed([traffic_event(100, density=45.0, flow=800.0)])
        eng.query(300)
        snap = eng.query(600)
        assert snap.intervals(
            "trafficRegime", S1 + ("synchronized",)
        ).holds_at(550)
