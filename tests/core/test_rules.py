"""Tests for the definition DSL and stratification."""

import pytest

from repro.core.events import Event, FluentFact, Occurrence
from repro.core.intervals import IntervalList
from repro.core.rules import (
    FunctionalEvent,
    FunctionalSimpleFluent,
    FunctionalStaticFluent,
    RuleContext,
    stratify,
)


def _ctx(events=None, facts=None, params=None, window=(0, 100)):
    return RuleContext(
        window_start=window[0],
        window_end=window[1],
        events=events or {},
        facts=facts or {},
        params=params or {},
    )


class TestRuleContext:
    def test_events_lookup(self):
        ev = Event("move", 5, {"bus": "B1"})
        ctx = _ctx(events={"move": [ev]})
        assert list(ctx.events("move")) == [ev]
        assert list(ctx.events("unknown")) == []

    def test_fact_at_exact_time(self):
        facts = {
            ("gps", ("B1",)): [
                FluentFact("gps", ("B1",), {"lon": 1.0}, 5),
                FluentFact("gps", ("B1",), {"lon": 2.0}, 9),
            ]
        }
        ctx = _ctx(facts=facts)
        assert ctx.fact_at("gps", ("B1",), 5)["lon"] == 1.0
        assert ctx.fact_at("gps", ("B1",), 9)["lon"] == 2.0
        assert ctx.fact_at("gps", ("B1",), 7) is None
        assert ctx.fact_at("gps", ("B2",), 5) is None

    def test_fact_latest(self):
        facts = {
            ("gps", ("B1",)): [
                FluentFact("gps", ("B1",), {"lon": 1.0}, 5),
                FluentFact("gps", ("B1",), {"lon": 2.0}, 9),
            ]
        }
        ctx = _ctx(facts=facts)
        assert ctx.fact_latest("gps", ("B1",), 4) is None
        assert ctx.fact_latest("gps", ("B1",), 5)["lon"] == 1.0
        assert ctx.fact_latest("gps", ("B1",), 8)["lon"] == 1.0
        assert ctx.fact_latest("gps", ("B1",), 100)["lon"] == 2.0

    def test_fact_keys(self):
        facts = {
            ("gps", ("B1",)): [FluentFact("gps", ("B1",), {}, 1)],
            ("gps", ("B2",)): [FluentFact("gps", ("B2",), {}, 1)],
            ("odometer", ("B1",)): [FluentFact("odometer", ("B1",), 5, 1)],
        }
        ctx = _ctx(facts=facts)
        assert sorted(ctx.fact_keys("gps")) == [("B1",), ("B2",)]

    def test_param(self):
        ctx = _ctx(params={"scats.density_hi": 60.0})
        assert ctx.param("scats.density_hi") == 60.0
        with pytest.raises(KeyError):
            ctx.param("missing")

    def test_intermediate_storage(self):
        ctx = _ctx()
        occ = Occurrence("delayIncrease", ("B1",), 3)
        ctx._store_occurrences("delayIncrease", [occ])
        ctx._store_fluent("f", {("k",): IntervalList([(0, 5)])})
        assert list(ctx.derived("delayIncrease")) == [occ]
        assert ctx.intervals("f", ("k",)).intervals == ((0, 5),)
        assert ctx.holds_at("f", ("k",), 3)
        assert not ctx.holds_at("f", ("k",), 7)
        assert ctx.intervals("f", ("other",)) == IntervalList()


class TestFunctionalDefinitions:
    def test_functional_event(self):
        occ = Occurrence("e", ("k",), 1)
        d = FunctionalEvent("e", lambda ctx: [occ])
        assert list(d.occurrences(_ctx())) == [occ]

    def test_functional_simple_fluent(self):
        d = FunctionalSimpleFluent(
            "f",
            initiated=lambda ctx: [(("k",), 1)],
            terminated=lambda ctx: [(("k",), 5)],
        )
        assert list(d.initiations(_ctx())) == [(("k",), 1)]
        assert list(d.terminations(_ctx())) == [(("k",), 5)]

    def test_functional_static_fluent(self):
        d = FunctionalStaticFluent(
            "f", lambda ctx: {("k",): IntervalList([(0, 2)])}
        )
        assert d.derive(_ctx())[("k",)].intervals == ((0, 2),)


class TestStratify:
    @staticmethod
    def _ev(name, deps=()):
        return FunctionalEvent(name, lambda ctx: [], depends_on=deps)

    def test_orders_by_dependency(self):
        a = self._ev("a")
        b = self._ev("b", deps=("a",))
        c = self._ev("c", deps=("b", "a"))
        order = [d.name for d in stratify([c, b, a])]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_input_event_dependencies_ignored(self):
        a = self._ev("a", deps=("move", "traffic"))
        assert [d.name for d in stratify([a])] == ["a"]

    def test_cycle_detected(self):
        a = self._ev("a", deps=("b",))
        b = self._ev("b", deps=("a",))
        with pytest.raises(ValueError, match="cyclic"):
            stratify([a, b])

    def test_self_cycle_detected(self):
        a = self._ev("a", deps=("a",))
        with pytest.raises(ValueError, match="cyclic"):
            stratify([a])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            stratify([self._ev("a"), self._ev("a")])

    def test_all_definitions_present(self):
        defs = [self._ev(n) for n in "abcde"]
        assert {d.name for d in stratify(defs)} == set("abcde")


class TestValueAt:
    def test_value_at_scans_extended_keys(self):
        ctx = _ctx()
        ctx._store_fluent(
            "light",
            {
                ("junction", "green"): IntervalList([(0, 10)]),
                ("junction", "red"): IntervalList([(10, 20)]),
            },
        )
        assert ctx.value_at("light", ("junction",), 5) == "green"
        assert ctx.value_at("light", ("junction",), 15) == "red"
        assert ctx.value_at("light", ("junction",), 25) is None
        assert ctx.value_at("light", ("elsewhere",), 5) is None

    def test_value_at_unknown_fluent(self):
        assert _ctx().value_at("nope", ("k",), 0) is None
