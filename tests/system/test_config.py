"""Tests for the unified SystemConfig construction/validation API."""

import pytest

from repro.system import SystemConfig


class TestFromMapping:
    def test_builds_equivalent_config(self):
        mapping = {
            "window": 900,
            "step": 300,
            "adaptive": False,
            "n_participants": 10,
            "seed": 4,
        }
        assert SystemConfig.from_mapping(mapping) == SystemConfig(**mapping)

    def test_rejects_unknown_keys_with_hint(self):
        with pytest.raises(ValueError, match="unknown SystemConfig key"):
            SystemConfig.from_mapping({"windw": 600})
        with pytest.raises(ValueError, match="did you mean 'window'"):
            SystemConfig.from_mapping({"windw": 600})

    def test_rejects_several_unknown_keys(self):
        with pytest.raises(ValueError, match="'bogus'"):
            SystemConfig.from_mapping({"bogus": 1, "window": 2})

    def test_coerces_list_to_tuple(self):
        cfg = SystemConfig.from_mapping(
            {"participant_error_range": [0.1, 0.4]}
        )
        assert cfg.participant_error_range == (0.1, 0.4)

    def test_empty_mapping_is_defaults(self):
        assert SystemConfig.from_mapping({}) == SystemConfig()


class TestValidation:
    def test_step_exceeding_window(self):
        with pytest.raises(ValueError, match="step must not exceed"):
            SystemConfig(window=100, step=500)

    def test_nonpositive_window(self):
        with pytest.raises(ValueError, match="positive"):
            SystemConfig(window=0, step=0)

    def test_bad_noisy_variant(self):
        with pytest.raises(ValueError, match="noisy_variant"):
            SystemConfig(noisy_variant="optimistic")

    def test_bad_parallel_backend(self):
        with pytest.raises(ValueError, match="parallel_backend"):
            SystemConfig(parallel_backend="greenlet")

    def test_bad_error_range(self):
        with pytest.raises(ValueError, match="participant_error_range"):
            SystemConfig(participant_error_range=(0.9, 0.1))

    def test_negative_participants(self):
        with pytest.raises(ValueError, match="n_participants"):
            SystemConfig(n_participants=-1)

    def test_bad_parallel_workers(self):
        with pytest.raises(ValueError, match="parallel_workers"):
            SystemConfig(parallel_workers=0)

    def test_validation_applies_through_from_mapping(self):
        with pytest.raises(ValueError, match="step must not exceed"):
            SystemConfig.from_mapping({"window": 100, "step": 500})
