"""Parallel per-region recognition must match the sequential path.

Section 7.1 scales recognition by running the four city regions in
parallel; the contract of ``SystemConfig.parallel_regions`` is that the
parallel schedule is *observationally identical* — same recognised CEs,
same operator alerts, same crowd interactions — because results are
merged deterministically in region order.
"""

import pytest

from repro.dublin import DublinScenario, ScenarioConfig
from repro.system import SystemConfig, UrbanTrafficSystem


def _scenario():
    return DublinScenario(
        ScenarioConfig(
            seed=11,
            rows=10,
            cols=10,
            n_intersections=24,
            n_buses=24,
            n_lines=4,
            unreliable_fraction=0.2,
            n_incidents=4,
            incident_window=(0, 1200),
        )
    )


def _run(**overrides):
    config = SystemConfig.from_mapping(
        {"seed": 11, "n_participants": 20, **overrides}
    )
    system = UrbanTrafficSystem(_scenario(), config)
    return system, system.run(0, 1200)


def _occurrence_sets(report):
    """``region -> {(ce name, key, time)}`` across all snapshots."""
    out = {}
    for region, log in report.logs.items():
        seen = set()
        for snapshot in log.snapshots:
            for name, occurrences in snapshot.occurrences.items():
                for occ in occurrences:
                    seen.add((name, occ.key, occ.time))
        out[region] = seen
    return out


def _alert_tuples(report):
    return [
        (a.time, a.kind, a.location, a.message, a.region)
        for a in report.console.alerts
    ]


class TestParallelParity:
    @pytest.fixture(scope="class")
    def runs(self):
        _, sequential = _run(parallel_regions=False)
        _, parallel = _run(parallel_regions=True)
        return sequential, parallel

    def test_ce_occurrences_identical(self, runs):
        sequential, parallel = runs
        assert _occurrence_sets(sequential) == _occurrence_sets(parallel)

    def test_alerts_identical(self, runs):
        sequential, parallel = runs
        assert _alert_tuples(sequential) == _alert_tuples(parallel)

    def test_crowd_handling_identical(self, runs):
        sequential, parallel = runs
        assert sequential.crowd_resolutions == parallel.crowd_resolutions
        assert sequential.crowd_unresolved == parallel.crowd_unresolved
        assert sequential.crowd_suppressed == parallel.crowd_suppressed

    def test_flow_estimates_identical(self, runs):
        sequential, parallel = runs
        assert sequential.flow_estimates == parallel.flow_estimates

    def test_process_backend_matches_too(self, runs):
        sequential, _ = runs
        _, process_run = _run(
            parallel_regions=True, parallel_backend="process"
        )
        assert _occurrence_sets(sequential) == _occurrence_sets(process_run)
        assert _alert_tuples(sequential) == _alert_tuples(process_run)

    def test_single_region_skips_executor(self):
        _, report = _run(parallel_regions=True, distribute_by_region=False)
        assert set(report.logs) == {"city"}

    def test_metrics_populated(self, runs):
        _, parallel = runs
        counters = parallel.metrics["counters"]
        timings = parallel.metrics["timings"]
        assert any(k.startswith("process.cep-") for k in counters)
        assert any(k.startswith("rtec.definition.") for k in timings)
        assert counters["crowd.disagreements"] >= 0
