"""Tests for the pipeline extensions: priors, rewards, measured flows,
structured intersections and SCATS reliability in the full loop."""

import pytest

from repro.dublin import DublinScenario, ScenarioConfig
from repro.system import SystemConfig, UrbanTrafficSystem


@pytest.fixture(scope="module")
def scenario():
    return DublinScenario(
        ScenarioConfig(
            seed=31,
            rows=12,
            cols=12,
            n_intersections=40,
            n_buses=60,
            n_lines=8,
            unreliable_fraction=0.15,
            n_incidents=6,
            incident_window=(0, 1800),
        )
    )


@pytest.fixture(scope="module")
def system_and_report(scenario):
    system = UrbanTrafficSystem(
        scenario,
        SystemConfig(
            window=600,
            step=300,
            adaptive=True,
            noisy_variant="crowd",
            n_participants=40,
            ce_priors=True,
            rewards=True,
            use_measured_flows=True,
            seed=31,
        ),
    )
    return system, system.run(0, 1800)


class TestMeasuredFlowEstimation:
    def test_flow_estimator_fed_by_scats_readings(self, system_and_report):
        system, _ = system_and_report
        assert system.flow_estimator.coverage(1800) > 0.0

    def test_estimates_cover_whole_city(self, scenario, system_and_report):
        _, report = system_and_report
        assert set(report.flow_estimates) == set(scenario.network.graph.nodes)

    def test_ground_truth_fallback_before_any_reading(self, scenario):
        system = UrbanTrafficSystem(
            scenario,
            SystemConfig(crowd_enabled=False, use_measured_flows=True),
        )
        # No run() yet: the rolling estimator is empty, so the snapshot
        # falls back to the substrate's ground truth.
        estimates = system.estimate_citywide(900)
        assert len(estimates) == scenario.network.n_junctions()

    def test_ground_truth_mode(self, scenario):
        system = UrbanTrafficSystem(
            scenario,
            SystemConfig(crowd_enabled=False, use_measured_flows=False),
        )
        estimates = system.estimate_citywide(900)
        assert len(estimates) == scenario.network.n_junctions()


class TestPriors:
    def test_prior_built_from_bus_reports(self, system_and_report):
        system, _ = system_and_report
        assert system._bus_reports, "prior index must be populated"
        # At least one crowdsourced task should have carried a
        # non-uniform prior.
        non_uniform = [
            o
            for o in system.crowd.outcomes
            if len(set(round(v, 6) for v in o.task.prior.values())) > 1
        ]
        assert non_uniform

    def test_priors_disabled(self, scenario):
        system = UrbanTrafficSystem(
            scenario,
            SystemConfig(
                adaptive=True, crowd_enabled=True, ce_priors=False,
                n_participants=20, seed=31,
            ),
        )
        system.run(0, 900)
        assert not system._bus_reports
        for outcome in system.crowd.outcomes:
            values = set(round(v, 6) for v in outcome.task.prior.values())
            assert len(values) == 1  # uniform


class TestRewards:
    def test_rewards_settled(self, system_and_report):
        _, report = system_and_report
        if report.crowd_resolutions:
            assert report.rewards
            assert all(v >= 0 for v in report.rewards.values())

    def test_rewards_disabled(self, scenario):
        system = UrbanTrafficSystem(
            scenario,
            SystemConfig(crowd_enabled=True, rewards=False,
                         n_participants=10, seed=31),
        )
        report = system.run(0, 900)
        assert report.rewards == {}


class TestStructuredAndReliability:
    def test_structured_intersections_run(self, scenario):
        system = UrbanTrafficSystem(
            scenario,
            SystemConfig(
                adaptive=True,
                structured_intersections=True,
                crowd_enabled=False,
                seed=31,
            ),
        )
        report = system.run(0, 900)
        assert report.logs

    def test_scats_reliability_surface(self, scenario):
        system = UrbanTrafficSystem(
            scenario,
            SystemConfig(
                adaptive=True,
                scats_reliability=True,
                crowd_enabled=True,
                n_participants=40,
                seed=31,
            ),
        )
        report = system.run(0, 1800)
        # The fluent is evaluated (it may or may not fire depending on
        # the crowd's answers); trustedScatsCongestion exists alongside.
        names = set()
        for log in report.logs.values():
            for snapshot in log.snapshots:
                names.update(snapshot.fluents)
        assert "noisyScats" in names
        assert "trustedScatsCongestion" in names


class TestCrowdThrottling:
    """'To minimise the impact on the participants' — Section 5."""

    def _run(self, scenario, **overrides):
        defaults = dict(
            adaptive=True, noisy_variant="crowd", n_participants=40,
            seed=31,
        )
        defaults.update(overrides)
        system = UrbanTrafficSystem(scenario, SystemConfig(**defaults))
        return system.run(0, 1800)

    def test_cooldown_suppresses_requeries(self, scenario):
        eager = self._run(scenario, crowd_cooldown_s=1)
        throttled = self._run(scenario, crowd_cooldown_s=3600)
        total_eager = eager.crowd_resolutions + eager.crowd_unresolved
        total_throttled = (
            throttled.crowd_resolutions + throttled.crowd_unresolved
        )
        assert total_throttled <= total_eager
        if total_eager > total_throttled:
            assert throttled.crowd_suppressed > 0

    def test_min_support_filters_lone_dissenters(self, scenario):
        permissive = self._run(scenario, crowd_min_support=1,
                               crowd_cooldown_s=1)
        strict = self._run(scenario, crowd_min_support=10,
                           crowd_cooldown_s=1)
        asked_permissive = (
            permissive.crowd_resolutions + permissive.crowd_unresolved
        )
        asked_strict = strict.crowd_resolutions + strict.crowd_unresolved
        assert asked_strict <= asked_permissive

    def test_suppressed_counted_in_report(self, scenario):
        report = self._run(scenario, crowd_cooldown_s=3600)
        assert report.crowd_suppressed >= 0  # field present and sane


class TestDeadlineAndProfile:
    def test_crowd_deadline_excludes_slow_devices(self, scenario):
        # An 800 ms deadline excludes 2G devices from every query.
        system = UrbanTrafficSystem(
            scenario,
            SystemConfig(
                adaptive=True, n_participants=40, seed=31,
                crowd_deadline_ms=800.0, crowd_cooldown_s=1,
            ),
        )
        system.run(0, 1800)
        for outcome in system.crowd.outcomes:
            for execution in outcome.execution.executions:
                assert execution.connection != "2g"

    def test_per_definition_profile(self, system_and_report):
        _, report = system_and_report
        profile = report.per_definition_profile()
        assert "busCongestion" in profile
        assert all(v >= 0.0 for v in profile.values())
        # The profile's total is consistent with the overall mean.
        assert sum(profile.values()) == pytest.approx(
            report.mean_recognition_time, rel=0.5, abs=0.01
        )


class TestAlertSurfacing:
    def test_trend_and_noisy_scats_alerts(self, scenario):
        from repro.core.rtec import FreshResults

        system = UrbanTrafficSystem(
            scenario, SystemConfig(crowd_enabled=False)
        )
        fresh = FreshResults(
            occurrences=[],
            episodes=[
                ("densityTrend", ("I1", "N", "S1", "rising"), 100, None),
                ("densityTrend", ("I1", "N", "S1", "falling"), 200, None),
                ("noisyScats", ("I9",), 300, None),
            ],
        )
        system._surface_alerts("central", fresh)
        counts = system.console.counts()
        assert counts.get("density rising") == 1  # falling not alerted
        assert counts.get("scats unreliable") == 1
