"""Tests for the standalone HTML run report."""

import pytest

from repro.dublin import DublinScenario, ScenarioConfig
from repro.system import (
    SystemConfig,
    UrbanTrafficSystem,
    render_html_report,
    write_html_report,
)


@pytest.fixture(scope="module")
def run():
    scenario = DublinScenario(
        ScenarioConfig(
            seed=53, rows=10, cols=10, n_intersections=25,
            n_buses=40, n_lines=6, unreliable_fraction=0.15,
            n_incidents=4, incident_window=(0, 1200),
        )
    )
    system = UrbanTrafficSystem(
        scenario,
        SystemConfig(adaptive=True, n_participants=25, seed=53),
    )
    return system, system.run(0, 1200)


class TestHtmlReport:
    def test_is_complete_html(self, run):
        system, report = run
        doc = render_html_report(system, report, at=1200)
        assert doc.startswith("<!DOCTYPE html>")
        assert doc.rstrip().endswith("</html>")
        assert "<svg" in doc

    def test_contains_summary_numbers(self, run):
        system, report = run
        doc = render_html_report(system, report, at=1200)
        assert "recognition time" in doc
        assert str(report.crowd_resolutions) in doc

    def test_alert_kinds_listed(self, run):
        system, report = run
        doc = render_html_report(system, report, at=1200)
        for kind in report.console.counts():
            assert kind in doc

    def test_rewards_section_when_present(self, run):
        system, report = run
        doc = render_html_report(system, report, at=1200)
        if report.rewards:
            assert "participant rewards" in doc

    def test_alert_feed_escaped_and_limited(self, run):
        system, report = run
        doc = render_html_report(system, report, at=1200, max_alerts=5)
        assert "last 5" in doc

    def test_write_to_file(self, run, tmp_path):
        system, report = run
        path = write_html_report(system, report, tmp_path / "run.html",
                                 at=1200)
        assert path.exists()
        assert path.stat().st_size > 1000

    def test_deterministic(self, run):
        system, report = run
        a = render_html_report(system, report, at=1200)
        b = render_html_report(system, report, at=1200)
        assert a == b


class TestOutageTimeline:
    def test_shard_events_and_breakers_rendered(self, run):
        system, report = run
        report.shard_events = [
            {
                "event": "restart",
                "region": "north",
                "step": 5,
                "q": 1500,
                "attempt": 1,
            },
            {
                "event": "failed",
                "region": "north",
                "step": 7,
                "q": 2100,
                "reason": "worker exited",
                "deaths": 2,
            },
        ]
        report.degraded = {"shard:north": [(2100, None)]}
        report.metrics.setdefault("gauges", {})[
            "shard.breaker.north.state"
        ] = 1.0
        report.metrics.setdefault("counters", {})[
            "streams.supervision.dead_letters"
        ] = 3
        report.metrics["counters"]["streams.supervision.dlq.dropped"] = 1
        try:
            doc = render_html_report(system, report, at=1200)
        finally:
            report.shard_events = []
            report.degraded = {}
            del report.metrics["gauges"]["shard.breaker.north.state"]
            del report.metrics["counters"]["streams.supervision.dead_letters"]
            del report.metrics["counters"]["streams.supervision.dlq.dropped"]
        assert "outage timeline" in doc
        assert "worker restarted from its checkpoint (attempt 1, step 5)" in doc
        assert "restart budget exhausted after 2 worker deaths" in doc
        assert "feed shard:north" in doc
        assert "breakers at end of run" in doc
        assert "shard north" in doc and "open" in doc
        assert "dead letters filed: 3" in doc
        assert "1" in doc  # dlq.dropped

    def test_degraded_feed_states_always_listed(self, run):
        system, report = run
        doc = render_html_report(system, report, at=1200)
        # The per-feed degraded gauges exist on every run, so the
        # breaker table is always present even with no outages.
        assert "breakers at end of run" in doc
        assert "feed scats" in doc and "feed bus" in doc
